#!/usr/bin/env python
"""CI gate for the observability layer.

Runs a traced integrated run, then enforces the acceptance criteria of
the observability PR:

1. the exported Chrome trace passes ``validate_chrome_trace`` (loadable
   in Perfetto / chrome://tracing),
2. >= 95% of displayed frames trace back to an originating IMU sample
   through flow links (causal lineage),
3. the critical-path MTP decomposition recomputed from spans matches the
   online ``repro.metrics.mtp`` samples per-frame within 1e-6 s.

Writes the trace JSON to ``--trace-out`` (uploaded as a CI artifact) and
exits nonzero on any violation.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import SystemConfig
from repro.core.runtime import build_runtime
from repro.hardware.platform import PLATFORMS
from repro.obs import (
    critical_paths,
    decomposition_summary,
    lineage_fraction,
    validate_chrome_trace,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--platform", choices=sorted(PLATFORMS), default="desktop")
    parser.add_argument("--app", default="sponza")
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fidelity", choices=("full", "model"), default="full")
    parser.add_argument("--trace-out", type=Path, default=Path("trace.json"))
    parser.add_argument("--min-lineage", type=float, default=0.95)
    parser.add_argument("--max-parity-s", type=float, default=1e-6)
    args = parser.parse_args(argv)

    config = SystemConfig(duration_s=args.duration, fidelity=args.fidelity, seed=args.seed)
    runtime = build_runtime(
        PLATFORMS[args.platform], args.app, config, observability=True
    )
    result = runtime.run()
    obs = result.observability
    assert obs is not None

    failures = []

    trace = result.chrome_trace()
    problems = validate_chrome_trace(trace)
    if problems:
        failures.append(f"chrome trace schema: {len(problems)} problems, first: {problems[0]}")
    args.trace_out.write_text(json.dumps(trace) + "\n")
    events = trace["traceEvents"]
    flows = sum(1 for e in events if e.get("ph") == "s")
    print(f"trace: {len(events)} events ({flows} flow starts) -> {args.trace_out}")

    frames = critical_paths(obs.tracer)
    lineage = lineage_fraction(frames)
    print(f"lineage: {lineage:.1%} of {len(frames)} displayed frames reach an IMU sample")
    if not frames:
        failures.append("no displayed frames in traced run")
    if lineage < args.min_lineage:
        failures.append(f"lineage {lineage:.3f} < required {args.min_lineage}")

    online = {round(s.frame_time, 9): s for s in result.mtp_samples}
    worst = 0.0
    matched = 0
    for frame in frames:
        sample = online.get(round(frame.frame_time, 9))
        if sample is None:
            continue
        matched += 1
        worst = max(
            worst,
            abs(frame.imu_age - sample.imu_age),
            abs(frame.reprojection - sample.reprojection_time),
            abs(frame.swap - sample.swap_wait),
            abs(frame.total - (sample.imu_age + sample.reprojection_time + sample.swap_wait)),
        )
    print(f"critical-path parity vs online MTP: {matched} frames, max |err| {worst:.2e} s")
    if matched != len(frames):
        failures.append(f"only {matched}/{len(frames)} frames matched an online MTP sample")
    if worst > args.max_parity_s:
        failures.append(f"parity error {worst:.2e} s > {args.max_parity_s:.0e} s")

    summary = decomposition_summary(frames)
    if summary.get("count"):
        print(f"MTP from spans: mean {summary['mean_ms']:.2f} ms over {summary['count']} frames")

    if failures:
        for failure in failures:
            print(f"OBS GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("observability gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
