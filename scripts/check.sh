#!/usr/bin/env bash
# Fast pre-commit check: the test suite minus the slow-marked tests, then
# the perf harness in smoke mode (parity gate; smoke timings are not
# meaningful). Run the full suite with `make test` before shipping.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -q -m "not slow"
python benchmarks/perf_harness.py --quick --json /tmp/bench_smoke.json
echo "check: OK"
