"""Hamilton quaternions, stored as numpy arrays ``[w, x, y, z]``.

Unit quaternions represent rotations; ``quat_rotate(q, v)`` applies the
rotation ``R(q) @ v``.  All functions are pure and never mutate inputs.
"""

from __future__ import annotations

import numpy as np


def quat_identity() -> np.ndarray:
    """The identity rotation."""
    return np.array([1.0, 0.0, 0.0, 0.0])


def quat_normalize(q: np.ndarray) -> np.ndarray:
    """Unit-norm copy of ``q``; the zero quaternion raises."""
    q = np.asarray(q, dtype=float)
    norm = np.linalg.norm(q)
    if norm < 1e-300:
        raise ValueError("cannot normalize a zero quaternion")
    return q / norm


def quat_conjugate(q: np.ndarray) -> np.ndarray:
    """Conjugate (inverse for unit quaternions)."""
    q = np.asarray(q, dtype=float)
    return np.array([q[0], -q[1], -q[2], -q[3]])


def quat_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamilton product ``a * b`` (apply ``b`` first, then ``a``)."""
    aw, ax, ay, az = np.asarray(a, dtype=float)
    bw, bx, by, bz = np.asarray(b, dtype=float)
    return np.array(
        [
            aw * bw - ax * bx - ay * by - az * bz,
            aw * bx + ax * bw + ay * bz - az * by,
            aw * by - ax * bz + ay * bw + az * bx,
            aw * bz + ax * by - ay * bx + az * bw,
        ]
    )


def quat_rotate(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate vector(s) ``v`` by unit quaternion ``q``.

    ``v`` may be shape (3,) or (N, 3).
    """
    return np.asarray(v, dtype=float) @ quat_to_matrix(q).T


def quat_to_matrix(q: np.ndarray) -> np.ndarray:
    """3x3 rotation matrix of unit quaternion ``q``."""
    w, x, y, z = quat_normalize(q)
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def matrix_to_quat(matrix: np.ndarray) -> np.ndarray:
    """Unit quaternion of rotation matrix ``matrix`` (Shepperd's method)."""
    m = np.asarray(matrix, dtype=float)
    if m.shape != (3, 3):
        raise ValueError(f"expected 3x3 matrix, got {m.shape}")
    trace = m[0, 0] + m[1, 1] + m[2, 2]
    if trace > 0:
        s = 2.0 * np.sqrt(trace + 1.0)
        q = np.array(
            [0.25 * s, (m[2, 1] - m[1, 2]) / s, (m[0, 2] - m[2, 0]) / s, (m[1, 0] - m[0, 1]) / s]
        )
    elif m[0, 0] > m[1, 1] and m[0, 0] > m[2, 2]:
        s = 2.0 * np.sqrt(1.0 + m[0, 0] - m[1, 1] - m[2, 2])
        q = np.array(
            [(m[2, 1] - m[1, 2]) / s, 0.25 * s, (m[0, 1] + m[1, 0]) / s, (m[0, 2] + m[2, 0]) / s]
        )
    elif m[1, 1] > m[2, 2]:
        s = 2.0 * np.sqrt(1.0 + m[1, 1] - m[0, 0] - m[2, 2])
        q = np.array(
            [(m[0, 2] - m[2, 0]) / s, (m[0, 1] + m[1, 0]) / s, 0.25 * s, (m[1, 2] + m[2, 1]) / s]
        )
    else:
        s = 2.0 * np.sqrt(1.0 + m[2, 2] - m[0, 0] - m[1, 1])
        q = np.array(
            [(m[1, 0] - m[0, 1]) / s, (m[0, 2] + m[2, 0]) / s, (m[1, 2] + m[2, 1]) / s, 0.25 * s]
        )
    return quat_normalize(q)


def quat_from_axis_angle(axis: np.ndarray, angle: float) -> np.ndarray:
    """Unit quaternion rotating by ``angle`` radians about ``axis``."""
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm < 1e-300:
        raise ValueError("axis must be nonzero")
    half = 0.5 * angle
    return np.concatenate(([np.cos(half)], np.sin(half) * axis / norm))


def quat_exp(phi: np.ndarray) -> np.ndarray:
    """Exponential map: rotation vector ``phi`` (3,) -> unit quaternion."""
    phi = np.asarray(phi, dtype=float)
    angle = np.linalg.norm(phi)
    if angle < 1e-12:
        # Second-order small-angle expansion keeps the result unit-norm.
        return quat_normalize(np.concatenate(([1.0 - angle**2 / 8.0], 0.5 * phi)))
    return np.concatenate(([np.cos(angle / 2)], np.sin(angle / 2) * phi / angle))


def quat_log(q: np.ndarray) -> np.ndarray:
    """Logarithm map: unit quaternion -> rotation vector (3,)."""
    q = quat_normalize(q)
    if q[0] < 0:  # Keep the shortest rotation.
        q = -q
    vec_norm = np.linalg.norm(q[1:])
    if vec_norm < 1e-12:
        return 2.0 * q[1:]
    angle = 2.0 * np.arctan2(vec_norm, q[0])
    return angle * q[1:] / vec_norm


def quat_slerp(a: np.ndarray, b: np.ndarray, t: float) -> np.ndarray:
    """Spherical linear interpolation from ``a`` (t=0) to ``b`` (t=1)."""
    if not 0.0 <= t <= 1.0:
        raise ValueError(f"t out of [0,1]: {t}")
    a = quat_normalize(a)
    b = quat_normalize(b)
    dot = float(np.dot(a, b))
    if dot < 0.0:
        b = -b
        dot = -dot
    if dot > 0.9995:
        return quat_normalize(a + t * (b - a))
    theta = np.arccos(np.clip(dot, -1.0, 1.0))
    return (np.sin((1 - t) * theta) * a + np.sin(t * theta) * b) / np.sin(theta)


def quat_angle_between(a: np.ndarray, b: np.ndarray) -> float:
    """Geodesic angle (radians) between two unit quaternions."""
    return float(np.linalg.norm(quat_log(quat_multiply(quat_conjugate(a), b))))
