"""Geometry and numerics shared across the testbed.

- :mod:`repro.maths.quaternion` -- Hamilton quaternion algebra (w, x, y, z).
- :mod:`repro.maths.se3` -- SO(3)/SE(3) utilities (skew, exp/log maps, poses).
- :mod:`repro.maths.splines` -- C2 trajectory interpolation with analytic
  derivatives (the basis of IMU synthesis).
"""

from repro.maths.quaternion import (
    quat_conjugate,
    quat_exp,
    quat_from_axis_angle,
    quat_identity,
    quat_log,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_slerp,
    quat_to_matrix,
    matrix_to_quat,
)
from repro.maths.se3 import Pose, skew, so3_exp, so3_log

__all__ = [
    "Pose",
    "matrix_to_quat",
    "quat_conjugate",
    "quat_exp",
    "quat_from_axis_angle",
    "quat_identity",
    "quat_log",
    "quat_multiply",
    "quat_normalize",
    "quat_rotate",
    "quat_slerp",
    "quat_to_matrix",
    "skew",
    "so3_exp",
    "so3_log",
]
