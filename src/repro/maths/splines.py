"""C2 trajectory interpolation with analytic derivatives.

The sensor substrate needs a ground-truth trajectory that is twice
continuously differentiable (so the synthesized IMU sees no acceleration
jumps) with closed-form linear acceleration and body angular velocity.
Positions use per-axis cubic splines; orientation uses per-angle cubic
splines on ZYX Euler angles (yaw, pitch, roll), whose rates map analytically
to body angular velocity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.interpolate import CubicSpline

from repro.maths.quaternion import quat_from_axis_angle, quat_multiply


def euler_zyx_to_quat(yaw: float, pitch: float, roll: float) -> np.ndarray:
    """ZYX Euler angles to unit quaternion (body-to-world)."""
    qz = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), yaw)
    qy = quat_from_axis_angle(np.array([0.0, 1.0, 0.0]), pitch)
    qx = quat_from_axis_angle(np.array([1.0, 0.0, 0.0]), roll)
    return quat_multiply(quat_multiply(qz, qy), qx)


def euler_rates_to_body_omega(
    yaw: float, pitch: float, roll: float,
    yaw_rate: float, pitch_rate: float, roll_rate: float,
) -> np.ndarray:
    """ZYX Euler angle rates to body-frame angular velocity.

    Standard kinematic relation for the ZYX (yaw-pitch-roll) convention.
    """
    sin_r, cos_r = np.sin(roll), np.cos(roll)
    sin_p, cos_p = np.sin(pitch), np.cos(pitch)
    return np.array(
        [
            roll_rate - yaw_rate * sin_p,
            pitch_rate * cos_r + yaw_rate * cos_p * sin_r,
            -pitch_rate * sin_r + yaw_rate * cos_p * cos_r,
        ]
    )


@dataclass(frozen=True)
class SplineSample:
    """Ground-truth kinematics at one instant."""

    position: np.ndarray          # world frame (m)
    velocity: np.ndarray          # world frame (m/s)
    acceleration: np.ndarray      # world frame (m/s^2), gravity NOT included
    orientation: np.ndarray       # unit quaternion, body-to-world
    omega_body: np.ndarray        # body frame angular velocity (rad/s)


class TrajectorySpline:
    """Cubic-spline trajectory through position and Euler-angle waypoints.

    ``times`` must be strictly increasing; positions are (N, 3); eulers are
    (N, 3) as (yaw, pitch, roll) in radians.  Natural boundary conditions
    keep accelerations finite at the ends.
    """

    def __init__(self, times: np.ndarray, positions: np.ndarray, eulers: np.ndarray) -> None:
        times = np.asarray(times, dtype=float)
        positions = np.asarray(positions, dtype=float)
        eulers = np.asarray(eulers, dtype=float)
        if times.ndim != 1 or len(times) < 4:
            raise ValueError("need at least 4 waypoints")
        if np.any(np.diff(times) <= 0):
            raise ValueError("waypoint times must be strictly increasing")
        if positions.shape != (len(times), 3) or eulers.shape != (len(times), 3):
            raise ValueError("positions and eulers must be (N, 3)")
        if np.max(np.abs(eulers[:, 1])) > np.pi / 2 - 0.05:
            raise ValueError("pitch waypoints too close to gimbal lock (+-pi/2)")
        self.t_start = float(times[0])
        self.t_end = float(times[-1])
        self._pos = CubicSpline(times, positions, bc_type="natural")
        self._vel = self._pos.derivative(1)
        self._acc = self._pos.derivative(2)
        self._euler = CubicSpline(times, eulers, bc_type="natural")
        self._euler_rate = self._euler.derivative(1)

    def sample(self, t: float) -> SplineSample:
        """Ground-truth kinematics at time ``t`` (clamped to the domain)."""
        t = float(np.clip(t, self.t_start, self.t_end))
        yaw, pitch, roll = self._euler(t)
        yaw_rate, pitch_rate, roll_rate = self._euler_rate(t)
        return SplineSample(
            position=np.asarray(self._pos(t), dtype=float),
            velocity=np.asarray(self._vel(t), dtype=float),
            acceleration=np.asarray(self._acc(t), dtype=float),
            orientation=euler_zyx_to_quat(yaw, pitch, roll),
            omega_body=euler_rates_to_body_omega(
                yaw, pitch, roll, yaw_rate, pitch_rate, roll_rate
            ),
        )

    @property
    def duration(self) -> float:
        """Length of the trajectory's time domain (seconds)."""
        return self.t_end - self.t_start
