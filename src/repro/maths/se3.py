"""SO(3)/SE(3) utilities and the :class:`Pose` type used across the system.

A :class:`Pose` is the position and orientation of the user's head in the
world frame -- the fundamental datum flowing from the perception pipeline to
the visual and audio pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.maths.quaternion import (
    quat_angle_between,
    quat_conjugate,
    quat_identity,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_to_matrix,
)


def skew(v: np.ndarray) -> np.ndarray:
    """Skew-symmetric (cross-product) matrix of a 3-vector."""
    x, y, z = np.asarray(v, dtype=float)
    return np.array([[0.0, -z, y], [z, 0.0, -x], [-y, x, 0.0]])


def so3_exp(phi: np.ndarray) -> np.ndarray:
    """Rodrigues' formula: rotation vector -> rotation matrix."""
    phi = np.asarray(phi, dtype=float)
    angle = np.linalg.norm(phi)
    if angle < 1e-12:
        return np.eye(3) + skew(phi)
    axis = phi / angle
    k = skew(axis)
    return np.eye(3) + np.sin(angle) * k + (1.0 - np.cos(angle)) * (k @ k)


def so3_log(rotation: np.ndarray) -> np.ndarray:
    """Rotation matrix -> rotation vector (inverse of :func:`so3_exp`)."""
    r = np.asarray(rotation, dtype=float)
    cos_angle = np.clip((np.trace(r) - 1.0) / 2.0, -1.0, 1.0)
    angle = np.arccos(cos_angle)
    if angle < 1e-12:
        return np.array([r[2, 1] - r[1, 2], r[0, 2] - r[2, 0], r[1, 0] - r[0, 1]]) / 2.0
    if np.pi - angle < 1e-6:
        # Near pi the sin-based formula is ill-conditioned; use the
        # outer-product structure R ~= 2 a a^T - I to recover the axis.
        m = (r + np.eye(3)) / 2.0
        i = int(np.argmax(np.diagonal(m)))
        axis = m[i] / np.sqrt(max(m[i, i], 1e-12))
        axis = axis / max(np.linalg.norm(axis), 1e-12)
        return angle * axis
    axis = np.array([r[2, 1] - r[1, 2], r[0, 2] - r[2, 0], r[1, 0] - r[0, 1]]) / (2.0 * np.sin(angle))
    return angle * axis


@dataclass(frozen=True)
class Pose:
    """Position + orientation of a rigid body in the world frame.

    ``orientation`` is a unit quaternion mapping body-frame vectors to
    world-frame vectors.  ``timestamp`` is the time of the underlying sensor
    datum (e.g. the IMU sample that produced this estimate), which is what
    MTP measures the age of.
    """

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    orientation: np.ndarray = field(default_factory=quat_identity)
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", np.asarray(self.position, dtype=float))
        object.__setattr__(
            self, "orientation", quat_normalize(np.asarray(self.orientation, dtype=float))
        )
        if self.position.shape != (3,):
            raise ValueError(f"position must be shape (3,), got {self.position.shape}")

    @property
    def rotation_matrix(self) -> np.ndarray:
        """Body-to-world rotation matrix."""
        return quat_to_matrix(self.orientation)

    def transform_point(self, point_body: np.ndarray) -> np.ndarray:
        """Body-frame point(s) -> world frame."""
        return quat_rotate(self.orientation, point_body) + self.position

    def inverse_transform_point(self, point_world: np.ndarray) -> np.ndarray:
        """World-frame point(s) -> body frame."""
        return quat_rotate(
            quat_conjugate(self.orientation),
            np.asarray(point_world, dtype=float) - self.position,
        )

    def compose(self, other: "Pose") -> "Pose":
        """This pose followed by ``other`` expressed in this pose's frame."""
        return Pose(
            position=self.transform_point(other.position),
            orientation=quat_multiply(self.orientation, other.orientation),
            timestamp=max(self.timestamp, other.timestamp),
        )

    def relative_to(self, reference: "Pose") -> "Pose":
        """This pose expressed in ``reference``'s frame."""
        inv_q = quat_conjugate(reference.orientation)
        return Pose(
            position=quat_rotate(inv_q, self.position - reference.position),
            orientation=quat_multiply(inv_q, self.orientation),
            timestamp=self.timestamp,
        )

    def translation_error(self, other: "Pose") -> float:
        """Euclidean distance between the two positions (metres)."""
        return float(np.linalg.norm(self.position - other.position))

    def rotation_error(self, other: "Pose") -> float:
        """Geodesic angle between the two orientations (radians)."""
        return quat_angle_between(self.orientation, other.orientation)
