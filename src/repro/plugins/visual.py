"""Visual-pipeline plugins: the application and asynchronous reprojection.

In the integrated (timing) runs these plugins carry *poses*, not pixels:
collecting post-reprojection images live "incurs too much overhead and
perturbs the run" (§III-E), so -- exactly as the paper does -- the images
are re-rendered offline from the logged poses by
:mod:`repro.metrics.qoe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import SystemConfig
from repro.core.plugin import InvocationContext, IterationResult, OnVsync, Periodic, Plugin
from repro.core.scheduler import CompletionInfo
from repro.maths.se3 import Pose
from repro.metrics.mtp import MtpSample
from repro.visual.renderer import Renderer
from repro.visual.scenes import Scene


@dataclass(frozen=True)
class SubmittedFrame:
    """What the application hands the compositor: a frame + its pose."""

    pose: Pose           # the (stale) pose the frame was rendered with
    render_start: float  # virtual time rendering began
    complexity: float


@dataclass(frozen=True)
class DisplayEvent:
    """One displayed frame's provenance, for offline image-quality replay."""

    submit_time: float   # when the buffer was accepted (vsync)
    frame_pose: Pose     # pose the application rendered with
    warp_pose: Pose      # pose reprojection corrected to
    imu_age: float


def display_cost_scale(config: SystemConfig, fov_exponent: float = 1.0) -> float:
    """Cost multiplier for non-default display settings.

    1.0 at the Table III defaults (2K, 90 deg FoV); rendering and
    reprojection cost grow ~linearly with pixels and with the solid angle
    the FoV sweeps.
    """
    from repro.core.config import RESOLUTIONS

    baseline_pixels = RESOLUTIONS["2K"][0] * RESOLUTIONS["2K"][1]
    pixel_ratio = config.display_pixels / baseline_pixels
    fov_ratio = config.field_of_view_deg / 90.0
    return float(pixel_ratio**0.9 * fov_ratio**fov_exponent)


class ApplicationPlugin(Plugin):
    """The game engine: renders frames against the freshest pose.

    Reads ``fast_pose`` asynchronously, "renders" (charges the per-app cost
    scaled by view-dependent complexity), and submits the frame.
    """

    name = "application"
    component = "application"
    pipeline = "application"
    uses_gpu = True

    def __init__(self, config: SystemConfig, scene: Scene) -> None:
        super().__init__(Periodic(config.vsync_period))
        self.config = config
        self.scene = scene
        self.renderer = Renderer(scene)
        self._complexity_ema: Optional[float] = None
        # Display knobs are load-bearing (§IV-A1: larger displays and
        # FoVs further stress the system): render cost scales with the
        # pixel count (near-linearly; GPU-bound) and the field of view.
        self._static_scale = display_cost_scale(config)

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        latest = self.switchboard.topic("fast_pose").get_latest() if self.switchboard else None
        if latest is None or latest.data is None:
            result.skipped = True
            return result
        pose: Pose = latest.data
        raw = self.renderer.view_complexity(pose)
        # Self-normalizing: divide by a running mean so the cost model's
        # calibrated mean stays put while per-view variation remains.
        if self._complexity_ema is None:
            self._complexity_ema = raw
        else:
            self._complexity_ema = 0.98 * self._complexity_ema + 0.02 * raw
        complexity = float(np.clip(raw / max(self._complexity_ema, 1e-6), 0.5, 2.0))
        complexity *= self._static_scale
        result.complexity = complexity
        result.publish(
            "frame",
            SubmittedFrame(pose=pose, render_start=ctx.now, complexity=complexity),
            data_time=latest.effective_data_time,
        )
        return result


class TimewarpPlugin(Plugin):
    """Asynchronous reprojection, scheduled as late as possible (fn. 5).

    Reads the latest submitted frame and the freshest pose, reprojects,
    and records the per-frame motion-to-photon sample:
    ``mtp = t_imu_age + t_reprojection + t_swap`` (§III-E).
    """

    name = "timewarp"
    component = "timewarp"
    pipeline = "visual"
    uses_gpu = True
    # Compositor runs in a high-priority GPU context (lower = higher).
    gpu_priority = -1

    def __init__(self, config: SystemConfig, lead: float) -> None:
        super().__init__(OnVsync(config.vsync_period, lead))
        self.config = config
        self.mtp_samples: List[MtpSample] = []
        self.display_events: List[DisplayEvent] = []
        self._pending: Optional[dict] = None
        # Degradation accounting: frames where reprojection covered for a
        # missing/stalled renderer by re-warping a stale submission.
        self.stale_frame_count = 0
        self._announced_stale = False
        # Reprojection is framebuffer-bandwidth bound: cost scales with
        # the display pixel count.
        self._static_scale = display_cost_scale(config, fov_exponent=0.0)

    def _predict_pose(self, pose_topic, latest, horizon: float) -> Pose:
        """Constant-velocity pose prediction over ``horizon`` seconds
        (footnote 3: reproject based on the pose predicted for when the
        frame will actually be displayed)."""
        from repro.maths.quaternion import quat_conjugate, quat_exp, quat_log, quat_multiply

        # Differentiate over a ~10 ms baseline: consecutive 2 ms samples
        # give a velocity estimate whose noise swamps the prediction gain
        # (the misprediction risk footnote 6 warns about).
        previous = pose_topic.get_latest_before(latest.publish_time - 8e-3)
        if previous is None or previous.data is None:
            previous = pose_topic.get_latest_before(latest.publish_time - 1e-9)
        if horizon <= 0 or previous is None or previous.data is None:
            return latest.data
        dt = latest.effective_data_time - previous.effective_data_time
        if dt <= 1e-6:
            return latest.data
        head: Pose = latest.data
        delta = quat_multiply(quat_conjugate(previous.data.orientation), head.orientation)
        omega = quat_log(delta) / dt
        velocity = (head.position - previous.data.position) / dt
        return Pose(
            position=head.position + velocity * horizon,
            orientation=quat_multiply(head.orientation, quat_exp(omega * horizon)),
            timestamp=head.timestamp,
        )

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        assert self.switchboard is not None
        pose_event = self.switchboard.topic("fast_pose").get_latest()
        frame_event = self.switchboard.topic("frame").get_latest()
        if pose_event is None or frame_event is None or pose_event.data is None:
            result.skipped = True
            return result
        frame: SubmittedFrame = frame_event.data
        warp_pose: Pose = pose_event.data
        if self.config.pose_prediction:
            # Predict to the vsync this invocation targets.
            vsync_period = self.trigger.period
            next_vsync = (int(ctx.now / vsync_period) + 1) * vsync_period
            horizon = next_vsync - pose_event.effective_data_time
            warp_pose = self._predict_pose(
                self.switchboard.topic("fast_pose"), pose_event, horizon
            )
        imu_age = max(ctx.now - pose_event.effective_data_time, 0.0)
        # Renderer-miss coverage (the paper's timewarp role): a frame older
        # than two vsync periods means the application missed its slot(s)
        # and this invocation is re-reprojecting the last good frame.
        stale = (ctx.now - frame_event.publish_time) > 2.0 * self.trigger.period
        if stale:
            self.stale_frame_count += 1
            if not self._announced_stale:
                self._announced_stale = True
                from repro.resilience.supervisor import SupervisionEvent

                result.publish(
                    "supervision",
                    SupervisionEvent(
                        time=ctx.now,
                        plugin=self.name,
                        kind="degraded",
                        detail="re-reprojecting stale frame: renderer missing vsyncs",
                    ),
                )
        self._pending = {
            "imu_age": imu_age,
            "frame_pose": frame.pose,
            "warp_pose": warp_pose,
            "stale": stale,
        }
        result.complexity = self._static_scale
        if self.obs is not None:
            # Annotate the invocation span so exported traces show each
            # frame's pose age and staleness without re-deriving them.
            self.obs.annotate(imu_age=imu_age, stale_frame=stale)
        return result

    def on_complete(self, info: CompletionInfo) -> None:
        """Scheduler hook: close out the MTP sample at buffer submission."""
        if self._pending is None:
            return
        pending = self._pending
        self._pending = None
        sample = MtpSample(
            frame_time=info.swap_time,
            imu_age=pending["imu_age"],
            reprojection_time=info.end - info.start,
            swap_wait=max(info.swap_time - info.end, 0.0),
            stale_frame=pending.get("stale", False),
        )
        self.mtp_samples.append(sample)
        if self.obs is not None:
            # Feed the online MTP histogram (p50/p95/p99 without
            # retaining samples) and the per-segment decomposition.
            self.obs.record_mtp(sample)
        self.display_events.append(
            DisplayEvent(
                submit_time=info.swap_time,
                frame_pose=pending["frame_pose"],
                warp_pose=pending["warp_pose"],
                imu_age=pending["imu_age"],
            )
        )
