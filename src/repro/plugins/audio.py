"""Audio-pipeline plugins: ambisonic encoding and binaural playback."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.audio.encoding import AudioEncoder
from repro.audio.playback import AudioPlayback
from repro.audio.sources import MusicLikeSource, SpeechLikeSource
from repro.core.config import SystemConfig
from repro.core.plugin import InvocationContext, IterationResult, Periodic, Plugin
from repro.maths.se3 import Pose


@dataclass(frozen=True)
class BinauralBlock:
    """One rendered stereo block (energy only is retained in long runs)."""

    timestamp: float
    rms: float
    peak: float


class AudioEncodingPlugin(Plugin):
    """Encodes the scene's mono sources into the HOA soundfield."""

    name = "audio_encoding"
    component = "audio_encoding"
    pipeline = "audio"

    def __init__(self, config: SystemConfig, encoder: Optional[AudioEncoder] = None) -> None:
        super().__init__(Periodic(config.audio_period))
        self.config = config
        self.encoder = encoder or AudioEncoder(
            [
                SpeechLikeSource(sample_rate_hz=config.audio_sample_rate_hz),
                MusicLikeSource(sample_rate_hz=config.audio_sample_rate_hz),
            ],
            block_size=config.audio_block_size,
        )

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        if self.config.fidelity == "full":
            soundfield = self.encoder.encode_next_block()
            result.publish("soundfield", soundfield, data_time=ctx.now)
        else:
            result.publish("soundfield", None, data_time=ctx.now)
        return result


class AudioPlaybackPlugin(Plugin):
    """Binauralizes the latest soundfield with the freshest head pose."""

    name = "audio_playback"
    component = "audio_playback"
    pipeline = "audio"

    def __init__(self, config: SystemConfig, playback: Optional[AudioPlayback] = None) -> None:
        super().__init__(Periodic(config.audio_period))
        self.config = config
        self.playback = playback or AudioPlayback(block_size=config.audio_block_size,
                                                  sample_rate_hz=config.audio_sample_rate_hz)
        self.blocks_rendered = 0

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        assert self.switchboard is not None
        soundfield_event = self.switchboard.topic("soundfield").get_latest()
        if soundfield_event is None:
            result.skipped = True
            return result
        if self.config.fidelity == "full":
            if soundfield_event.data is None:
                result.skipped = True
                return result
            pose_event = self.switchboard.topic("fast_pose").get_latest()
            pose: Pose = (
                pose_event.data
                if pose_event is not None and pose_event.data is not None
                else Pose(np.zeros(3))
            )
            stereo = self.playback.render_block(soundfield_event.data, pose)
            block = BinauralBlock(
                timestamp=ctx.now,
                rms=float(np.sqrt((stereo**2).mean())),
                peak=float(np.abs(stereo).max()),
            )
            result.publish("binaural", block, data_time=soundfield_event.effective_data_time)
        else:
            result.publish("binaural", None, data_time=soundfield_event.effective_data_time)
        self.blocks_rendered += 1
        return result
