"""Extended-configuration plugins: eye tracking, scene reconstruction,
holographic display.

The paper's *integrated* runs exclude these three components because
OpenXR (at the time) had no interface through which an application could
consume their outputs (§III-B); they are characterized standalone.  They
are nevertheless full ILLIXR components, and this module wires them into
the runtime to demonstrate the plugin architecture's extensibility --
``build_extended_runtime`` boots a system with all eleven plugins.

To keep integrated runs fast, the real algorithms execute on a stride
(every ``real_every`` invocations); every invocation still charges its
modeled platform cost, so the timing/power picture includes the extended
components at full rate.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.config import SystemConfig
from repro.core.plugin import InvocationContext, IterationResult, OnTopic, Periodic, Plugin
from repro.maths.se3 import Pose
from repro.maths.splines import TrajectorySpline
from repro.perception.eye_tracking import EyeTracker
from repro.perception.reconstruction.pipeline import ReconstructionPipeline
from repro.sensors.depth import DepthCamera, DepthScene
from repro.sensors.eye import EyeImageGenerator
from repro.visual.hologram import WeightedGerchbergSaxton


class DepthCameraPlugin(Plugin):
    """Publishes depth frames for scene reconstruction (ZED depth mode)."""

    name = "depth_camera"
    component = "camera"
    pipeline = "perception"

    def __init__(
        self,
        config: SystemConfig,
        trajectory: TrajectorySpline,
        camera: Optional[DepthCamera] = None,
        rate_hz: float = 5.0,
    ) -> None:
        super().__init__(Periodic(1.0 / rate_hz))
        self.config = config
        self.trajectory = trajectory
        self.camera = camera or DepthCamera(DepthScene.default(), width=64, height=48)

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        if self.config.fidelity == "full":
            truth = self.trajectory.sample(ctx.now)
            pose = Pose(truth.position, truth.orientation, timestamp=ctx.now)
            depth = self.camera.render(pose)
            result.publish("depth", (depth, pose), data_time=ctx.now)
        else:
            result.publish("depth", None, data_time=ctx.now)
        return result


class SceneReconstructionPlugin(Plugin):
    """ElasticFusion stand-in: fuses depth frames into the TSDF map."""

    name = "scene_reconstruction"
    component = "scene_reconstruction"
    pipeline = "perception"
    uses_gpu = True

    def __init__(
        self,
        config: SystemConfig,
        camera: DepthCamera,
        real_every: int = 1,
    ) -> None:
        super().__init__(OnTopic("depth"))
        if real_every < 1:
            raise ValueError("real_every must be >= 1")
        self.config = config
        self.pipeline_impl = ReconstructionPipeline(camera)
        self.real_every = real_every
        self.frames_fused = 0

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        payload = ctx.trigger_event.data if ctx.trigger_event else None
        if payload is None:
            if self.config.fidelity == "full":
                result.skipped = True
                return result
            result.publish("scene_map", None, data_time=ctx.now)
            return result
        depth, pose_guess = payload
        if ctx.index % self.real_every == 0:
            frame_result = self.pipeline_impl.process_frame(depth, pose_guess)
            self.frames_fused += 1
            result.publish("scene_map", frame_result, data_time=ctx.now)
            # The map grows over time; so does per-frame work (§IV-B1).
            result.complexity = float(
                np.clip(0.7 + 2.0 * frame_result.occupied_fraction, 0.5, 2.0)
            )
        return result


class EyeTrackingPlugin(Plugin):
    """RITnet stand-in: segments per-eye images, publishes gaze."""

    name = "eye_tracking"
    component = "eye_tracking"
    pipeline = "perception"
    uses_gpu = True

    def __init__(
        self,
        config: SystemConfig,
        rate_hz: float = 30.0,
        tracker: Optional[EyeTracker] = None,
        train_steps: int = 60,
        real_every: int = 2,
    ) -> None:
        super().__init__(Periodic(1.0 / rate_hz))
        self.config = config
        self.real_every = max(real_every, 1)
        self._generator = EyeImageGenerator(seed=config.seed + 500)
        if tracker is None:
            tracker = EyeTracker(seed=config.seed)
            if config.fidelity == "full":
                tracker.train(EyeImageGenerator(seed=config.seed + 501), steps=train_steps)
        self.tracker = tracker
        self.predictions = 0

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        if self.config.fidelity != "full" or ctx.index % self.real_every != 0:
            result.publish("gaze", None, data_time=ctx.now)
            return result
        # One image per eye: batch size two, as the paper notes.
        left = self._generator.sample()
        right = self._generator.sample()
        prediction = self.tracker.predict(np.stack([left.image, right.image]))
        self.predictions += 1
        gaze = prediction.gaze.mean(axis=0)
        result.publish("gaze", gaze, data_time=ctx.now)
        return result


class HologramPlugin(Plugin):
    """Adaptive display: computes the SLM phase for the submitted frame."""

    name = "hologram"
    component = "hologram"
    pipeline = "visual"
    uses_gpu = True

    def __init__(
        self,
        config: SystemConfig,
        resolution: int = 64,
        iterations: int = 3,
        real_every: int = 30,
    ) -> None:
        super().__init__(OnTopic("frame"))
        self.config = config
        self.solver = WeightedGerchbergSaxton(resolution=resolution)
        self.iterations = iterations
        self.real_every = max(real_every, 1)
        self.holograms_computed = 0
        self._rng = np.random.default_rng(config.seed + 600)

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        if self.config.fidelity == "full" and ctx.index % self.real_every == 0:
            n = self.solver.resolution
            # Integrated runs carry poses, not pixels; solve against a
            # synthetic focal stack of the right shape.
            targets = [
                np.abs(self._rng.normal(0.0, 1.0, (n, n))) * (self._rng.random((n, n)) > 0.8)
                for _ in self.solver.depths_m
            ]
            solution = self.solver.solve(targets, iterations=self.iterations)
            self.holograms_computed += 1
            result.publish("hologram_phase", solution.efficiency, data_time=ctx.now)
        return result


def build_extended_runtime(
    platform,
    app_name: str = "sponza",
    config: Optional[SystemConfig] = None,
):
    """An integrated system with all eleven components (the paper's full
    Fig. 1 workflow), demonstrating plug-in extensibility."""
    from repro.core.runtime import Runtime, build_runtime

    base = build_runtime(platform, app_name, config)
    config = base.config
    depth_camera = DepthCameraPlugin(config, base.trajectory)
    extra: List[Plugin] = [
        depth_camera,
        SceneReconstructionPlugin(config, depth_camera.camera),
        EyeTrackingPlugin(config),
        HologramPlugin(config),
    ]
    return Runtime(
        base.platform,
        config,
        app_name,
        base.plugins + extra,
        base.trajectory,
        timing=base.timing,
    )
