"""Component offloading (§II, footnote 2 of the paper).

"Since component interfaces are well-specified and modular, a local
component can be easily swapped with a remote one without modifying the
rest of the system.  We have already implemented offloading some
components and plan a generalized offloading module."

This module is that generalized offloading module for the reproduction:

- :class:`NetworkLink` -- a latency + bandwidth model on the DES (uplink
  and downlink as contended serial resources);
- :class:`OffloadedVioPlugin` -- VIO running on a *remote* platform: the
  camera frame is shipped uplink, processed with the remote platform's
  timing, and the pose estimate returns downlink.  The local device pays
  (almost) no VIO compute, at the price of added pose latency.

The headline trade-off this enables (and the extension bench measures):
on Jetson-LP, offloading VIO to a desktop-class edge server frees local
CPU and restores the camera-rate pose stream -- until the network round
trip eats the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import SystemConfig
from repro.core.plugin import InvocationContext, IterationResult, OnTopic, Plugin
from repro.core.phonebook import Phonebook
from repro.core.switchboard import Switchboard
from repro.hardware.platform import Platform
from repro.hardware.timing import TimingModel
from repro.maths.splines import TrajectorySpline
from repro.sensors.camera import CameraFrame, StereoCamera


@dataclass(frozen=True)
class NetworkLink:
    """A symmetric-latency, asymmetric-bandwidth wireless link."""

    latency_s: float = 0.004            # one-way (e.g. Wi-Fi 6 / 5G edge)
    uplink_bps: float = 200e6
    downlink_bps: float = 200e6
    jitter_s: float = 0.001

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.uplink_bps <= 0 or self.downlink_bps <= 0:
            raise ValueError("bandwidths must be positive")

    def uplink_time(self, payload_bytes: int, rng: np.random.Generator) -> float:
        """One-way transfer time for ``payload_bytes`` up to the server."""
        return (
            self.latency_s
            + payload_bytes * 8 / self.uplink_bps
            + float(rng.exponential(self.jitter_s))
        )

    def downlink_time(self, payload_bytes: int, rng: np.random.Generator) -> float:
        """One-way transfer time for ``payload_bytes`` back to the device."""
        return (
            self.latency_s
            + payload_bytes * 8 / self.downlink_bps
            + float(rng.exponential(self.jitter_s))
        )


# Payload sizes: a stereo feature frame (ids + 4 floats per feature, plus
# image patches a real system would ship) and a pose estimate.
FRAME_BYTES_PER_FEATURE = 4 * 4 + 8 + 64   # uv pairs + id + descriptor patch
FRAME_BYTES_BASE = 2048
POSE_BYTES = 256


class OffloadedVioPlugin(Plugin):
    """VIO executed on a remote platform across a network link.

    Keeps the exact switchboard contract of the local
    :class:`~repro.plugins.perception.VioPlugin` (consumes ``camera``,
    produces ``slow_pose``), so the rest of the system is untouched --
    the modularity claim of §II-B made concrete.

    Timing: the *local* cost charged to this plugin is a small
    serialization overhead; the remote compute and both network legs are
    modeled as extra pipeline delay before the estimate is published
    (folded into this plugin's invocation via explicit waits).
    """

    name = "vio"
    component = "camera"   # local cost: serialize + ship (camera-sized)
    pipeline = "perception"

    def __init__(
        self,
        config: SystemConfig,
        camera: StereoCamera,
        trajectory: TrajectorySpline,
        remote_platform: Platform,
        link: Optional[NetworkLink] = None,
        msckf_config=None,
    ) -> None:
        super().__init__(OnTopic("camera"))
        from repro.plugins.perception import VioPlugin

        # Delegate the actual filtering to a local VioPlugin instance --
        # the algorithm is identical; only *where* it runs differs.
        self._inner = VioPlugin(config, camera, trajectory, msckf_config=msckf_config)
        self.config = config
        self.link = link or NetworkLink()
        self.remote_timing = TimingModel(remote_platform, seed=config.seed + 1)
        self._rng = np.random.default_rng(config.seed + 700)
        self.round_trips: list[float] = []

    def setup(self, phonebook: Phonebook, switchboard: Switchboard) -> None:
        super().setup(phonebook, switchboard)
        self._inner.setup(phonebook, switchboard)

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        inner_result = self._inner.iteration(ctx)
        if inner_result.skipped:
            return inner_result
        frame: Optional[CameraFrame] = ctx.trigger_event.data if ctx.trigger_event else None
        feature_count = frame.feature_count if frame is not None else 40
        payload = FRAME_BYTES_BASE + feature_count * FRAME_BYTES_PER_FEATURE

        uplink = self.link.uplink_time(payload, self._rng)
        remote_compute = self.remote_timing.sample(
            "vio", complexity=max(inner_result.complexity, 1e-3)
        ).total
        downlink = self.link.downlink_time(POSE_BYTES, self._rng)
        round_trip = uplink + remote_compute + downlink
        self.round_trips.append(round_trip)

        result = IterationResult(outputs=inner_result.outputs)
        # Local cost: serialization only (charged via the 'camera' cost
        # model); the remote round trip delays publication.
        result.complexity = 1.0
        result.extra_delay = round_trip
        return result


def build_offloaded_runtime(
    platform: Platform,
    remote_platform: Platform,
    app_name: str = "platformer",
    config: Optional[SystemConfig] = None,
    link: Optional[NetworkLink] = None,
):
    """The integrated system with VIO offloaded to ``remote_platform``.

    Everything except the VIO plugin is identical to
    :func:`repro.core.runtime.build_runtime` -- the swap exercises the
    modularity §II-B claims.
    """
    from repro.core.runtime import Runtime, build_runtime
    from repro.plugins.perception import VioPlugin

    base = build_runtime(platform, app_name, config)
    plugins = []
    for plugin in base.plugins:
        if isinstance(plugin, VioPlugin):
            plugins.append(
                OffloadedVioPlugin(
                    base.config,
                    plugin.camera,
                    plugin.trajectory,
                    remote_platform=remote_platform,
                    link=link,
                    msckf_config=plugin.msckf_config,
                )
            )
        else:
            plugins.append(plugin)
    return Runtime(
        base.platform, base.config, app_name, plugins, base.trajectory, timing=base.timing
    )
