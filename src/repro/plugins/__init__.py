"""ILLIXR plugins: components wired into the runtime via event streams.

Topic map (the arrows of Fig. 2):

======================  =============================  =====================
topic                   payload                        producer -> consumers
======================  =============================  =====================
``camera``              CameraFrame                    camera -> VIO (sync)
``imu``                 ImuSample                      imu -> integrator (sync)
``slow_pose``           VioEstimate                    VIO -> integrator (async)
``fast_pose``           Pose (data_time = IMU stamp)   integrator -> app, timewarp, audio (async)
``frame``               SubmittedFrame                 application -> timewarp (async)
``display``             DisplayEvent                   timewarp -> offline QoE
``soundfield``          (channels, block) ndarray      audio encoder -> playback (async)
``binaural``            BinauralBlock                  playback -> (sink)
======================  =============================  =====================
"""

from repro.plugins.perception import CameraPlugin, ImuPlugin, IntegratorPlugin, VioPlugin
from repro.plugins.visual import ApplicationPlugin, DisplayEvent, SubmittedFrame, TimewarpPlugin
from repro.plugins.audio import AudioEncodingPlugin, AudioPlaybackPlugin

__all__ = [
    "ApplicationPlugin",
    "AudioEncodingPlugin",
    "AudioPlaybackPlugin",
    "CameraPlugin",
    "DisplayEvent",
    "ImuPlugin",
    "IntegratorPlugin",
    "SubmittedFrame",
    "TimewarpPlugin",
    "VioPlugin",
]
