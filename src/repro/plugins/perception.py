"""Perception-pipeline plugins: camera, IMU, VIO, IMU integrator."""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.core.config import SystemConfig
from repro.core.plugin import InvocationContext, IterationResult, OnTopic, Periodic, Plugin
from repro.core.phonebook import Phonebook
from repro.core.switchboard import Switchboard
from repro.maths.se3 import Pose
from repro.maths.splines import TrajectorySpline
from repro.perception.integrator import IntegratorState, Rk4Integrator
from repro.perception.vio.msckf import Msckf, MsckfConfig, VioEstimate
from repro.sensors.camera import StereoCamera
from repro.sensors.imu import ImuModel, ImuSample


class CameraPlugin(Plugin):
    """Publishes stereo feature frames at the camera rate (ZED stand-in)."""

    name = "camera"
    component = "camera"
    pipeline = "perception"

    def __init__(self, config: SystemConfig, camera: StereoCamera, trajectory: TrajectorySpline) -> None:
        super().__init__(Periodic(config.camera_period))
        self.config = config
        self.camera = camera
        self.trajectory = trajectory
        # The Table III resolution knob is load-bearing: camera processing
        # (debayer/rectify in a real driver) scales with the pixel count.
        from repro.core.config import RESOLUTIONS

        width, height = RESOLUTIONS[config.camera_resolution]
        vga = RESOLUTIONS["VGA"][0] * RESOLUTIONS["VGA"][1]
        self._static_scale = (width * height) / vga

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        result.complexity = self._static_scale
        if self.config.fidelity == "full":
            truth = self.trajectory.sample(ctx.now)
            pose = Pose(truth.position, truth.orientation, timestamp=ctx.now)
            frame = self.camera.observe(pose, timestamp=ctx.now)
            result.publish("camera", frame, data_time=ctx.now)
        else:
            result.publish("camera", None, data_time=ctx.now)
        return result


class ImuPlugin(Plugin):
    """Publishes IMU samples at the IMU rate."""

    name = "imu"
    component = "imu"
    pipeline = "perception"

    def __init__(self, config: SystemConfig, imu: ImuModel) -> None:
        super().__init__(Periodic(config.imu_period))
        self.config = config
        self.imu = imu

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        if self.config.fidelity == "full":
            sample = self.imu.sample_at(ctx.now)
        else:
            sample = ImuSample(timestamp=ctx.now, gyro=np.zeros(3), accel=np.zeros(3))
        result.publish("imu", sample, data_time=ctx.now)
        return result


class VioPlugin(Plugin):
    """OpenVINS stand-in: runs the MSCKF on each camera frame (sync dep)."""

    name = "vio"
    component = "vio"
    pipeline = "perception"

    def __init__(
        self,
        config: SystemConfig,
        camera: StereoCamera,
        trajectory: TrajectorySpline,
        msckf_config: Optional[MsckfConfig] = None,
    ) -> None:
        super().__init__(OnTopic("camera"))
        self.config = config
        self.camera = camera
        self.trajectory = trajectory
        self.msckf_config = msckf_config or (
            MsckfConfig.high_accuracy() if config.vio_quality == "high" else MsckfConfig.standard()
        )
        self.filter: Optional[Msckf] = None
        self._imu_reader = None
        self._frames_processed = 0
        self._last_frame_time: Optional[float] = None
        self._rng = np.random.default_rng(config.seed + 400)

    def setup(self, phonebook: Phonebook, switchboard: Switchboard) -> None:
        super().setup(phonebook, switchboard)
        self._imu_reader = switchboard.topic("imu").subscribe_queue()

    def reset(self, reason=None) -> None:
        """Supervisor restart: relaunch the tracker from scratch.

        A restarted VIO process has no filter state; it re-initializes on
        the next frame, exactly like the first boot (the temporal parallax
        built so far is lost -- restarts are not free).
        """
        self.filter = None
        self._last_frame_time = None
        self._frames_processed = 0

    def _ensure_filter(self, now: float) -> Msckf:
        if self.filter is None:
            truth = self.trajectory.sample(now)
            initial = Pose(truth.position, truth.orientation, timestamp=now)
            self.filter = Msckf(
                self.msckf_config,
                self.camera.intrinsics,
                self.camera.baseline_m,
                initial,
                initial_velocity=truth.velocity,
            )
        return self.filter

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        if self.config.fidelity != "full":
            result.publish(
                "slow_pose",
                None,
                data_time=ctx.trigger_event.effective_data_time if ctx.trigger_event else ctx.now,
            )
            return result
        frame = ctx.trigger_event.data if ctx.trigger_event else None
        if frame is None:
            result.skipped = True
            return result
        vio = self._ensure_filter(frame.timestamp if self._frames_processed == 0 else ctx.now)
        # Dropped camera frames (VIO running behind) widen the tracking
        # baseline; a real KLT front-end loses features it cannot find
        # within its search window.  This is the mechanism behind the
        # paper's Jetson-LP pose drift (§IV-A3): the *average* frame rate
        # stays high, but every miss costs tracked features and therefore
        # accuracy.
        if self._last_frame_time is not None:
            gap = (frame.timestamp - self._last_frame_time) / self.config.camera_period
            if gap > 1.5:
                loss_probability = 1.0 - float(np.exp(-1.1 * (gap - 1.0)))
                for feature_id in list(vio.tracker.active):
                    if self._rng.random() < loss_probability:
                        del vio.tracker.active[feature_id]
                # Two or more consecutive misses exceed the KLT search
                # window entirely: the front-end re-detects from scratch
                # and the filter loses its temporal parallax (this is what
                # turns Jetson-LP's missed deadlines into visible drift).
                if gap >= 2.5:
                    vio.tracker.active.clear()
                    for feature_id in list(vio.state.landmarks):
                        vio.state.remove_landmark(feature_id)
        self._last_frame_time = frame.timestamp
        # Drain IMU samples up to the frame time (synchronous dependence).
        assert self._imu_reader is not None
        for event in self._imu_reader.drain():
            sample: ImuSample = event.data
            if sample.timestamp <= vio.state.timestamp:
                continue
            if sample.timestamp > frame.timestamp:
                break
            vio.process_imu(sample)
        estimate: VioEstimate = vio.process_frame(frame)
        self._frames_processed += 1
        if self.obs is not None:
            # Tracking health on the invocation span + a gauge series, so
            # pose-quality regressions are visible next to latency.
            self.obs.annotate(
                tracked_features=estimate.tracked_features,
                slam_landmarks=estimate.slam_landmarks,
            )
            self.obs.metrics.gauge(
                "vio_tracked_features", "features the front-end is tracking"
            ).set(float(estimate.tracked_features))
        # Input-dependence: more tracked features and landmarks = more work.
        tracked_ratio = min(
            1.0, estimate.tracked_features / max(self.msckf_config.max_features, 1)
        )
        slam_ratio = estimate.slam_landmarks / max(self.msckf_config.max_slam_landmarks, 1)
        complexity = 0.55 + 0.45 * tracked_ratio + 0.1 * slam_ratio
        result.complexity = float(np.clip(complexity, 0.4, 2.0))
        result.publish("slow_pose", estimate, data_time=frame.timestamp)
        return result


class IntegratorPlugin(Plugin):
    """RK4 integrator: fresh pose on every IMU sample (Fig. 2).

    Anchors on the latest VIO estimate (asynchronous dependence): when a
    newer ``slow_pose`` appears, the integrator resets to it and
    re-propagates the buffered IMU samples up to the present.
    """

    name = "integrator"
    component = "integrator"
    pipeline = "perception"

    def __init__(self, config: SystemConfig, trajectory: TrajectorySpline, buffer_seconds: float = 1.0) -> None:
        super().__init__(OnTopic("imu"))
        self.config = config
        self.trajectory = trajectory
        self._buffer: Deque[ImuSample] = deque()
        self._buffer_seconds = buffer_seconds
        self._integrator: Optional[Rk4Integrator] = None
        self._anchor_timestamp = -1.0
        self._slow_pose_topic = None
        # Degradation policy: when the supervisor quarantines VIO, keep
        # the fast path alive with IMU-only RK4 propagation (bootstrapping
        # from scratch if VIO never produced an anchor).
        self._vio_down = False
        self._announced_fallback = False

    def setup(self, phonebook: Phonebook, switchboard: Switchboard) -> None:
        super().setup(phonebook, switchboard)
        self._slow_pose_topic = switchboard.topic("slow_pose")

        def on_supervision(event) -> None:
            notice = event.data
            if (
                getattr(notice, "kind", None) == "quarantine"
                and getattr(notice, "plugin", None) == "vio"
            ):
                self._vio_down = True

        switchboard.topic("supervision").subscribe_callback(on_supervision)

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        result = IterationResult()
        sample: Optional[ImuSample] = ctx.trigger_event.data if ctx.trigger_event else None
        if sample is None:
            result.skipped = True
            return result
        if self.config.fidelity != "full":
            # Model fidelity: ground-truth pose with the IMU timestamp (the
            # timing pipeline still measures realistic pose ages).
            truth = self.trajectory.sample(sample.timestamp)
            pose = Pose(truth.position, truth.orientation, timestamp=sample.timestamp)
            result.publish("fast_pose", pose, data_time=sample.timestamp)
            return result

        self._buffer.append(sample)
        while self._buffer and self._buffer[0].timestamp < ctx.now - self._buffer_seconds:
            self._buffer.popleft()

        latest = self._slow_pose_topic.get_latest() if self._slow_pose_topic else None
        estimate: Optional[VioEstimate] = latest.data if latest else None
        if estimate is not None and estimate.timestamp > self._anchor_timestamp:
            self._anchor_timestamp = estimate.timestamp
            self._integrator = Rk4Integrator(
                IntegratorState(
                    timestamp=estimate.timestamp,
                    orientation=estimate.pose.orientation,
                    position=estimate.pose.position,
                    velocity=estimate.velocity,
                    gyro_bias=estimate.gyro_bias,
                    accel_bias=estimate.accel_bias,
                )
            )
            # Re-propagate buffered samples newer than the anchor.
            for buffered in self._buffer:
                if buffered.timestamp > estimate.timestamp and buffered.timestamp < sample.timestamp:
                    self._integrator.step(buffered)
        if self._vio_down and not self._announced_fallback:
            # Degradation policy: VIO is quarantined; announce that the
            # fast path is running IMU-only from here on.
            self._announced_fallback = True
            from repro.resilience.supervisor import SupervisionEvent

            result.publish(
                "supervision",
                SupervisionEvent(
                    time=ctx.now,
                    plugin=self.name,
                    kind="degraded",
                    detail="imu-only fallback: vio quarantined",
                ),
            )
        if self._integrator is None and self._vio_down:
            # VIO never anchored us: boot the integrator at the current
            # sample (as VIO itself would have at initialization) and
            # coast on dead reckoning.
            truth = self.trajectory.sample(sample.timestamp)
            self._integrator = Rk4Integrator(
                IntegratorState(
                    timestamp=sample.timestamp,
                    orientation=truth.orientation,
                    position=truth.position,
                    velocity=truth.velocity,
                    gyro_bias=np.zeros(3),
                    accel_bias=np.zeros(3),
                )
            )
        if self._integrator is None:
            result.skipped = True
            return result
        if sample.timestamp > self._integrator.state.timestamp:
            self._integrator.step(sample)
        pose = self._integrator.state.pose()
        if self.obs is not None:
            # How far the fast path has coasted from its last VIO anchor
            # (grows unboundedly when VIO is quarantined).
            self.obs.annotate(
                anchor_age=max(sample.timestamp - self._anchor_timestamp, 0.0)
                if self._anchor_timestamp >= 0
                else math.inf,
                vio_down=self._vio_down,
            )
        result.publish("fast_pose", pose, data_time=sample.timestamp)
        return result
