"""Ground-truth trajectory generators.

Two families, mirroring the paper's two input regimes:

- :func:`lab_walk_trajectory` -- the live "user walked in our lab" input of
  §III-A: a smooth random walk inside a room with natural head yaw and gentle
  bobbing.
- :func:`vicon_room_trajectory` -- a stand-in for EuRoC *Vicon Room 1
  Medium* [66]: a faster figure-eight sweep with more aggressive rotation,
  used for the offline VIO/image-quality experiments.
"""

from __future__ import annotations

import numpy as np

from repro.maths.splines import TrajectorySpline


def lab_walk_trajectory(
    duration: float = 35.0,
    seed: int = 0,
    room_half_extent: float = 3.0,
    waypoint_spacing_s: float = 1.4,
) -> TrajectorySpline:
    """A practiced walking trajectory inside a lab-sized room.

    Positions follow a bounded random walk at walking speed; yaw follows the
    walk direction with smooth wander; pitch/roll carry small head
    oscillations; height bobs around 1.7 m.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    rng = np.random.default_rng(seed)
    n_waypoints = max(6, int(duration / waypoint_spacing_s) + 3)
    times = np.linspace(0.0, duration, n_waypoints)

    # Bounded 2-D random walk with momentum (walking, ~0.8 m/s).
    xy = np.zeros((n_waypoints, 2))
    heading = rng.uniform(0.0, 2 * np.pi)
    step = 0.8 * waypoint_spacing_s
    for i in range(1, n_waypoints):
        heading += rng.normal(0.0, 0.45)
        proposal = xy[i - 1] + step * np.array([np.cos(heading), np.sin(heading)])
        # Turn back toward the center when approaching a wall.
        if np.max(np.abs(proposal)) > room_half_extent:
            heading = np.arctan2(-xy[i - 1, 1], -xy[i - 1, 0]) + rng.normal(0.0, 0.3)
            proposal = xy[i - 1] + step * np.array([np.cos(heading), np.sin(heading)])
        xy[i] = np.clip(proposal, -room_half_extent, room_half_extent)

    height = 1.7 + 0.03 * np.sin(2 * np.pi * times / 3.1) + rng.normal(0.0, 0.01, n_waypoints)
    positions = np.column_stack([xy, height])

    # Yaw tracks the direction of motion (people look where they walk).
    deltas = np.diff(xy, axis=0)
    segment_yaw = np.arctan2(deltas[:, 1], deltas[:, 0])
    yaw = np.concatenate([[segment_yaw[0]], segment_yaw])
    yaw = np.unwrap(yaw) + rng.normal(0.0, 0.1, n_waypoints)
    pitch = 0.08 * np.sin(2 * np.pi * times / 5.3) + rng.normal(0.0, 0.02, n_waypoints)
    roll = 0.04 * np.sin(2 * np.pi * times / 4.1) + rng.normal(0.0, 0.015, n_waypoints)
    eulers = np.column_stack([yaw, pitch, roll])
    return TrajectorySpline(times, positions, eulers)


def vicon_room_trajectory(duration: float = 35.0, seed: int = 1) -> TrajectorySpline:
    """An EuRoC-like medium-difficulty sweep: figure-eight with rotation.

    Faster translation and wider angular excursions than the lab walk --
    the "Medium" difficulty class of the Vicon Room sequences.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    rng = np.random.default_rng(seed)
    n_waypoints = max(8, int(duration / 0.9) + 3)
    times = np.linspace(0.0, duration, n_waypoints)
    phase = 2 * np.pi * times / 11.0
    positions = np.column_stack(
        [
            2.0 * np.sin(phase) + rng.normal(0.0, 0.05, n_waypoints),
            1.4 * np.sin(2 * phase) + rng.normal(0.0, 0.05, n_waypoints),
            1.4 + 0.3 * np.sin(2 * np.pi * times / 7.0) + rng.normal(0.0, 0.02, n_waypoints),
        ]
    )
    yaw = np.unwrap(0.9 * np.sin(2 * np.pi * times / 9.0) + 0.25 * rng.normal(0.0, 1.0, n_waypoints).cumsum() * 0.1)
    pitch = 0.22 * np.sin(2 * np.pi * times / 6.1 + 1.0)
    roll = 0.15 * np.sin(2 * np.pi * times / 4.7)
    eulers = np.column_stack([yaw, pitch, roll])
    return TrajectorySpline(times, positions, eulers)
