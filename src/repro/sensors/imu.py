"""IMU synthesis: the standard white-noise + bias-random-walk error model.

The synthesized measurements are what a strapdown IMU reports:

- gyroscope: body angular velocity + slowly drifting bias + white noise;
- accelerometer: specific force ``R^T (a_world - g_world)`` + bias + noise,
  with gravity ``g_world = (0, 0, -9.81)``.

Noise densities default to ZED-Mini-class MEMS values (continuous-time
densities, discretized by ``sqrt(rate)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.maths.quaternion import quat_conjugate, quat_rotate
from repro.maths.splines import TrajectorySpline

GRAVITY_W = np.array([0.0, 0.0, -9.81])


@dataclass(frozen=True)
class ImuSample:
    """One timestamped IMU measurement (body frame)."""

    timestamp: float
    gyro: np.ndarray   # rad/s
    accel: np.ndarray  # m/s^2 (specific force)

    def __post_init__(self) -> None:
        object.__setattr__(self, "gyro", np.asarray(self.gyro, dtype=float))
        object.__setattr__(self, "accel", np.asarray(self.accel, dtype=float))


@dataclass(frozen=True)
class ImuNoise:
    """Continuous-time noise densities (EuRoC-style parameterization)."""

    gyro_noise_density: float = 1.7e-4      # rad / s / sqrt(Hz)
    accel_noise_density: float = 2.0e-3     # m / s^2 / sqrt(Hz)
    gyro_bias_walk: float = 2.0e-5          # rad / s^2 / sqrt(Hz)
    accel_bias_walk: float = 3.0e-3         # m / s^3 / sqrt(Hz)


@dataclass
class ImuModel:
    """Stateful IMU synthesizer (biases evolve as a random walk)."""

    trajectory: TrajectorySpline
    rate_hz: float = 500.0
    noise: ImuNoise = field(default_factory=ImuNoise)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError(f"rate must be positive: {self.rate_hz}")
        self._rng = np.random.default_rng(self.seed)
        self._gyro_bias = self._rng.normal(0.0, 2e-3, 3)
        self._accel_bias = self._rng.normal(0.0, 2e-2, 3)
        self._dt = 1.0 / self.rate_hz
        self._sqrt_rate = np.sqrt(self.rate_hz)
        self._sqrt_dt = np.sqrt(self._dt)

    @property
    def period(self) -> float:
        """Seconds between samples."""
        return self._dt

    def sample_at(self, t: float) -> ImuSample:
        """Synthesize the measurement at time ``t`` and advance the biases."""
        truth = self.trajectory.sample(t)
        # Specific force in the body frame.
        specific_force_w = truth.acceleration - GRAVITY_W
        accel_body = quat_rotate(quat_conjugate(truth.orientation), specific_force_w)
        gyro = (
            truth.omega_body
            + self._gyro_bias
            + self._rng.normal(0.0, self.noise.gyro_noise_density * self._sqrt_rate, 3)
        )
        accel = (
            accel_body
            + self._accel_bias
            + self._rng.normal(0.0, self.noise.accel_noise_density * self._sqrt_rate, 3)
        )
        # Bias random walk.
        self._gyro_bias = self._gyro_bias + self._rng.normal(
            0.0, self.noise.gyro_bias_walk * self._sqrt_dt, 3
        )
        self._accel_bias = self._accel_bias + self._rng.normal(
            0.0, self.noise.accel_bias_walk * self._sqrt_dt, 3
        )
        return ImuSample(timestamp=t, gyro=gyro, accel=accel)

    def sequence(self, t_start: float, t_end: float) -> List[ImuSample]:
        """All samples on the regular grid in ``[t_start, t_end)``."""
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        times = np.arange(t_start, t_end, self._dt)
        return [self.sample_at(float(t)) for t in times]
