"""Stereo camera model: a pinhole rig observing a 3-D landmark field.

The VIO consumes what a real feature front-end would produce from a ZED
Mini: per-frame sets of (feature id, left pixel, right pixel) observations
with pixel noise.  Landmark identity is known to the *sensor* (it generated
the world) but the VIO treats ids only as track associations, exactly as a
KLT tracker would provide.

The camera exposes the §V.C sensor knob: shorter exposure costs more pixel
noise (darker image) but less sensor power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.maths.se3 import Pose
from repro.maths.quaternion import quat_conjugate, quat_rotate


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsics."""

    fx: float = 458.0
    fy: float = 458.0
    cx: float = 320.0
    cy: float = 240.0
    width: int = 640
    height: int = 480

    def project(self, points_cam: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Project camera-frame points (N,3) to pixels (N,2) + validity mask."""
        points_cam = np.atleast_2d(np.asarray(points_cam, dtype=float))
        z = points_cam[:, 2]
        in_front = z > 0.05
        z_safe = np.where(in_front, z, 1.0)
        u = self.fx * points_cam[:, 0] / z_safe + self.cx
        v = self.fy * points_cam[:, 1] / z_safe + self.cy
        in_image = (u >= 0) & (u < self.width) & (v >= 0) & (v < self.height)
        return np.column_stack([u, v]), in_front & in_image

    def back_project(self, pixel: np.ndarray) -> np.ndarray:
        """Unit-depth camera-frame ray for a pixel (u, v)."""
        u, v = np.asarray(pixel, dtype=float)
        return np.array([(u - self.cx) / self.fx, (v - self.cy) / self.fy, 1.0])


@dataclass
class LandmarkField:
    """Random 3-D points on the walls/ceiling of a room-sized shell."""

    count: int = 600
    room_half_extent: float = 4.5
    room_height: float = 3.0
    seed: int = 7
    points: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.count < 8:
            raise ValueError(f"need at least 8 landmarks: {self.count}")
        rng = np.random.default_rng(self.seed)
        h = self.room_half_extent
        points = []
        per_wall = self.count // 5
        # Four walls.
        for axis, sign in ((0, 1), (0, -1), (1, 1), (1, -1)):
            p = rng.uniform(-h, h, (per_wall, 3))
            p[:, 2] = rng.uniform(0.0, self.room_height, per_wall)
            p[:, axis] = sign * h
            points.append(p)
        # Ceiling.
        rest = self.count - 4 * per_wall
        p = rng.uniform(-h, h, (rest, 3))
        p[:, 2] = self.room_height
        points.append(p)
        self.points = np.vstack(points)


# The ZED Mini's stereo baseline is 63 mm.
ZED_MINI_BASELINE_M = 0.063


@dataclass(frozen=True)
class CameraFrame:
    """One stereo frame's worth of feature observations.

    ``observations`` maps feature id -> (u_left, v_left, u_right, v_right).
    """

    timestamp: float
    observations: Dict[int, Tuple[float, float, float, float]]
    exposure_ms: float = 1.0

    @property
    def feature_count(self) -> int:
        """Number of features observed in this frame."""
        return len(self.observations)


@dataclass
class StereoCamera:
    """A stereo rig rigidly attached to the head (IMU) frame.

    The camera looks along body +x (the walking direction in our
    trajectories); camera frame is the usual (x right, y down, z forward).
    """

    landmarks: LandmarkField
    intrinsics: CameraIntrinsics = field(default_factory=CameraIntrinsics)
    baseline_m: float = ZED_MINI_BASELINE_M
    pixel_noise_at_1ms: float = 0.6
    max_features: int = 80
    exposure_ms: float = 1.0
    seed: int = 11

    def __post_init__(self) -> None:
        if self.baseline_m <= 0:
            raise ValueError("baseline must be positive")
        if not 0.2 <= self.exposure_ms <= 20.0:
            raise ValueError(f"exposure out of range: {self.exposure_ms}")
        self._rng = np.random.default_rng(self.seed)
        # Body (x fwd, y left, z up) -> camera (x right, y down, z fwd).
        self._r_cam_body = np.array(
            [[0.0, -1.0, 0.0], [0.0, 0.0, -1.0], [1.0, 0.0, 0.0]]
        )

    @property
    def pixel_noise(self) -> float:
        """Pixel noise std at the current exposure (shorter = noisier)."""
        return self.pixel_noise_at_1ms * np.sqrt(1.0 / self.exposure_ms)

    def sensor_power_w(self) -> float:
        """Camera sensor power at the current exposure (the §V.C knob)."""
        return 0.25 + 0.05 * self.exposure_ms

    def world_to_camera(self, pose: Pose, eye_offset: float = 0.0) -> np.ndarray:
        """World landmark points in the camera frame at ``pose``.

        ``eye_offset`` shifts along the camera x-axis (stereo baseline).
        """
        body = quat_rotate(
            quat_conjugate(pose.orientation), self.landmarks.points - pose.position
        )
        cam = body @ self._r_cam_body.T
        cam[:, 0] -= eye_offset
        return cam

    def observe(self, pose: Pose, timestamp: float) -> CameraFrame:
        """Observe the landmark field from ``pose`` at ``timestamp``."""
        left = self.world_to_camera(pose, eye_offset=0.0)
        right = self.world_to_camera(pose, eye_offset=self.baseline_m)
        px_left, valid_left = self.intrinsics.project(left)
        px_right, valid_right = self.intrinsics.project(right)
        valid = valid_left & valid_right
        ids = np.flatnonzero(valid)
        if len(ids) > self.max_features:
            # Prefer features near the image center (a detector would).
            center = np.array([self.intrinsics.cx, self.intrinsics.cy])
            distance = np.linalg.norm(px_left[ids] - center, axis=1)
            ids = ids[np.argsort(distance)[: self.max_features]]
        noise = self._rng.normal(0.0, self.pixel_noise, (len(ids), 4))
        observations = {
            int(i): (
                float(px_left[i, 0] + noise[k, 0]),
                float(px_left[i, 1] + noise[k, 1]),
                float(px_right[i, 0] + noise[k, 2]),
                float(px_right[i, 1] + noise[k, 3]),
            )
            for k, i in enumerate(ids)
        }
        return CameraFrame(timestamp=timestamp, observations=observations, exposure_ms=self.exposure_ms)

    def landmark_position(self, feature_id: int) -> Optional[np.ndarray]:
        """Ground-truth world position of a landmark (testing only)."""
        if 0 <= feature_id < len(self.landmarks.points):
            return self.landmarks.points[feature_id].copy()
        return None
