"""Analytic depth camera for scene reconstruction (dyson_lab stand-in).

Renders depth images of a procedural scene -- a rectangular room with a few
boxes and spheres -- by vectorized ray casting.  Scene reconstruction
consumes these RGB-D-like frames the way ElasticFusion consumes the
dyson_lab sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.maths.quaternion import quat_rotate
from repro.maths.se3 import Pose


@dataclass(frozen=True)
class SphereObject:
    """A solid sphere in the scene."""

    center: np.ndarray
    radius: float


@dataclass(frozen=True)
class BoxObject:
    """An axis-aligned solid box in the scene."""

    minimum: np.ndarray
    maximum: np.ndarray


@dataclass
class DepthScene:
    """Room interior plus furniture-like primitives."""

    room_half_extent: float = 3.5
    room_height: float = 2.8
    spheres: List[SphereObject] = field(default_factory=list)
    boxes: List[BoxObject] = field(default_factory=list)

    @staticmethod
    def default(seed: int = 3) -> "DepthScene":
        """A repeatable cluttered room."""
        rng = np.random.default_rng(seed)
        spheres = [
            SphereObject(
                center=np.array([rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(0.3, 1.5)]),
                radius=rng.uniform(0.2, 0.5),
            )
            for _ in range(3)
        ]
        boxes = [
            BoxObject(
                minimum=np.array([x - 0.4, y - 0.4, 0.0]),
                maximum=np.array([x + 0.4, y + 0.4, rng.uniform(0.5, 1.2)]),
            )
            for x, y in ((1.5, -1.5), (-1.8, 1.2))
        ]
        return DepthScene(spheres=spheres, boxes=boxes)


@dataclass
class DepthCamera:
    """Pinhole depth camera rendering the scene by ray casting."""

    scene: DepthScene
    width: int = 80
    height: int = 60
    fov_deg: float = 70.0
    max_depth: float = 10.0
    noise_std: float = 0.01
    seed: int = 5

    def __post_init__(self) -> None:
        if self.width < 4 or self.height < 4:
            raise ValueError("depth image too small")
        self._rng = np.random.default_rng(self.seed)
        focal = 0.5 * self.width / np.tan(np.radians(self.fov_deg) / 2.0)
        self.fx = self.fy = focal
        self.cx = self.width / 2.0
        self.cy = self.height / 2.0
        u, v = np.meshgrid(np.arange(self.width) + 0.5, np.arange(self.height) + 0.5)
        # Camera frame: x right, y down, z forward.
        self._rays_cam = np.stack(
            [(u - self.cx) / self.fx, (v - self.cy) / self.fy, np.ones_like(u)], axis=-1
        )
        # Body (x fwd, y left, z up) -> camera frame mapping.
        self._r_cam_body = np.array([[0.0, -1.0, 0.0], [0.0, 0.0, -1.0], [1.0, 0.0, 0.0]])

    def ray_directions_world(self, pose: Pose) -> np.ndarray:
        """Unnormalized world-frame ray directions per pixel (H, W, 3)."""
        rays_body = self._rays_cam @ self._r_cam_body  # inverse of body->cam
        return quat_rotate(pose.orientation, rays_body.reshape(-1, 3)).reshape(
            self.height, self.width, 3
        )

    def render(self, pose: Pose, noisy: bool = True) -> np.ndarray:
        """Depth image (H, W) in metres along the camera z-axis."""
        origins = pose.position
        directions = self.ray_directions_world(pose).reshape(-1, 3)
        z_scale = np.linalg.norm(self._rays_cam.reshape(-1, 3), axis=1)
        t_hit = np.full(directions.shape[0], np.inf)
        t_hit = np.minimum(t_hit, self._intersect_room(origins, directions))
        for sphere in self.scene.spheres:
            t_hit = np.minimum(t_hit, _intersect_sphere(origins, directions, sphere))
        for box in self.scene.boxes:
            t_hit = np.minimum(t_hit, _intersect_box(origins, directions, box))
        depth = t_hit / z_scale  # parametric distance -> z-depth
        depth[~np.isfinite(depth)] = 0.0
        depth[depth > self.max_depth] = 0.0
        depth = depth.reshape(self.height, self.width)
        if noisy:
            valid = depth > 0
            jitter = self._rng.normal(0.0, self.noise_std, depth.shape) * depth
            depth = np.where(valid, np.maximum(depth + jitter, 1e-3), 0.0)
        return depth

    def _intersect_room(self, origin: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """Distance to the room's interior walls (we are inside the box)."""
        h = self.scene.room_half_extent
        low = np.array([-h, -h, 0.0])
        high = np.array([h, h, self.scene.room_height])
        with np.errstate(divide="ignore", invalid="ignore"):
            t_low = (low - origin) / directions
            t_high = (high - origin) / directions
        t_far = np.maximum(t_low, t_high)
        t_far[~np.isfinite(t_far)] = np.inf
        t_exit = np.min(t_far, axis=1)
        return np.where(t_exit > 1e-6, t_exit, np.inf)


def _intersect_sphere(origin: np.ndarray, directions: np.ndarray, sphere: SphereObject) -> np.ndarray:
    oc = origin - sphere.center
    a = np.sum(directions * directions, axis=1)
    b = 2.0 * directions @ oc
    c = float(oc @ oc) - sphere.radius**2
    disc = b * b - 4 * a * c
    hit = disc >= 0
    sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
    t = (-b - sqrt_disc) / (2 * a)
    return np.where(hit & (t > 1e-6), t, np.inf)


def _intersect_box(origin: np.ndarray, directions: np.ndarray, box: BoxObject) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        t_low = (box.minimum - origin) / directions
        t_high = (box.maximum - origin) / directions
    t_near = np.nanmax(np.minimum(t_low, t_high), axis=1)
    t_far = np.nanmin(np.maximum(t_low, t_high), axis=1)
    hit = (t_near <= t_far) & (t_far > 1e-6)
    t = np.where(t_near > 1e-6, t_near, t_far)
    return np.where(hit, t, np.inf)
