"""Synthetic sensor substrate.

The paper drives ILLIXR live from a ZED Mini camera+IMU carried through a
lab, and standalone components from off-the-shelf datasets (EuRoC Vicon
Room 1 Medium, OpenEDS, dyson_lab).  We have no camera, so this package
synthesizes physically consistent sensor streams from smooth ground-truth
trajectories:

- :mod:`repro.sensors.trajectory` -- lab-walk / Vicon-room trajectory
  generators (C2 splines with analytic derivatives);
- :mod:`repro.sensors.imu` -- IMU synthesis with white noise + bias random
  walk (the standard EuRoC error model);
- :mod:`repro.sensors.camera` -- stereo pinhole camera observing a 3-D
  landmark field, producing noisy feature tracks;
- :mod:`repro.sensors.depth` -- analytic depth camera for scene
  reconstruction;
- :mod:`repro.sensors.eye` -- synthetic eye images for eye tracking;
- :mod:`repro.sensors.dataset` -- offline record/replay datasets, published
  to the same streams as live sensors (§II-B of the paper).
"""

from repro.sensors.camera import CameraFrame, LandmarkField, StereoCamera
from repro.sensors.dataset import OfflineDataset, make_vicon_room_dataset
from repro.sensors.imu import ImuModel, ImuSample
from repro.sensors.trajectory import lab_walk_trajectory, vicon_room_trajectory

__all__ = [
    "CameraFrame",
    "ImuModel",
    "ImuSample",
    "LandmarkField",
    "OfflineDataset",
    "StereoCamera",
    "lab_walk_trajectory",
    "make_vicon_room_dataset",
    "vicon_room_trajectory",
]
