"""Offline datasets: record once, replay anywhere (§II-B of the paper).

"ILLIXR's offline camera+IMU component reads from a pre-recorded dataset
and publishes to the same output stream as a live camera+IMU component,
appearing indistinguishable from a real camera/IMU to the rest of the
system."  :func:`make_vicon_room_dataset` synthesizes the stand-in for
EuRoC *Vicon Room 1 Medium* used by the VIO and image-quality experiments.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List

from repro.maths.se3 import Pose
from repro.maths.splines import TrajectorySpline
from repro.sensors.camera import CameraFrame, LandmarkField, StereoCamera
from repro.sensors.imu import ImuModel, ImuSample
from repro.sensors.trajectory import vicon_room_trajectory


@dataclass
class OfflineDataset:
    """A pre-recorded sensor sequence plus its ground truth."""

    name: str
    trajectory: TrajectorySpline
    camera: StereoCamera
    imu_samples: List[ImuSample]
    camera_frames: List[CameraFrame]

    def __post_init__(self) -> None:
        self._imu_times = [s.timestamp for s in self.imu_samples]
        self._frame_times = [f.timestamp for f in self.camera_frames]

    @property
    def duration(self) -> float:
        """Length of the recorded sequence (seconds)."""
        return self.trajectory.duration

    def ground_truth(self, t: float) -> Pose:
        """The true head pose at time ``t``."""
        sample = self.trajectory.sample(t)
        return Pose(sample.position, sample.orientation, timestamp=t)

    def imu_between(self, t_start: float, t_end: float) -> List[ImuSample]:
        """IMU samples with timestamps in ``(t_start, t_end]``."""
        lo = bisect.bisect_right(self._imu_times, t_start)
        hi = bisect.bisect_right(self._imu_times, t_end)
        return self.imu_samples[lo:hi]

    def frames_between(self, t_start: float, t_end: float) -> List[CameraFrame]:
        """Camera frames with timestamps in ``(t_start, t_end]``."""
        lo = bisect.bisect_right(self._frame_times, t_start)
        hi = bisect.bisect_right(self._frame_times, t_end)
        return self.camera_frames[lo:hi]


def make_vicon_room_dataset(
    duration: float = 30.0,
    seed: int = 1,
    camera_rate_hz: float = 15.0,
    imu_rate_hz: float = 500.0,
    max_features: int = 80,
    exposure_ms: float = 1.0,
) -> OfflineDataset:
    """Synthesize the EuRoC-like offline dataset (camera + IMU + truth)."""
    trajectory = vicon_room_trajectory(duration=duration + 1.0, seed=seed)
    landmarks = LandmarkField(seed=seed + 100)
    camera = StereoCamera(
        landmarks=landmarks,
        max_features=max_features,
        exposure_ms=exposure_ms,
        seed=seed + 200,
    )
    imu = ImuModel(trajectory, rate_hz=imu_rate_hz, seed=seed + 300)
    imu_samples = imu.sequence(0.0, duration)
    camera_period = 1.0 / camera_rate_hz
    camera_frames = []
    t = 0.0
    while t < duration:
        truth = trajectory.sample(t)
        pose = Pose(truth.position, truth.orientation, timestamp=t)
        camera_frames.append(camera.observe(pose, timestamp=t))
        t += camera_period
    return OfflineDataset(
        name="vicon_room_1_medium_synthetic",
        trajectory=trajectory,
        camera=camera,
        imu_samples=imu_samples,
        camera_frames=camera_frames,
    )
