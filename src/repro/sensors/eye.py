"""Synthetic eye images for eye tracking (OpenEDS stand-in).

Generates grayscale near-eye images -- bright sclera, darker iris disc,
dark pupil ellipse whose position encodes gaze -- together with the
ground-truth pupil segmentation mask and gaze vector.  The eye-tracking
component (the RITnet substitute) trains and evaluates against these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class EyeSample:
    """One synthetic eye image with its labels."""

    image: np.ndarray   # (H, W) float32 in [0, 1]
    mask: np.ndarray    # (H, W) bool, True where the pupil is
    gaze: np.ndarray    # (2,) normalized gaze offsets in [-1, 1]


@dataclass
class EyeImageGenerator:
    """Repeatable generator of labelled eye images."""

    width: int = 64
    height: int = 48
    seed: int = 0
    noise_std: float = 0.03

    def __post_init__(self) -> None:
        if self.width < 16 or self.height < 16:
            raise ValueError("eye images must be at least 16x16")
        self._rng = np.random.default_rng(self.seed)
        u, v = np.meshgrid(np.arange(self.width), np.arange(self.height))
        self._u = u.astype(float)
        self._v = v.astype(float)

    def sample(self, gaze: Tuple[float, float] | None = None) -> EyeSample:
        """Render one image; ``gaze`` defaults to a random direction."""
        if gaze is None:
            gaze = tuple(self._rng.uniform(-0.8, 0.8, 2))
        gx, gy = gaze
        if not (-1.0 <= gx <= 1.0 and -1.0 <= gy <= 1.0):
            raise ValueError(f"gaze out of [-1,1]^2: {gaze}")
        cx = self.width / 2 + gx * self.width * 0.22
        cy = self.height / 2 + gy * self.height * 0.22
        pupil_r = self._rng.uniform(0.09, 0.14) * self.width
        iris_r = pupil_r * self._rng.uniform(2.0, 2.6)
        elongation = self._rng.uniform(0.85, 1.15)

        du = (self._u - cx) / elongation
        dv = self._v - cy
        r2 = du * du + dv * dv
        image = np.full((self.height, self.width), 0.85)  # sclera
        image[r2 <= iris_r**2] = 0.45                      # iris
        # Radial iris texture.
        theta = np.arctan2(dv, du)
        iris_zone = (r2 <= iris_r**2) & (r2 > pupil_r**2)
        image[iris_zone] += 0.06 * np.sin(9 * theta[iris_zone])
        mask = r2 <= pupil_r**2
        image[mask] = 0.08                                 # pupil
        # Specular glint near the pupil edge.
        glint = ((self._u - (cx + pupil_r * 0.6)) ** 2 + (self._v - (cy - pupil_r * 0.6)) ** 2) <= 2.0
        image[glint] = 1.0
        # Eyelid shading at the top.
        image *= 1.0 - 0.35 * np.exp(-self._v / (self.height * 0.18))
        image = np.clip(image + self._rng.normal(0.0, self.noise_std, image.shape), 0.0, 1.0)
        return EyeSample(
            image=image.astype(np.float32),
            mask=mask & ~glint,
            gaze=np.array([gx, gy]),
        )

    def batch(self, n: int) -> list[EyeSample]:
        """``n`` independent samples."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return [self.sample() for _ in range(n)]
