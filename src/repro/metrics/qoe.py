"""Offline image-quality evaluation (§III-E of the paper).

Collecting post-reprojection images live perturbs the run, so the paper
logs application images and poses, applies reprojection *offline*, and
compares against an idealized configuration that received ground-truth
poses.  This module does exactly that against a completed
:class:`~repro.core.runtime.RuntimeResult`:

- **actual**: render the scene with the pose the (VIO -> integrator)
  pipeline gave the application, then reproject with the pose timewarp
  actually used;
- **ideal**: render with the ground-truth pose of the same instant, then
  reproject with the ground-truth pose at the submission instant.

SSIM and 1-FLIP between the two reprojected images quantify everything
the user would see go wrong: VIO drift, pose staleness from missed
deadlines, and reprojection artifacts (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.runtime import RuntimeResult
from repro.metrics.flip import one_minus_flip
from repro.metrics.ssim import ssim
from repro.visual.renderer import RenderCamera, Renderer
from repro.visual.reprojection import rotational_reproject, translational_reproject
from repro.visual.scenes import scene_by_name


@dataclass(frozen=True)
class ImageQualityResult:
    """Mean +- std image quality over the replayed frames (Table V row)."""

    ssim_mean: float
    ssim_std: float
    one_minus_flip_mean: float
    one_minus_flip_std: float
    frames: int

    def row(self) -> str:
        """A printable Table V style row."""
        return (
            f"SSIM {self.ssim_mean:.2f}+-{self.ssim_std:.2f}  "
            f"1-FLIP {self.one_minus_flip_mean:.2f}+-{self.one_minus_flip_std:.2f}"
        )


def evaluate_image_quality(
    result: RuntimeResult,
    max_frames: int = 30,
    camera: Optional[RenderCamera] = None,
    translational: bool = False,
    skip_initial_s: float = 0.5,
) -> ImageQualityResult:
    """Replay display events offline and compute SSIM / 1-FLIP."""
    if max_frames < 1:
        raise ValueError("max_frames must be >= 1")
    camera = camera or RenderCamera(width=192, height=108)
    scene = scene_by_name(result.app_name)
    renderer = Renderer(scene, camera)
    k = camera.intrinsic_matrix()

    events = [e for e in result.display_events if e.submit_time >= skip_initial_s]
    if not events:
        raise ValueError("run produced no display events to evaluate")
    stride = max(1, len(events) // max_frames)
    ssims: List[float] = []
    flips: List[float] = []
    for event in events[::stride][:max_frames]:
        frame_time = event.frame_pose.timestamp
        gt_frame_pose = result.ground_truth(frame_time)
        gt_warp_pose = result.ground_truth(event.submit_time)

        actual_render = renderer.render(event.frame_pose)
        ideal_render = renderer.render(gt_frame_pose)
        if translational:
            actual = translational_reproject(
                actual_render.image, actual_render.depth, k, event.frame_pose, event.warp_pose
            )
            ideal = translational_reproject(
                ideal_render.image, ideal_render.depth, k, gt_frame_pose, gt_warp_pose
            )
        else:
            actual = rotational_reproject(actual_render.image, k, event.frame_pose, event.warp_pose)
            ideal = rotational_reproject(ideal_render.image, k, gt_frame_pose, gt_warp_pose)
        ssims.append(ssim(ideal, actual))
        flips.append(one_minus_flip(ideal, actual))
    return ImageQualityResult(
        ssim_mean=float(np.mean(ssims)),
        ssim_std=float(np.std(ssims)),
        one_minus_flip_mean=float(np.mean(flips)),
        one_minus_flip_std=float(np.std(flips)),
        frames=len(ssims),
    )


def audio_bitrate_kbps(channels: int = 16, sample_rate_hz: int = 48000, bits: int = 32) -> float:
    """The audio pipeline's raw soundfield bitrate (the paper's only audio
    quality metric, §II-C)."""
    return channels * sample_rate_hz * bits / 1000.0


def pose_error_series(
    result: RuntimeResult,
) -> Tuple[np.ndarray, np.ndarray]:
    """(times, translation errors) of the VIO estimates against truth."""
    if not result.vio_trajectory:
        return np.array([]), np.array([])
    times = np.array([t for t, _ in result.vio_trajectory])
    errors = np.array(
        [
            est.pose.translation_error(result.ground_truth(est.timestamp))
            for _, est in result.vio_trajectory
        ]
    )
    return times, errors
