"""Motion-to-photon latency (§III-E of the paper).

    latency = t_imu_age + t_reprojection + t_swap

computed by the reprojection component every time it runs: the age of the
IMU sample behind the pose it used, plus its own execution time, plus the
wait until the frame buffer is accepted for display (vsync).  ``t_display``
is excluded, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class MtpSample:
    """One reprojected frame's latency decomposition (seconds)."""

    frame_time: float       # when the frame was submitted for display
    imu_age: float          # age of the pose's IMU sample at warp start
    reprojection_time: float
    swap_wait: float        # wait until the buffer was accepted (vsync)
    # True when reprojection covered for a degraded upstream: it re-warped
    # a stale application frame (renderer miss / stall).  The pose side of
    # degradation shows up as a large ``imu_age`` and is classified by
    # ``summarize_mtp`` against ``stale_pose_ms``.
    stale_frame: bool = False

    def __post_init__(self) -> None:
        if self.imu_age < 0 or self.reprojection_time < 0 or self.swap_wait < 0:
            raise ValueError("MTP components must be non-negative")

    @property
    def total(self) -> float:
        """Total motion-to-photon latency (seconds)."""
        return self.imu_age + self.reprojection_time + self.swap_wait

    @property
    def total_ms(self) -> float:
        """Total MTP in milliseconds."""
        return self.total * 1e3


@dataclass(frozen=True)
class MtpSummary:
    """Mean/std/percentile summary over a run (Table IV rows)."""

    mean_ms: float
    std_ms: float
    p99_ms: float
    max_ms: float
    count: int
    vr_target_met_fraction: float   # frames within the 20 ms VR target
    ar_target_met_fraction: float   # frames within the 5 ms AR target
    # Fraction of frames displayed while the pipeline was degraded: the
    # warped frame was stale, or the pose behind it was older than the
    # staleness threshold (e.g. VIO down, integrator coasting).
    degraded_fraction: float = 0.0


def summarize_mtp(
    samples: Sequence[MtpSample],
    vr_target_ms: float = 20.0,
    ar_target_ms: float = 5.0,
    stale_pose_ms: float = 50.0,
) -> MtpSummary:
    """Aggregate per-frame MTP samples into a Table IV style summary.

    ``stale_pose_ms`` bounds how old a frame's pose may be before the
    frame counts as *degraded* (together with stale-frame reuse); during
    fault-induced degradation the MTP numbers stay honest because the
    stale pose's age is already inside ``imu_age``.
    """
    if not samples:
        return MtpSummary(math.nan, math.nan, math.nan, math.nan, 0, 0.0, 0.0)
    totals: List[float] = sorted(s.total_ms for s in samples)
    n = len(totals)
    mean = sum(totals) / n
    std = math.sqrt(sum((t - mean) ** 2 for t in totals) / n)
    p99 = totals[min(int(0.99 * n), n - 1)]
    degraded = sum(
        1 for s in samples if s.stale_frame or s.imu_age * 1e3 > stale_pose_ms
    )
    return MtpSummary(
        mean_ms=mean,
        std_ms=std,
        p99_ms=p99,
        max_ms=totals[-1],
        count=n,
        vr_target_met_fraction=sum(t <= vr_target_ms for t in totals) / n,
        ar_target_met_fraction=sum(t <= ar_target_ms for t in totals) / n,
        degraded_fraction=degraded / n,
    )
