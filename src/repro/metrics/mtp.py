"""Motion-to-photon latency (§III-E of the paper).

    latency = t_imu_age + t_reprojection + t_swap

computed by the reprojection component every time it runs: the age of the
IMU sample behind the pose it used, plus its own execution time, plus the
wait until the frame buffer is accepted for display (vsync).  ``t_display``
is excluded, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class MtpSample:
    """One reprojected frame's latency decomposition (seconds)."""

    frame_time: float       # when the frame was submitted for display
    imu_age: float          # age of the pose's IMU sample at warp start
    reprojection_time: float
    swap_wait: float        # wait until the buffer was accepted (vsync)

    def __post_init__(self) -> None:
        if self.imu_age < 0 or self.reprojection_time < 0 or self.swap_wait < 0:
            raise ValueError("MTP components must be non-negative")

    @property
    def total(self) -> float:
        """Total motion-to-photon latency (seconds)."""
        return self.imu_age + self.reprojection_time + self.swap_wait

    @property
    def total_ms(self) -> float:
        """Total MTP in milliseconds."""
        return self.total * 1e3


@dataclass(frozen=True)
class MtpSummary:
    """Mean/std/percentile summary over a run (Table IV rows)."""

    mean_ms: float
    std_ms: float
    p99_ms: float
    max_ms: float
    count: int
    vr_target_met_fraction: float   # frames within the 20 ms VR target
    ar_target_met_fraction: float   # frames within the 5 ms AR target


def summarize_mtp(
    samples: Sequence[MtpSample], vr_target_ms: float = 20.0, ar_target_ms: float = 5.0
) -> MtpSummary:
    """Aggregate per-frame MTP samples into a Table IV style summary."""
    if not samples:
        return MtpSummary(math.nan, math.nan, math.nan, math.nan, 0, 0.0, 0.0)
    totals: List[float] = sorted(s.total_ms for s in samples)
    n = len(totals)
    mean = sum(totals) / n
    std = math.sqrt(sum((t - mean) ** 2 for t in totals) / n)
    p99 = totals[min(int(0.99 * n), n - 1)]
    return MtpSummary(
        mean_ms=mean,
        std_ms=std,
        p99_ms=p99,
        max_ms=totals[-1],
        count=n,
        vr_target_met_fraction=sum(t <= vr_target_ms for t in totals) / n,
        ar_target_met_fraction=sum(t <= ar_target_ms for t in totals) / n,
    )
