"""Temporal quality metrics: smoothness and jitter (§II-C of the paper).

"Both SSIM and FLIP are image metrics, whereas the final output of the
visual pipeline is a video, requiring consideration of aspects such as
temporal coherence and smoothness (jitter) as well."

These metrics operate on a run's display events and MTP samples:

- **frame-interval jitter**: deviation of display intervals from the
  vsync period (missed vsyncs show up directly);
- **pose jerk**: second difference of the displayed pose stream -- the
  judder the paper observed visually on Jetson-HP ("perceptibly increased
  judder for Sponza");
- **MTP variability**: coefficient of variation of the per-frame latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.mtp import MtpSample


@dataclass(frozen=True)
class TemporalQuality:
    """Smoothness summary for one run."""

    frame_interval_mean_ms: float
    frame_interval_jitter_ms: float    # std of display intervals
    dropped_vsync_fraction: float      # intervals spanning >1 vsync
    pose_jerk_rad_s2: float            # RMS angular jerk of displayed poses
    mtp_cov: float                     # std/mean of per-frame MTP


def temporal_quality(
    display_events: Sequence,
    mtp_samples: Sequence[MtpSample],
    vsync_period_s: float,
) -> TemporalQuality:
    """Compute the smoothness summary from a run's visual outputs."""
    if vsync_period_s <= 0:
        raise ValueError("vsync period must be positive")
    if len(display_events) < 3:
        raise ValueError("need at least 3 display events")
    times = np.array([e.submit_time for e in display_events])
    intervals = np.diff(times)
    dropped = float(np.mean(intervals > 1.5 * vsync_period_s))

    # Angular jerk of the displayed pose stream (judder proxy).
    from repro.maths.quaternion import quat_conjugate, quat_log, quat_multiply

    omegas = []
    for a, b, dt in zip(display_events[:-1], display_events[1:], intervals):
        if dt <= 0:
            continue
        delta = quat_multiply(
            quat_conjugate(a.warp_pose.orientation), b.warp_pose.orientation
        )
        omegas.append(quat_log(delta) / dt)
    omegas = np.asarray(omegas)
    if len(omegas) >= 2:
        mid_dt = (intervals[:-1] + intervals[1:]) / 2
        jerk = np.linalg.norm(np.diff(omegas, axis=0), axis=1) / np.maximum(mid_dt, 1e-9)
        pose_jerk = float(np.sqrt(np.mean(jerk**2)))
    else:
        pose_jerk = 0.0

    totals = np.array([s.total for s in mtp_samples]) if mtp_samples else np.array([0.0])
    mtp_cov = float(np.std(totals) / np.mean(totals)) if totals.mean() > 0 else 0.0
    return TemporalQuality(
        frame_interval_mean_ms=float(intervals.mean() * 1e3),
        frame_interval_jitter_ms=float(intervals.std() * 1e3),
        dropped_vsync_fraction=dropped,
        pose_jerk_rad_s2=pose_jerk,
        mtp_cov=mtp_cov,
    )


def audio_spatial_similarity(
    reference: np.ndarray, test: np.ndarray, sample_rate_hz: int = 48000
) -> float:
    """A simple binaural-similarity score in [0, 1] (AMBIQUAL-inspired).

    §II-C: "we do not yet compute a quality metric for audio beyond
    bitrate, but plan to add the recently developed AMBIQUAL."  This is a
    lightweight stand-in for comparing two binaural renders of the same
    content: per-ear spectral magnitude correlation combined with
    interaural-level-difference agreement over short windows.
    """
    reference = np.asarray(reference, dtype=float)
    test = np.asarray(test, dtype=float)
    if reference.shape != test.shape or reference.ndim != 2 or reference.shape[0] != 2:
        raise ValueError("expected matching (2, samples) stereo arrays")
    window = max(256, sample_rate_hz // 50)
    n_windows = reference.shape[1] // window
    if n_windows < 1:
        raise ValueError("signals too short for one analysis window")
    spectral_scores = []
    ild_ref, ild_test = [], []
    for w in range(n_windows):
        seg = slice(w * window, (w + 1) * window)
        for ear in range(2):
            a = np.abs(np.fft.rfft(reference[ear, seg]))
            b = np.abs(np.fft.rfft(test[ear, seg]))
            denominator = np.linalg.norm(a) * np.linalg.norm(b)
            if denominator > 1e-12:
                spectral_scores.append(float(a @ b / denominator))
        def ild(x):
            rms = np.sqrt((x[:, seg] ** 2).mean(axis=1)) + 1e-12
            return np.log10(rms[0] / rms[1])
        ild_ref.append(ild(reference))
        ild_test.append(ild(test))
    spectral = float(np.mean(spectral_scores)) if spectral_scores else 0.0
    ild_error = float(np.mean(np.abs(np.array(ild_ref) - np.array(ild_test))))
    ild_score = float(np.exp(-2.0 * ild_error))
    return float(np.clip(0.7 * spectral + 0.3 * ild_score, 0.0, 1.0))
