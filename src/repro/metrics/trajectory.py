"""Trajectory accuracy metrics for VIO evaluation (§V.E of the paper).

- **Absolute trajectory error (ATE)**: RMS translation error against
  ground truth after (optional) rigid alignment of the first pose.
- **Relative pose error (RPE)**: drift over fixed time windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.maths.se3 import Pose


@dataclass(frozen=True)
class TrajectoryError:
    """Summary of a trajectory comparison."""

    rmse_m: float
    mean_m: float
    median_m: float
    max_m: float
    count: int


def _paired_errors(
    estimates: Sequence[Pose], ground_truth: Sequence[Pose]
) -> List[float]:
    if len(estimates) != len(ground_truth):
        raise ValueError(
            f"length mismatch: {len(estimates)} estimates vs {len(ground_truth)} truths"
        )
    if not estimates:
        raise ValueError("empty trajectories")
    return [e.translation_error(g) for e, g in zip(estimates, ground_truth)]


def absolute_trajectory_error(
    estimates: Sequence[Pose], ground_truth: Sequence[Pose]
) -> TrajectoryError:
    """ATE over paired pose sequences (no alignment: VIO shares the
    ground-truth origin by initialization, as in our experiments)."""
    errors = np.asarray(_paired_errors(estimates, ground_truth))
    return TrajectoryError(
        rmse_m=float(np.sqrt((errors**2).mean())),
        mean_m=float(errors.mean()),
        median_m=float(np.median(errors)),
        max_m=float(errors.max()),
        count=len(errors),
    )


def relative_pose_error(
    estimates: Sequence[Pose],
    ground_truth: Sequence[Pose],
    window: int = 15,
) -> TrajectoryError:
    """Drift of the estimated motion over ``window``-frame segments."""
    if window < 1:
        raise ValueError(f"window must be >= 1: {window}")
    if len(estimates) != len(ground_truth):
        raise ValueError("length mismatch")
    if len(estimates) <= window:
        raise ValueError(f"need more than {window} poses")
    errors: List[float] = []
    for i in range(len(estimates) - window):
        est_delta = estimates[i + window].relative_to(estimates[i])
        gt_delta = ground_truth[i + window].relative_to(ground_truth[i])
        errors.append(float(np.linalg.norm(est_delta.position - gt_delta.position)))
    arr = np.asarray(errors)
    return TrajectoryError(
        rmse_m=float(np.sqrt((arr**2).mean())),
        mean_m=float(arr.mean()),
        median_m=float(np.median(arr)),
        max_m=float(arr.max()),
        count=len(arr),
    )


def align_origins(
    estimates: Sequence[Pose], ground_truth: Sequence[Pose]
) -> Tuple[List[Pose], List[Pose]]:
    """Express both trajectories relative to their own first pose.

    Useful when an estimator was initialized with an arbitrary origin.
    """
    if not estimates or not ground_truth:
        raise ValueError("empty trajectories")
    ref_e = estimates[0]
    ref_g = ground_truth[0]
    return (
        [p.relative_to(ref_e) for p in estimates],
        [p.relative_to(ref_g) for p in ground_truth],
    )
