"""Structural Similarity Index Measure (SSIM), Wang et al. 2004 [48].

The standard formulation: an 11x11 Gaussian window (sigma 1.5), stability
constants C1 = (0.01 L)^2 and C2 = (0.03 L)^2, mean SSIM over the image.
Color images are averaged over channels (as the paper's analysis scripts
do for the Table V numbers).

The accelerated path (default) stacks the five filtered fields (mu_x,
mu_y, E[x^2], E[y^2], E[xy]) into one array and issues a **single**
``gaussian_filter`` call per image (per channel for color inputs) with
sigma 0 on the stack axis.  A sigma-0 axis is filtered with the identity
kernel, so every slice receives exactly the arithmetic of the per-channel
reference path and the result is bit-identical (asserted by the parity
tests).  Color channels are batched per channel rather than as one 4-D
stack: a (5, H, W, C) array exceeds cache and filters along strided
lines, which measures *slower* than five 2-D calls on small images.
``accelerated=False`` selects the original per-channel recursion.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.perf import profiled

_TRUNCATE = 3.5  # ~11x11 support at sigma=1.5


def _validate(reference: np.ndarray, test: np.ndarray, data_range: float) -> None:
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    if data_range <= 0:
        raise ValueError("data_range must be positive")
    if reference.ndim not in (2, 3):
        raise ValueError(f"expected 2-D or 3-D image, got shape {reference.shape}")


@profiled("metrics.ssim")
def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float = 1.0,
    sigma: float = 1.5,
    full: bool = False,
    accelerated: bool = True,
):
    """Mean SSIM between two images in [0, data_range].

    Accepts (H, W) or (H, W, C); returns a float (or the SSIM map when
    ``full`` is True).
    """
    reference = np.asarray(reference, dtype=float)
    test = np.asarray(test, dtype=float)
    _validate(reference, test, data_range)
    if not accelerated:
        return _ssim_reference(reference, test, data_range, sigma, full)
    if reference.ndim == 3:
        maps = [
            ssim(
                np.ascontiguousarray(reference[..., c]),
                np.ascontiguousarray(test[..., c]),
                data_range,
                sigma,
                full=True,
                accelerated=True,
            )
            for c in range(reference.shape[2])
        ]
        stacked = np.stack(maps, axis=-1)
        return stacked if full else float(stacked.mean())

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    # One batched filter call: the five fields stacked on a sigma-0 axis.
    stack = np.stack(
        [reference, test, reference * reference, test * test, reference * test]
    )
    filtered = gaussian_filter(stack, (0.0, sigma, sigma), truncate=_TRUNCATE)
    mu_x, mu_y = filtered[0], filtered[1]
    mu_x2 = mu_x * mu_x
    mu_y2 = mu_y * mu_y
    mu_xy = mu_x * mu_y
    sigma_x2 = filtered[2] - mu_x2
    sigma_y2 = filtered[3] - mu_y2
    sigma_xy = filtered[4] - mu_xy

    numerator = (2 * mu_xy + c1) * (2 * sigma_xy + c2)
    denominator = (mu_x2 + mu_y2 + c1) * (sigma_x2 + sigma_y2 + c2)
    ssim_map = numerator / denominator
    return ssim_map if full else float(ssim_map.mean())


def _ssim_reference(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float,
    sigma: float,
    full: bool,
):
    """Original implementation: per-channel recursion, five filter calls."""
    if reference.ndim == 3:
        maps = [
            _ssim_reference(reference[..., c], test[..., c], data_range, sigma, full=True)
            for c in range(reference.shape[2])
        ]
        stacked = np.stack(maps, axis=-1)
        return stacked if full else float(stacked.mean())

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    mu_x = gaussian_filter(reference, sigma, truncate=_TRUNCATE)
    mu_y = gaussian_filter(test, sigma, truncate=_TRUNCATE)
    mu_x2 = mu_x * mu_x
    mu_y2 = mu_y * mu_y
    mu_xy = mu_x * mu_y
    sigma_x2 = gaussian_filter(reference * reference, sigma, truncate=_TRUNCATE) - mu_x2
    sigma_y2 = gaussian_filter(test * test, sigma, truncate=_TRUNCATE) - mu_y2
    sigma_xy = gaussian_filter(reference * test, sigma, truncate=_TRUNCATE) - mu_xy

    numerator = (2 * mu_xy + c1) * (2 * sigma_xy + c2)
    denominator = (mu_x2 + mu_y2 + c1) * (sigma_x2 + sigma_y2 + c2)
    ssim_map = numerator / denominator
    return ssim_map if full else float(ssim_map.mean())
