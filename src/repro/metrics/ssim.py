"""Structural Similarity Index Measure (SSIM), Wang et al. 2004 [48].

The standard formulation: an 11x11 Gaussian window (sigma 1.5), stability
constants C1 = (0.01 L)^2 and C2 = (0.03 L)^2, mean SSIM over the image.
Color images are averaged over channels (as the paper's analysis scripts
do for the Table V numbers).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter


def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float = 1.0,
    sigma: float = 1.5,
    full: bool = False,
):
    """Mean SSIM between two images in [0, data_range].

    Accepts (H, W) or (H, W, C); returns a float (or the SSIM map when
    ``full`` is True).
    """
    reference = np.asarray(reference, dtype=float)
    test = np.asarray(test, dtype=float)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    if data_range <= 0:
        raise ValueError("data_range must be positive")
    if reference.ndim == 3:
        maps = [
            ssim(reference[..., c], test[..., c], data_range, sigma, full=True)
            for c in range(reference.shape[2])
        ]
        stacked = np.stack(maps, axis=-1)
        return stacked if full else float(stacked.mean())
    if reference.ndim != 2:
        raise ValueError(f"expected 2-D or 3-D image, got shape {reference.shape}")

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    truncate = 3.5  # ~11x11 support at sigma=1.5

    mu_x = gaussian_filter(reference, sigma, truncate=truncate)
    mu_y = gaussian_filter(test, sigma, truncate=truncate)
    mu_x2 = mu_x * mu_x
    mu_y2 = mu_y * mu_y
    mu_xy = mu_x * mu_y
    sigma_x2 = gaussian_filter(reference * reference, sigma, truncate=truncate) - mu_x2
    sigma_y2 = gaussian_filter(test * test, sigma, truncate=truncate) - mu_y2
    sigma_xy = gaussian_filter(reference * test, sigma, truncate=truncate) - mu_xy

    numerator = (2 * mu_xy + c1) * (2 * sigma_xy + c2)
    denominator = (mu_x2 + mu_y2 + c1) * (sigma_x2 + sigma_y2 + c2)
    ssim_map = numerator / denominator
    return ssim_map if full else float(ssim_map.mean())
