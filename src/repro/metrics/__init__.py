"""Quality-of-experience metrics (§II-C of the paper).

- :mod:`repro.metrics.mtp` -- motion-to-photon latency;
- :mod:`repro.metrics.ssim` -- Structural Similarity Index;
- :mod:`repro.metrics.flip` -- the FLIP image-difference metric
  (reported as 1-FLIP for consistency with SSIM);
- :mod:`repro.metrics.trajectory` -- absolute/relative trajectory error;
- :mod:`repro.metrics.qoe` -- offline image-quality evaluation harness
  (the actual-vs-idealized comparison of §III-E).
"""

from repro.metrics.flip import flip, one_minus_flip
from repro.metrics.mtp import MtpSample, MtpSummary, summarize_mtp
from repro.metrics.ssim import ssim
from repro.metrics.temporal import TemporalQuality, audio_spatial_similarity, temporal_quality
from repro.metrics.trajectory import absolute_trajectory_error, relative_pose_error

__all__ = [
    "MtpSample",
    "MtpSummary",
    "absolute_trajectory_error",
    "flip",
    "one_minus_flip",
    "relative_pose_error",
    "ssim",
    "summarize_mtp",
    "TemporalQuality",
    "audio_spatial_similarity",
    "temporal_quality",
]
