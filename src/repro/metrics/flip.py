"""FLIP: a difference evaluator for alternating images (Andersson et al.
2020, [52] in the paper).

FLIP models what an observer notices when flipping between two images: a
**color pipeline** (opponent color space, spatial CSF filtering, hue-aware
HyAB distance) combined with a **feature pipeline** (edge and point
differences from Gaussian-derivative filters), merged per pixel into an
error in [0, 1].

This implementation follows the published structure with two documented
simplifications: CSF filtering uses Gaussian approximations of the
achromatic/chromatic CSFs, and the perceptual color space is YCxCz-like
opponent built from linearized sRGB.  The paper reports 1-FLIP so larger
is better; :func:`one_minus_flip` matches that convention.

The accelerated path (default) batches every Gaussian filter over the
reference/test *pair*: the two images are stacked along a leading sigma-0
axis so each CSF band and each derivative filter costs one call instead of
two.  (The three CSF channels use *different* sigmas, so they cannot share
one call without changing the metric.)  A sigma-0 axis applies the
identity kernel, making the batched filters bit-identical to the
per-image reference path, which remains available via ``accelerated=False``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.perf import profiled

# Pixels per degree of a typical desktop viewing setup (the FLIP default
# assumes 0.7 m viewing distance on a 0.5 m wide 3840-px monitor ~ 67 ppd).
DEFAULT_PIXELS_PER_DEGREE = 67.0

# Gaussian sigmas in pixels: achromatic sharpest, blue-yellow softest.
_CSF_SIGMAS = (0.35, 1.0, 1.4)


def _srgb_to_linear(srgb: np.ndarray) -> np.ndarray:
    srgb = np.clip(srgb, 0.0, 1.0)
    return np.where(srgb <= 0.04045, srgb / 12.92, ((srgb + 0.055) / 1.055) ** 2.4)


def _to_opponent(image: np.ndarray) -> np.ndarray:
    """Linear RGB -> opponent (achromatic, red-green, blue-yellow)."""
    linear = _srgb_to_linear(image)
    r, g, b = linear[..., 0], linear[..., 1], linear[..., 2]
    y = 0.2126 * r + 0.7152 * g + 0.0722 * b
    rg = r - g
    by = 0.5 * (r + g) - b
    return np.stack([y, rg, by], axis=-1)


def _csf_filter(opponent: np.ndarray, ppd: float) -> np.ndarray:
    """Approximate CSF band-limiting: chromatic channels blur more."""
    scale = ppd / DEFAULT_PIXELS_PER_DEGREE
    out = np.empty_like(opponent)
    for c, sigma in enumerate(_CSF_SIGMAS):
        out[..., c] = gaussian_filter(opponent[..., c], sigma * max(scale, 0.25))
    return out


def _csf_filter_pair(
    opp_a: np.ndarray, opp_b: np.ndarray, ppd: float
) -> Tuple[np.ndarray, np.ndarray]:
    """CSF-filter both images at once: one batched call per channel."""
    scale = ppd / DEFAULT_PIXELS_PER_DEGREE
    out_a = np.empty_like(opp_a)
    out_b = np.empty_like(opp_b)
    for c, sigma in enumerate(_CSF_SIGMAS):
        pair = np.stack([opp_a[..., c], opp_b[..., c]])
        effective = sigma * max(scale, 0.25)
        filtered = gaussian_filter(pair, (0.0, effective, effective))
        out_a[..., c] = filtered[0]
        out_b[..., c] = filtered[1]
    return out_a, out_b


def _hyab(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hue-angle-aware HyAB distance in the opponent space."""
    diff = a - b
    return np.abs(diff[..., 0]) + np.sqrt(diff[..., 1] ** 2 + diff[..., 2] ** 2)


def _edges_points(y: np.ndarray, sigma: float) -> Tuple[np.ndarray, np.ndarray]:
    gx = gaussian_filter(y, sigma, order=(0, 1))
    gy = gaussian_filter(y, sigma, order=(1, 0))
    edge = np.hypot(gx, gy)
    gxx = gaussian_filter(y, sigma, order=(0, 2))
    gyy = gaussian_filter(y, sigma, order=(2, 0))
    point = np.abs(gxx + gyy)
    return edge, point


def _edges_points_pair(
    ref_y: np.ndarray, test_y: np.ndarray, sigma: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Edge/point responses for both images: each derivative batched."""
    pair = np.stack([ref_y, test_y])
    sigmas = (0.0, sigma, sigma)
    gx = gaussian_filter(pair, sigmas, order=(0, 0, 1))
    gy = gaussian_filter(pair, sigmas, order=(0, 1, 0))
    edge = np.hypot(gx, gy)
    gxx = gaussian_filter(pair, sigmas, order=(0, 0, 2))
    gyy = gaussian_filter(pair, sigmas, order=(0, 2, 0))
    point = np.abs(gxx + gyy)
    return edge[0], point[0], edge[1], point[1]


def _feature_difference(
    ref_y: np.ndarray, test_y: np.ndarray, ppd: float, accelerated: bool = True
) -> np.ndarray:
    """Edge + point feature differences on the achromatic channel."""
    sigma = 0.5 * ppd / DEFAULT_PIXELS_PER_DEGREE + 0.25

    if accelerated:
        edge_ref, point_ref, edge_test, point_test = _edges_points_pair(
            ref_y, test_y, sigma
        )
    else:
        edge_ref, point_ref = _edges_points(ref_y, sigma)
        edge_test, point_test = _edges_points(test_y, sigma)
    edge_diff = np.abs(edge_ref - edge_test)
    point_diff = np.abs(point_ref - point_test)
    # Normalize each by a soft maximum so the result lands in [0, 1].
    def soft_norm(d: np.ndarray) -> np.ndarray:
        scale = max(float(np.percentile(np.maximum(edge_ref, edge_test), 99)), 1e-3)
        return np.clip(d / scale, 0.0, 1.0)

    combined = np.maximum(soft_norm(edge_diff), soft_norm(point_diff))
    return combined


@profiled("metrics.flip")
def flip(
    reference: np.ndarray,
    test: np.ndarray,
    pixels_per_degree: float = DEFAULT_PIXELS_PER_DEGREE,
    full: bool = False,
    accelerated: bool = True,
):
    """Mean FLIP error in [0, 1] (0 = identical images).

    Inputs are (H, W, 3) sRGB images in [0, 1].
    """
    reference = np.asarray(reference, dtype=float)
    test = np.asarray(test, dtype=float)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    if reference.ndim != 3 or reference.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) images, got {reference.shape}")
    if pixels_per_degree <= 0:
        raise ValueError("pixels_per_degree must be positive")

    if accelerated:
        opp_ref, opp_test = _csf_filter_pair(
            _to_opponent(reference), _to_opponent(test), pixels_per_degree
        )
    else:
        opp_ref = _csf_filter(_to_opponent(reference), pixels_per_degree)
        opp_test = _csf_filter(_to_opponent(test), pixels_per_degree)
    color_diff = _hyab(opp_ref, opp_test)
    # Map HyAB distance to [0, 1) with an exponential soft knee (the
    # published metric uses a calibrated power remap; the knee constant is
    # chosen so a full black<->white flip maps to ~0.95).
    color_error = 1.0 - np.exp(-3.0 * color_diff)

    feature_error = _feature_difference(
        opp_ref[..., 0], opp_test[..., 0], pixels_per_degree, accelerated=accelerated
    )

    # FLIP's merge: color error amplified where feature differences exist.
    error = color_error ** (1.0 - feature_error)
    error = np.clip(error, 0.0, 1.0)
    return error if full else float(error.mean())


def one_minus_flip(reference: np.ndarray, test: np.ndarray, **kwargs) -> float:
    """1 - FLIP, the paper's Table V convention (1 = identical)."""
    return 1.0 - flip(reference, test, **kwargs)
