"""Analytical microarchitecture model (Fig. 8 of the paper).

The paper reports per-component CPU IPC and a top-down cycle breakdown
(retiring / bad speculation / frontend bound / backend bound) measured with
VTune.  Python cannot read hardware performance counters portably, so this
module substitutes a first-principles analytical model: each component gets
a *workload profile* (vectorization, divider pressure, instruction
footprint, branch behaviour, working set, memory intensity) distilled from
the paper's §IV-B2 deep dive, and a simple top-down pipeline model maps the
profile to stall fractions and IPC.

The model reproduces the paper's qualitative structure: reprojection is
frontend-bound with IPC ~0.3 (GPU-driver instruction footprint), audio
playback retires ~86 % of cycles at IPC ~3.5 (vectorized FFT on an
L2-resident soundfield), audio encoding is limited by the lone hardware
divider, VIO sits in the middle, and the DNN/dense-SLAM components are
memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# Cache capacities used by the stall model (desktop-class, in KB).
_L1I_KB = 32.0
_L1D_KB = 32.0
_L2_KB = 256.0
_LLC_KB = 12_288.0

_ISSUE_WIDTH = 4.0


@dataclass(frozen=True)
class WorkloadProfile:
    """Microarchitectural character of one component's CPU work.

    - ``vector_frac``: fraction of retired work in vector units.
    - ``div_frac``: fraction of instructions needing the (single) divider.
    - ``icache_kb``: hot instruction footprint (drivers inflate this).
    - ``branch_mpki``: branch mispredictions per kilo-instruction.
    - ``working_set_kb``: dominant data working-set size.
    - ``mem_intensity``: memory accesses per instruction (0-1 scale).
    - ``gpu_offloaded``: fraction of the component's work on the GPU
      (reported alongside, not part of the CPU cycle breakdown).
    """

    vector_frac: float
    div_frac: float
    icache_kb: float
    branch_mpki: float
    working_set_kb: float
    mem_intensity: float
    gpu_offloaded: float = 0.0

    def __post_init__(self) -> None:
        for name in ("vector_frac", "div_frac", "mem_intensity", "gpu_offloaded"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of [0,1]: {value}")
        if self.icache_kb <= 0 or self.working_set_kb <= 0:
            raise ValueError("footprints must be positive")
        if self.branch_mpki < 0:
            raise ValueError("branch_mpki must be non-negative")


@dataclass(frozen=True)
class CycleBreakdown:
    """Top-down cycle accounting; the four fractions sum to 1."""

    retiring: float
    bad_speculation: float
    frontend_bound: float
    backend_bound: float
    ipc: float

    def fractions(self) -> Dict[str, float]:
        """The four top-down categories as a dict."""
        return {
            "retiring": self.retiring,
            "bad_speculation": self.bad_speculation,
            "frontend_bound": self.frontend_bound,
            "backend_bound": self.backend_bound,
        }


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


def _miss_cost(working_set_kb: float) -> float:
    """Average stall weight for a data access given the working-set size.

    Piecewise by which cache level the working set fits in; values are
    normalized stall pressure, not cycles.
    """
    if working_set_kb <= _L1D_KB:
        return 0.05
    if working_set_kb <= _L2_KB:
        return 0.35
    if working_set_kb <= _LLC_KB:
        return 0.9
    return 2.2


class MicroarchModel:
    """Maps a :class:`WorkloadProfile` to a :class:`CycleBreakdown`."""

    def breakdown(self, profile: WorkloadProfile) -> CycleBreakdown:
        """Apply the top-down stall model to one profile."""
        bad_spec = _clamp(profile.branch_mpki * 0.011, 0.005, 0.30)
        icache_pressure = max(0.0, profile.icache_kb / _L1I_KB - 1.0)
        frontend = _clamp(0.02 + 0.17 * icache_pressure**0.72, 0.02, 0.70)
        backend_mem = profile.mem_intensity * _miss_cost(profile.working_set_kb)
        backend_div = 4.5 * profile.div_frac
        backend = _clamp(backend_mem + backend_div, 0.02, 0.75)
        # Normalize so stalls never exceed 92 % of cycles.
        stall_total = bad_spec + frontend + backend
        if stall_total > 0.92:
            scale = 0.92 / stall_total
            bad_spec *= scale
            frontend *= scale
            backend *= scale
        retiring = 1.0 - (bad_spec + frontend + backend)
        issue_efficiency = 0.62 + 0.42 * profile.vector_frac
        ipc = _ISSUE_WIDTH * retiring * min(issue_efficiency, 1.0)
        return CycleBreakdown(
            retiring=retiring,
            bad_speculation=bad_spec,
            frontend_bound=frontend,
            backend_bound=backend,
            ipc=ipc,
        )


# Component profiles distilled from §IV-B2 of the paper.
COMPONENT_PROFILES: Dict[str, WorkloadProfile] = {
    # "VIO is a complex CPU workload ... average IPC 2.2; working sets of
    # several hundred KB fit the LLC (0.1 MPKI) but miss L2 (7.9 MPKI)."
    "vio": WorkloadProfile(
        vector_frac=0.62, div_frac=0.004, icache_kb=48.0, branch_mpki=4.0,
        working_set_kb=600.0, mem_intensity=0.28,
    ),
    # "Eye tracking is a typical DNN ... memory bandwidth bound" (GPU);
    # the CPU side does batch copies and kernel launches.
    "eye_tracking": WorkloadProfile(
        vector_frac=0.45, div_frac=0.0, icache_kb=72.0, branch_mpki=1.2,
        working_set_kb=4000.0, mem_intensity=0.42, gpu_offloaded=0.8,
    ),
    # "Scene reconstruction ... memory bandwidth bound, 200-400 GB/s."
    "scene_reconstruction": WorkloadProfile(
        vector_frac=0.5, div_frac=0.003, icache_kb=56.0, branch_mpki=2.5,
        working_set_kb=200_000.0, mem_intensity=0.25, gpu_offloaded=0.7,
    ),
    # "Reprojection ... IPC of 0.3, most CPU cycles in frontend stalls due
    # to the large instruction footprint of the GPU driver."
    "timewarp": WorkloadProfile(
        vector_frac=0.15, div_frac=0.0, icache_kb=320.0, branch_mpki=3.0,
        working_set_kb=9000.0, mem_intensity=0.30, gpu_offloaded=0.4,
    ),
    # "Hologram executes all its tasks on the GPU"; the CPU side is launch
    # overhead with a modest footprint.
    "hologram": WorkloadProfile(
        vector_frac=0.25, div_frac=0.0, icache_kb=80.0, branch_mpki=1.5,
        working_set_kb=32_000.0, mem_intensity=0.25, gpu_offloaded=0.95,
    ),
    # "Audio encoding ... IPC 2.5, 69 % retiring, bottlenecked by the lone
    # hardware divider."
    "audio_encoding": WorkloadProfile(
        vector_frac=0.72, div_frac=0.045, icache_kb=28.0, branch_mpki=0.8,
        working_set_kb=256.0, mem_intensity=0.18,
    ),
    # "Audio playback ... no divisions, 64 KB soundfield fits in L2,
    # 86 % retiring, IPC 3.5."
    "audio_playback": WorkloadProfile(
        vector_frac=0.88, div_frac=0.0, icache_kb=24.0, branch_mpki=0.5,
        working_set_kb=64.0, mem_intensity=0.12,
    ),
}


def component_breakdowns() -> Dict[str, CycleBreakdown]:
    """Cycle breakdown + IPC for every profiled component (Fig. 8)."""
    model = MicroarchModel()
    return {name: model.breakdown(p) for name, p in COMPONENT_PROFILES.items()}
