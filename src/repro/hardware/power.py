"""Power-rail model (§III-E / §IV-A2 of the paper).

The paper measures CPU power with ``perf`` and GPU power with
``nvidia-smi`` on the desktop, and per-rail power (CPU, GPU, DDR, SoC, Sys)
on the Jetson.  Here, average power over a run is derived from the DES
resource busy-time integrals:

    P_rail = static_rail + active_rail * utilization_rail

where utilization comes from the CPU-core and GPU resource occupancy plus a
DDR activity factor tied to both.  SoC (on-chip microcontrollers) and Sys
(display, storage, sensor I/O) rails are load-independent floors -- which is
exactly why they dominate on Jetson-LP (>50 % of total, §IV-A2): compute
rails shrink with clocks but system logic does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.platform import Platform


@dataclass(frozen=True)
class RailModel:
    """Static + activity-proportional power for one rail (watts)."""

    static_w: float
    active_w: float

    def power(self, utilization: float) -> float:
        """Average watts at the given utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ValueError(f"utilization out of [0,1]: {utilization}")
        return self.static_w + self.active_w * min(utilization, 1.0)


@dataclass(frozen=True)
class PowerBreakdown:
    """Average watts per rail over a run (Fig. 6b)."""

    rails: Dict[str, float]

    @property
    def total(self) -> float:
        """Total average power (Fig. 6a)."""
        return sum(self.rails.values())

    def share(self) -> Dict[str, float]:
        """Each rail's fraction of total power."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in self.rails}
        return {name: watts / total for name, watts in self.rails.items()}


class PowerModel:
    """Maps resource utilizations to a per-rail power breakdown."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self.rails = _RAIL_MODELS[platform.key]

    def breakdown(
        self,
        cpu_utilization: float,
        gpu_utilization: float,
        ddr_activity: float | None = None,
    ) -> PowerBreakdown:
        """Average power per rail given mean resource utilizations.

        ``ddr_activity`` defaults to a traffic proxy mixing CPU and GPU
        activity (the GPU is the heavier memory client in this workload:
        framebuffer-sized reads/writes every frame, §IV-B2).
        """
        if ddr_activity is None:
            ddr_activity = min(1.0, 0.35 * cpu_utilization + 0.75 * gpu_utilization)
        rails = {
            "CPU": self.rails["CPU"].power(cpu_utilization),
            "GPU": self.rails["GPU"].power(gpu_utilization),
            "DDR": self.rails["DDR"].power(ddr_activity),
        }
        if "SoC" in self.rails:
            rails["SoC"] = self.rails["SoC"].power(0.0)
            rails["Sys"] = self.rails["Sys"].power(0.0)
        return PowerBreakdown(rails)


# Rail calibration.  Desktop: GPU-dominant, total O(100 W) -- three orders
# of magnitude above the 0.1-0.2 W ideal-AR budget.  Jetson-HP ~ 11-15 W;
# Jetson-LP ~ 6-8 W with SoC+Sys > 50 % -- two orders above ideal.
_RAIL_MODELS: Dict[str, Dict[str, RailModel]] = {
    "desktop": {
        "CPU": RailModel(static_w=14.0, active_w=52.0),
        "GPU": RailModel(static_w=32.0, active_w=168.0),
        "DDR": RailModel(static_w=4.0, active_w=10.0),
    },
    "jetson-hp": {
        "CPU": RailModel(static_w=0.9, active_w=4.6),
        "GPU": RailModel(static_w=0.8, active_w=3.6),
        "DDR": RailModel(static_w=0.6, active_w=1.6),
        "SoC": RailModel(static_w=1.7, active_w=0.0),
        "Sys": RailModel(static_w=2.1, active_w=0.0),
    },
    "jetson-lp": {
        "CPU": RailModel(static_w=0.5, active_w=2.0),
        "GPU": RailModel(static_w=0.4, active_w=1.5),
        "DDR": RailModel(static_w=0.4, active_w=1.0),
        "SoC": RailModel(static_w=1.6, active_w=0.0),
        "Sys": RailModel(static_w=2.1, active_w=0.0),
    },
}
