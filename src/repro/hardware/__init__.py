"""Hardware platform models.

The paper characterizes ILLIXR on three configurations: a high-end desktop
(Intel Xeon E-2236 + RTX 2080) and an NVIDIA Jetson AGX Xavier in
high-performance (Jetson-HP) and low-power (Jetson-LP) modes.  This package
models those platforms for the discrete-event substrate:

- :mod:`repro.hardware.platform` -- core counts, clocks, GPU concurrency;
- :mod:`repro.hardware.timing` -- per-component execution-time models
  calibrated to the paper's §IV measurements;
- :mod:`repro.hardware.power` -- power rails (CPU/GPU/DDR/SoC/Sys);
- :mod:`repro.hardware.uarch` -- analytical IPC/cycle-breakdown model.
"""

from repro.hardware.platform import DESKTOP, JETSON_HP, JETSON_LP, PLATFORMS, Platform
from repro.hardware.power import PowerBreakdown, PowerModel
from repro.hardware.timing import CostSample, TimingModel
from repro.hardware.uarch import CycleBreakdown, MicroarchModel, WorkloadProfile

__all__ = [
    "CostSample",
    "CycleBreakdown",
    "DESKTOP",
    "JETSON_HP",
    "JETSON_LP",
    "MicroarchModel",
    "PLATFORMS",
    "Platform",
    "PowerBreakdown",
    "PowerModel",
    "TimingModel",
    "WorkloadProfile",
]
