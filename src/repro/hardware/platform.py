"""Platform specifications (§III-A of the paper).

``gpu_concurrency`` models the degree to which the GPU can overlap work from
independent clients: the discrete RTX 2080 timeslices/overlaps two contexts
effectively (async compute + graphics), while the Jetson's integrated Volta
GPU serializes clients, which is precisely what makes the visual pipeline
degrade so sharply on the Jetsons (§IV-A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Platform:
    """One hardware configuration the system runs on."""

    key: str
    name: str
    cpu_description: str
    gpu_description: str
    cpu_cores: int
    cpu_freq_ghz: float
    gpu_concurrency: int
    # Whether the GPU honors high-priority contexts (discrete desktop GPUs
    # do; the Jetson's integrated Volta serializes clients FIFO, so the
    # compositor cannot jump the queue -- a key source of the Jetsons'
    # app-complexity-dependent MTP degradation, Table IV).
    gpu_priority_contexts: bool
    # Per-platform multipliers on the desktop-calibrated component costs.
    cpu_scale: float
    gpu_scale: float
    # Class of device the platform approximates (for reports).
    approximates: str

    def __post_init__(self) -> None:
        if self.cpu_cores < 1:
            raise ValueError(f"cpu_cores must be >= 1: {self.cpu_cores}")
        if self.gpu_concurrency < 1:
            raise ValueError(f"gpu_concurrency must be >= 1: {self.gpu_concurrency}")
        if self.cpu_scale <= 0 or self.gpu_scale <= 0:
            raise ValueError("platform scales must be positive")

    def cycles(self, cpu_seconds: float) -> float:
        """CPU seconds converted to cycles at this platform's frequency."""
        return cpu_seconds * self.cpu_freq_ghz * 1e9


DESKTOP = Platform(
    key="desktop",
    name="Desktop",
    cpu_description="Intel Xeon E-2236 (6C12T)",
    gpu_description="NVIDIA RTX 2080 (discrete)",
    cpu_cores=6,
    cpu_freq_ghz=3.4,
    gpu_concurrency=2,
    gpu_priority_contexts=True,
    cpu_scale=1.0,
    gpu_scale=1.0,
    approximates="tethered systems (e.g. Varjo VR-3 host)",
)

JETSON_HP = Platform(
    key="jetson-hp",
    name="Jetson-HP",
    cpu_description="Arm Carmel (8C8T), max clocks, 10 W mode",
    gpu_description="NVIDIA Volta (integrated)",
    cpu_cores=8,
    cpu_freq_ghz=2.2,
    gpu_concurrency=1,
    gpu_priority_contexts=False,
    cpu_scale=2.9,
    gpu_scale=3.1,
    approximates="Magic Leap One / HoloLens 2 class devices",
)

JETSON_LP = Platform(
    key="jetson-lp",
    name="Jetson-LP",
    cpu_description="Arm Carmel (8C8T), half clocks, 10 W mode",
    gpu_description="NVIDIA Volta (integrated, half clocks)",
    cpu_cores=8,
    cpu_freq_ghz=1.1,
    gpu_concurrency=1,
    gpu_priority_contexts=False,
    cpu_scale=4.7,
    gpu_scale=5.6,
    approximates="Snapdragon 835 / Oculus Quest class devices",
)

PLATFORMS: Dict[str, Platform] = {
    p.key: p for p in (DESKTOP, JETSON_HP, JETSON_LP)
}


def platform_by_key(key: str) -> Platform:
    """Look up a platform by its key ('desktop', 'jetson-hp', 'jetson-lp')."""
    try:
        return PLATFORMS[key]
    except KeyError:
        raise KeyError(f"unknown platform {key!r}; options: {sorted(PLATFORMS)}") from None


# Table I of the paper: ideal requirements vs state-of-the-art devices.
@dataclass(frozen=True)
class DeviceRequirements:
    """One column of Table I."""

    device: str
    resolution_mpixels: float
    field_of_view_deg: Tuple[float, float]
    refresh_rate_hz: Tuple[float, float]
    motion_to_photon_ms: float
    power_w: Tuple[float, float]
    silicon_area_mm2: Tuple[float, float]
    weight_grams: Tuple[float, float]


TABLE_I_REQUIREMENTS: Tuple[DeviceRequirements, ...] = (
    DeviceRequirements("Varjo VR-3", 15.7, (115, 115), (90, 90), 20.0, (float("nan"), float("nan")), (float("nan"), float("nan")), (944, 944)),
    DeviceRequirements("Ideal VR", 200.0, (165, 175), (90, 144), 20.0, (1.0, 2.0), (100, 200), (100, 200)),
    DeviceRequirements("HoloLens 2", 4.4, (52, 52), (120, 120), 9.0, (7.0, 7.0), (173, 173), (566, 566)),
    DeviceRequirements("Ideal AR", 200.0, (165, 175), (90, 144), 5.0, (0.1, 0.2), (50, 100), (10, 50)),
)

# Target MTP budgets (Table I): 20 ms for VR, 5 ms for AR.
TARGET_MTP_VR_MS = 20.0
TARGET_MTP_AR_MS = 5.0
