"""Per-component execution-time models, calibrated to §IV of the paper.

The paper measures each component's per-frame execution time live.  Our
substrate instead *samples* execution times from per-component lognormal
distributions whose desktop means/dispersions are calibrated to Fig. 4 and
whose platform scaling reproduces the frame-rate and MTP degradation of
Fig. 3 and Table IV.  Input-dependent components (VIO, the application)
additionally multiply by a per-invocation complexity reported by the plugin,
which is what produces the heavy-tailed variability of Fig. 4.

All baseline numbers are **desktop** seconds; platform multipliers come from
:class:`repro.hardware.platform.Platform`, with per-component overrides where
the paper indicates non-uniform scaling (e.g. VIO on Jetson-LP has mean
execution time just below the 66.7 ms camera deadline, so its variability
causes many missed deadlines -- §IV-A3).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.hardware.platform import Platform


@dataclass(frozen=True)
class CostModel:
    """Lognormal execution-time model for one component on the desktop.

    ``cpu_mean``/``gpu_mean`` are mean seconds of CPU work and GPU work per
    invocation; ``cov`` is the coefficient of variation of each.
    """

    cpu_mean: float
    gpu_mean: float = 0.0
    cov: float = 0.10

    def __post_init__(self) -> None:
        if self.cpu_mean < 0 or self.gpu_mean < 0:
            raise ValueError("cost means must be non-negative")
        if self.cov < 0:
            raise ValueError("cov must be non-negative")


@dataclass(frozen=True)
class CostSample:
    """One sampled invocation cost (seconds of CPU and GPU occupancy)."""

    cpu_time: float
    gpu_time: float

    @property
    def total(self) -> float:
        """CPU + GPU seconds (serialized lower bound on wall time)."""
        return self.cpu_time + self.gpu_time


# ---------------------------------------------------------------------------
# Desktop-calibrated component baselines (Fig. 4 and §IV-B).
# ---------------------------------------------------------------------------

COMPONENT_COSTS: Dict[str, CostModel] = {
    # Sensor handling is cheap (bottom panel of Fig. 4: <= 2 ms).
    "camera": CostModel(cpu_mean=0.45e-3, cov=0.18),
    "imu": CostModel(cpu_mean=0.045e-3, cov=0.20),
    # VIO: desktop mean ~12 ms, CoV 17-26 % across datasets (§IV-B1).
    "vio": CostModel(cpu_mean=12.0e-3, cov=0.21),
    # RK4 integrator (bottom panel of Fig. 4, well under its 2 ms deadline).
    "integrator": CostModel(cpu_mean=0.14e-3, cov=0.16),
    # Reprojection (timewarp): hybrid CPU-GPU; desktop ~1-2 ms (Fig. 4),
    # dominated by driver/OpenGL state on the CPU side (Table VII).
    "timewarp": CostModel(cpu_mean=0.55e-3, gpu_mean=1.0e-3, cov=0.18),
    # Audio: CPU-only, comfortably within the 20.8 ms deadline.
    "audio_encoding": CostModel(cpu_mean=0.9e-3, cov=0.10),
    "audio_playback": CostModel(cpu_mean=1.3e-3, cov=0.10),
    # Standalone-only components (§IV-B): eye tracking is a small GPU DNN,
    # scene reconstruction is a hybrid CPU-GPU dense-SLAM pipeline,
    # hologram is a GPU compute workload.
    "eye_tracking": CostModel(cpu_mean=1.2e-3, gpu_mean=5.0e-3, cov=0.12),
    "scene_reconstruction": CostModel(cpu_mean=8.0e-3, gpu_mean=17.0e-3, cov=0.22),
    "hologram": CostModel(cpu_mean=0.8e-3, gpu_mean=9.5e-3, cov=0.08),
}

# Application render cost per app (desktop): chosen for the Fig. 3a rates --
# Sponza (~60 Hz) and Materials (~90 Hz) miss the 120 Hz target on the
# desktop; Platformer and AR Demo meet it.  Rendering is GPU-dominant.
APPLICATION_COSTS: Dict[str, CostModel] = {
    "sponza": CostModel(cpu_mean=3.2e-3, gpu_mean=12.6e-3, cov=0.13),
    "materials": CostModel(cpu_mean=2.4e-3, gpu_mean=8.2e-3, cov=0.12),
    "platformer": CostModel(cpu_mean=1.8e-3, gpu_mean=4.9e-3, cov=0.14),
    "ar_demo": CostModel(cpu_mean=0.9e-3, gpu_mean=1.9e-3, cov=0.10),
}

# Per-component overrides of the platform-wide (cpu_scale, gpu_scale):
# VIO scales sub-linearly with clocks (large LLC-resident working set),
# landing its Jetson-LP mean just below the 66.7 ms deadline (§IV-A3);
# timewarp on Jetson-LP lands right at its 8.33 ms deadline.
SCALE_OVERRIDES: Dict[Tuple[str, str], Tuple[float, float]] = {
    ("jetson-hp", "vio"): (2.6, 2.6),
    ("jetson-lp", "vio"): (4.9, 4.9),
    ("jetson-hp", "timewarp"): (1.7, 1.9),
    ("jetson-lp", "timewarp"): (2.9, 3.2),
    ("jetson-hp", "integrator"): (2.4, 2.4),
    ("jetson-lp", "integrator"): (4.0, 4.0),
    ("jetson-hp", "audio_encoding"): (2.5, 2.5),
    ("jetson-lp", "audio_encoding"): (4.2, 4.2),
    ("jetson-hp", "audio_playback"): (2.5, 2.5),
    ("jetson-lp", "audio_playback"): (4.2, 4.2),
}


def _lognormal_params(mean: float, cov: float) -> Tuple[float, float]:
    """(mu, sigma) of a lognormal with the given mean and coefficient of
    variation."""
    if mean <= 0:
        return (-math.inf, 0.0)
    sigma2 = math.log(1.0 + cov * cov)
    mu = math.log(mean) - 0.5 * sigma2
    return (mu, math.sqrt(sigma2))


class TimingModel:
    """Samples per-invocation execution costs for a platform.

    One independent RNG stream per component keeps runs reproducible and
    component orderings independent of each other.
    """

    def __init__(self, platform: Platform, seed: int = 0) -> None:
        self.platform = platform
        self.seed = seed
        self._rngs: Dict[str, np.random.Generator] = {}

    def _rng(self, component: str) -> np.random.Generator:
        if component not in self._rngs:
            material = f"{self.platform.key}/{component}/{self.seed}"
            # A stable hash: Python's hash() is randomized per process,
            # which would break run-to-run reproducibility.
            digest = hashlib.sha256(material.encode()).digest()
            self._rngs[component] = np.random.default_rng(
                int.from_bytes(digest[:8], "little")
            )
        return self._rngs[component]

    def _model_for(self, component: str, app: Optional[str]) -> CostModel:
        if component == "application":
            if app is None:
                raise ValueError("application cost requires an app name")
            try:
                return APPLICATION_COSTS[app]
            except KeyError:
                raise KeyError(
                    f"unknown application {app!r}; options: {sorted(APPLICATION_COSTS)}"
                ) from None
        try:
            return COMPONENT_COSTS[component]
        except KeyError:
            raise KeyError(
                f"unknown component {component!r}; options: {sorted(COMPONENT_COSTS)}"
            ) from None

    def _scales(self, component: str) -> Tuple[float, float]:
        override = SCALE_OVERRIDES.get((self.platform.key, component))
        if override is not None:
            return override
        return (self.platform.cpu_scale, self.platform.gpu_scale)

    def mean_cost(self, component: str, app: Optional[str] = None) -> CostSample:
        """Mean (not sampled) cost of one invocation on this platform."""
        model = self._model_for(component, app)
        key = "application" if component == "application" else component
        cpu_scale, gpu_scale = self._scales(key)
        return CostSample(model.cpu_mean * cpu_scale, model.gpu_mean * gpu_scale)

    def sample(
        self,
        component: str,
        app: Optional[str] = None,
        complexity: float = 1.0,
    ) -> CostSample:
        """Sample one invocation's (cpu_time, gpu_time) on this platform."""
        if complexity <= 0:
            raise ValueError(f"complexity must be positive: {complexity}")
        model = self._model_for(component, app)
        key = "application" if component == "application" else component
        cpu_scale, gpu_scale = self._scales(key)
        rng = self._rng(component if app is None else f"{component}/{app}")

        def draw(mean: float, scale: float) -> float:
            if mean == 0.0:
                return 0.0
            mu, sigma = _lognormal_params(mean * scale * complexity, model.cov)
            return float(rng.lognormal(mu, sigma))

        return CostSample(draw(model.cpu_mean, cpu_scale), draw(model.gpu_mean, gpu_scale))

    def percentile(
        self, component: str, q: float, app: Optional[str] = None
    ) -> float:
        """Analytic ``q``-quantile (0-1) of the total-cost distribution.

        Used by the scheduler to choose the vsync lead time for
        reprojection ("scheduled as late as possible", footnote 5).
        """
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1): {q}")
        model = self._model_for(component, app)
        key = "application" if component == "application" else component
        cpu_scale, gpu_scale = self._scales(key)
        from scipy.stats import norm

        z = float(norm.ppf(q))
        total = 0.0
        for mean, scale in ((model.cpu_mean, cpu_scale), (model.gpu_mean, gpu_scale)):
            if mean > 0:
                mu, sigma = _lognormal_params(mean * scale, model.cov)
                total += math.exp(mu + sigma * z)
        return total
