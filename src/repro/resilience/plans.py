"""Canned chaos scenarios and a random-plan generator.

The four canned plans are the soak suite's fixtures; each models a
failure mode the papers observe on real hardware:

- :func:`vio_crash_loop` -- VIO dies on every frame (a segfaulting
  tracker); the supervisor quarantines it and the fast path must keep
  serving IMU-only poses.
- :func:`renderer_stall` -- the application sporadically hangs for
  several frame times (shader recompilation, asset load); timewarp must
  cover with reprojected stale frames and the watchdog must reap the
  stuck invocations.
- :func:`imu_dropout` -- the IMU stream loses samples (a flaky driver);
  the integrator's pose rate degrades proportionally but never stops.
- :func:`corrupted_camera` -- camera frames arrive bit-flipped; VIO
  raises on them and the poison frames are routed to the dead-letter
  topic instead of killing the reader.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.resilience.faults import FaultPlan


def vio_crash_loop(seed: int = 0) -> FaultPlan:
    """Every VIO invocation crashes: forces quarantine + IMU-only fallback."""
    return FaultPlan(seed).crash("vio", rate=1.0)


def renderer_stall(seed: int = 0) -> FaultPlan:
    """~8% of application frames stall for 6 frame times (watchdog fodder)."""
    return FaultPlan(seed).stall("application", rate=0.08, ticks=6.0)


def imu_dropout(seed: int = 0) -> FaultPlan:
    """5% of IMU samples vanish before reaching the switchboard."""
    return FaultPlan(seed).drop("imu", rate=0.05)


def corrupted_camera(seed: int = 0) -> FaultPlan:
    """12% of camera frames are bit-flipped poison for the VIO front-end."""
    return FaultPlan(seed).corrupt("camera", rate=0.12, note="bit-flipped frame")


CANNED_PLANS: Dict[str, Callable[[int], FaultPlan]] = {
    "vio_crash_loop": vio_crash_loop,
    "renderer_stall": renderer_stall,
    "imu_dropout": imu_dropout,
    "corrupted_camera": corrupted_camera,
}


_TOPICS = ("imu", "camera", "fast_pose", "slow_pose", "frame")
_PLUGINS = ("vio", "application", "camera", "integrator")


def random_fault_plan(seed: int, max_rules: int = 5) -> FaultPlan:
    """A randomized (but seed-deterministic) plan for property tests.

    Rates are kept modest (<= 15%) so the pipeline stays alive long
    enough for the invariants under test to be observable.
    """
    rng = np.random.default_rng([seed, 0xFA017])
    plan = FaultPlan(seed)
    n_rules = int(rng.integers(1, max_rules + 1))
    for _ in range(n_rules):
        kind = rng.choice(["drop", "delay", "duplicate", "corrupt", "crash", "stall"])
        rate = float(rng.uniform(0.01, 0.15))
        if kind in ("drop", "delay", "duplicate", "corrupt"):
            topic = str(rng.choice(_TOPICS))
            if kind == "drop":
                plan.drop(topic, rate)
            elif kind == "delay":
                plan.delay(topic, rate, delay=float(rng.uniform(0.002, 0.02)))
            elif kind == "duplicate":
                plan.duplicate(topic, rate)
            else:
                plan.corrupt(topic, rate)
        elif kind == "crash":
            plan.crash(str(rng.choice(_PLUGINS)), rate)
        else:
            plan.stall(str(rng.choice(_PLUGINS)), rate, ticks=float(rng.uniform(1.0, 4.0)))
    return plan
