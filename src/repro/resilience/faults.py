"""Deterministic, seeded fault injection for the runtime.

A :class:`FaultPlan` is a list of *rules*, each scoped to a switchboard
topic (``drop`` / ``delay`` / ``duplicate`` / ``corrupt``), a plugin
(``crash`` / ``stall``), or a component clock (``skew``).  Rules fire
either probabilistically (``rate``, using a per-rule RNG stream derived
from the plan seed) or at an exact invocation index (``crash_at`` /
``stall_at``), within an optional ``[start, stop)`` virtual-time window.

Every firing appends an :class:`InjectionRecord` to :attr:`FaultPlan.log`.
Because the DES engine is deterministic and each rule owns its own RNG
stream, the log for a given (plan, seed, workload) is bit-identical
across runs -- the chaos suite asserts this.

The plan object doubles as the injector: :class:`~repro.core.switchboard.Topic`
consults :meth:`FaultPlan.on_publish` and the scheduler consults
:meth:`check_crash` / :meth:`stall_time` / :meth:`clock_skew`.  With no
plan installed these call sites cost one attribute load and a branch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np


class InjectedFault(RuntimeError):
    """The exception raised inside a plugin callback by a ``crash`` rule."""


@dataclass(frozen=True)
class Corrupted:
    """Wrapper marking a payload mangled by a ``corrupt`` rule.

    Downstream consumers do not know about this type, so touching any
    attribute of the original payload raises -- a realistic poison event
    that exercises the supervisor's dead-letter path.
    """

    original: Any
    note: str = "corrupted"


@dataclass(frozen=True)
class InjectionRecord:
    """One fault firing: what, where, and when (the determinism contract)."""

    sequence: int        # injection order within the run
    time: float          # virtual time of the firing
    kind: str            # drop | delay | duplicate | corrupt | crash | stall | skew
    target: str          # topic, plugin, or component name
    detail: str = ""


@dataclass
class _Rule:
    kind: str
    target: str
    rate: float = 0.0
    start: float = 0.0
    stop: float = math.inf
    # Kind-specific parameters:
    delay: float = 0.0        # delay: redelivery latency (seconds)
    ticks: float = 0.0        # stall: stall length in units of the deadline
    offset: float = 0.0       # skew: constant clock offset (seconds)
    index: Optional[int] = None   # crash_at / stall_at: exact invocation index
    note: str = ""

    def active(self, time: float) -> bool:
        return self.start <= time < self.stop


class FaultPlan:
    """A seeded, deterministic set of fault rules (builder-style API).

    >>> plan = FaultPlan(seed=7).drop("imu", rate=0.05).crash("vio", rate=1.0)
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rules: List[_Rule] = []
        self.log: List[InjectionRecord] = []
        self._engine = None
        self._rngs: List[np.random.Generator] = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # Builder API
    # ------------------------------------------------------------------

    def _add(self, rule: _Rule) -> "FaultPlan":
        if not 0.0 <= rule.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rule.rate}")
        self.rules.append(rule)
        return self

    def drop(self, topic: str, rate: float, start: float = 0.0, stop: float = math.inf) -> "FaultPlan":
        """Silently discard a fraction of events published on ``topic``."""
        return self._add(_Rule("drop", topic, rate=rate, start=start, stop=stop))

    def delay(
        self, topic: str, rate: float, delay: float, start: float = 0.0, stop: float = math.inf
    ) -> "FaultPlan":
        """Hold a fraction of ``topic`` events back by ``delay`` seconds."""
        if delay <= 0:
            raise ValueError(f"delay must be positive, got {delay}")
        return self._add(_Rule("delay", topic, rate=rate, delay=delay, start=start, stop=stop))

    def duplicate(self, topic: str, rate: float, start: float = 0.0, stop: float = math.inf) -> "FaultPlan":
        """Deliver a fraction of ``topic`` events twice (equal timestamps)."""
        return self._add(_Rule("duplicate", topic, rate=rate, start=start, stop=stop))

    def corrupt(
        self, topic: str, rate: float, note: str = "corrupted", start: float = 0.0, stop: float = math.inf
    ) -> "FaultPlan":
        """Replace a fraction of ``topic`` payloads with :class:`Corrupted`."""
        return self._add(_Rule("corrupt", topic, rate=rate, note=note, start=start, stop=stop))

    def crash(self, plugin: str, rate: float, start: float = 0.0, stop: float = math.inf) -> "FaultPlan":
        """Raise :class:`InjectedFault` inside a fraction of ``plugin`` callbacks."""
        return self._add(_Rule("crash", plugin, rate=rate, start=start, stop=stop))

    def crash_at(self, plugin: str, index: int) -> "FaultPlan":
        """Crash the *first attempt* of invocation ``index`` exactly once
        (retries of the same invocation succeed -- used to pin down the
        no-duplicate-delivery-after-retry invariant)."""
        return self._add(_Rule("crash", plugin, index=index))

    def stall(
        self, plugin: str, rate: float, ticks: float, start: float = 0.0, stop: float = math.inf
    ) -> "FaultPlan":
        """Stall a fraction of ``plugin`` invocations for ``ticks`` deadlines."""
        if ticks <= 0:
            raise ValueError(f"ticks must be positive, got {ticks}")
        return self._add(_Rule("stall", plugin, rate=rate, ticks=ticks, start=start, stop=stop))

    def stall_at(self, plugin: str, index: int, ticks: float) -> "FaultPlan":
        """Stall invocation ``index`` of ``plugin`` for ``ticks`` deadlines."""
        if ticks <= 0:
            raise ValueError(f"ticks must be positive, got {ticks}")
        return self._add(_Rule("stall", plugin, index=index, ticks=ticks))

    def skew_clock(self, component: str, offset: float) -> "FaultPlan":
        """Offset the clock a component observes by ``offset`` seconds."""
        return self._add(_Rule("skew", component, offset=offset))

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------

    def begin_run(self, engine) -> None:
        """Reset the log and reseed every rule's RNG stream.

        Called by :class:`~repro.core.runtime.Runtime` at install time, so
        the same plan object yields an identical injection log when run
        again against the same workload.
        """
        self._engine = engine
        self.log = []
        self._sequence = 0
        self._rngs = [
            np.random.default_rng([self.seed, i]) for i, _ in enumerate(self.rules)
        ]
        for i, rule in enumerate(self.rules):
            if rule.kind == "skew":
                self._record(0.0, "skew", rule.target, f"offset={rule.offset}")

    def _record(self, time: float, kind: str, target: str, detail: str = "") -> None:
        self.log.append(InjectionRecord(self._sequence, time, kind, target, detail))
        self._sequence += 1

    def _fires(self, i: int, rule: _Rule, time: float) -> bool:
        return rule.active(time) and self._rngs[i].random() < rule.rate

    # ------------------------------------------------------------------
    # Injection hooks (consulted by Topic and Scheduler)
    # ------------------------------------------------------------------

    def on_publish(
        self, topic, publish_time: float, data: Any, data_time: Optional[float]
    ) -> Optional[Tuple[str, Any]]:
        """Decide the fate of one publish on ``topic``.

        Returns ``None`` (deliver normally) or a directive tuple:
        ``("drop", None)``, ``("delay", None)`` (redelivery already
        scheduled), ``("corrupt", new_data)``, or ``("duplicate", None)``.
        The first rule that fires wins.
        """
        name = topic.name
        for i, rule in enumerate(self.rules):
            if rule.target != name or rule.kind not in _TOPIC_KINDS:
                continue
            if not self._fires(i, rule, publish_time):
                continue
            if rule.kind == "drop":
                self._record(publish_time, "drop", name, f"seq={topic.count}")
                return ("drop", None)
            if rule.kind == "delay":
                self._record(publish_time, "delay", name, f"by={rule.delay}")
                if self._engine is not None:
                    # Redeliver via the engine at now + delay; the original
                    # data timestamp is preserved so consumers see the
                    # datum's true age.  Redelivery bypasses injection
                    # (no recursive faulting).
                    effective = publish_time if data_time is None else data_time
                    self._engine.call_later(
                        rule.delay,
                        lambda t=topic, d=data, dt=effective: t.deliver(
                            self._engine.now, d, data_time=dt
                        ),
                    )
                    return ("delay", None)
                return ("drop", None)  # no engine: degenerate to a drop
            if rule.kind == "corrupt":
                self._record(publish_time, "corrupt", name, rule.note)
                return ("corrupt", Corrupted(original=data, note=rule.note))
            if rule.kind == "duplicate":
                self._record(publish_time, "duplicate", name, f"seq={topic.count}")
                return ("duplicate", None)
        return None

    def check_crash(self, plugin: str, index: int, now: float, attempt: int) -> None:
        """Raise :class:`InjectedFault` if a crash rule fires for this attempt."""
        for i, rule in enumerate(self.rules):
            if rule.kind != "crash" or rule.target != plugin:
                continue
            if rule.index is not None:
                if rule.index == index and attempt == 0:
                    self._record(now, "crash", plugin, f"index={index}")
                    raise InjectedFault(f"injected crash in {plugin!r} at index {index}")
                continue
            if self._fires(i, rule, now):
                self._record(now, "crash", plugin, f"index={index} attempt={attempt}")
                raise InjectedFault(f"injected crash in {plugin!r} at t={now:.4f}")

    def stall_time(
        self, plugin: str, index: int, now: float, deadline: Optional[float]
    ) -> float:
        """Extra wall time to stall this invocation (0.0 = no stall)."""
        tick = deadline if deadline else 0.05  # OnTopic plugins: 50 ms ticks
        for i, rule in enumerate(self.rules):
            if rule.kind != "stall" or rule.target != plugin:
                continue
            if rule.index is not None:
                if rule.index == index:
                    self._record(now, "stall", plugin, f"index={index} ticks={rule.ticks}")
                    return rule.ticks * tick
                continue
            if self._fires(i, rule, now):
                self._record(now, "stall", plugin, f"index={index} ticks={rule.ticks}")
                return rule.ticks * tick
        return 0.0

    def clock_skew(self, component: str) -> float:
        """Constant clock offset for ``component`` (sum of skew rules)."""
        return sum(r.offset for r in self.rules if r.kind == "skew" and r.target == component)

    # ------------------------------------------------------------------

    def injections(self, kind: Optional[str] = None) -> List[InjectionRecord]:
        """The injection log, optionally filtered to one fault kind."""
        if kind is None:
            return list(self.log)
        return [r for r in self.log if r.kind == kind]

    def __repr__(self) -> str:
        kinds = ", ".join(f"{r.kind}:{r.target}" for r in self.rules)
        return f"FaultPlan(seed={self.seed}, rules=[{kinds}], injected={len(self.log)})"


_TOPIC_KINDS = frozenset({"drop", "delay", "duplicate", "corrupt"})
