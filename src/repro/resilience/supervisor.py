"""Per-plugin supervision: crash counting, backoff, watchdog, quarantine.

The supervisor sits between the scheduler and the plugins.  For every
invocation it observes one of three outcomes:

- **success** -- the consecutive-failure counter resets;
- **crash** (an exception out of ``plugin.iteration``, injected or real)
  -- the plugin is retried once after an exponential backoff; a poison
  trigger event that still fails after the retry is routed to the
  dead-letter topic instead of killing the reader;
- **hang** -- a watchdog armed at ``watchdog_factor`` times the plugin's
  deadline kills the stuck invocation (releasing its CPU/GPU slots).

``max_consecutive_failures`` crashes/hangs in a row quarantine the
plugin: its driver stops, and a quarantine event is published on the
``supervision`` topic so degradation policies can react (e.g. the
integrator falls back to IMU-only propagation when VIO is quarantined).

State machine per plugin::

    healthy --crash/hang--> backing-off --retry ok--> healthy
       ^                        |
       |                        +--(N consecutive failures)--> quarantined
       +--success---------------+                                  (terminal)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the supervision layer (all virtual-time seconds)."""

    max_consecutive_failures: int = 6    # crashes/hangs in a row before quarantine
    max_retries_per_invocation: int = 1  # bounded retry of one invocation
    backoff_initial: float = 0.02        # first retry delay
    backoff_factor: float = 2.0          # exponential growth per consecutive failure
    backoff_max: float = 0.25            # backoff ceiling
    watchdog_factor: float = 4.0         # hang threshold, in units of the deadline
    watchdog_default: float = 0.25       # hang threshold for deadline-less plugins
    dead_letter: bool = True             # route poison events instead of dropping them
    dead_letter_topic: str = "dead_letter"
    supervision_topic: str = "supervision"
    # Every lifecycle event (crash, hang, retry, quarantine, dead_letter,
    # degraded) is also delivered here so traced chaos runs show the
    # supervisor's actions on their own lane (see repro.obs).
    observability_topic: str = "sys/observability"

    def __post_init__(self) -> None:
        if self.max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be >= 1")
        if self.max_retries_per_invocation < 0:
            raise ValueError("max_retries_per_invocation must be >= 0")
        if self.backoff_initial <= 0 or self.backoff_max < self.backoff_initial:
            raise ValueError("backoff window must satisfy 0 < initial <= max")
        if self.watchdog_factor <= 1.0:
            raise ValueError("watchdog_factor must exceed 1.0")


@dataclass(frozen=True)
class SupervisionEvent:
    """One observation of the supervision layer (also published on the
    ``supervision`` topic so plugins can react to each other's health)."""

    time: float
    plugin: str
    kind: str      # crash | hang | retry | quarantine | dead_letter | degraded
    detail: str = ""


@dataclass
class PluginHealth:
    """Mutable per-plugin health ledger."""

    name: str
    crashes: int = 0
    hangs: int = 0
    retries: int = 0
    dead_letters: int = 0
    consecutive_failures: int = 0
    quarantined: bool = False
    quarantined_at: Optional[float] = None

    @property
    def state(self) -> str:
        if self.quarantined:
            return "quarantined"
        return "backing-off" if self.consecutive_failures else "healthy"


class RuntimeSupervisor:
    """Aggregates per-plugin health and implements the supervision policy."""

    def __init__(self, config: Optional[SupervisorConfig] = None) -> None:
        self.config = config or SupervisorConfig()
        self.health: Dict[str, PluginHealth] = {}
        self.events: List[SupervisionEvent] = []
        self._switchboard = None
        self._engine = None

    def attach(self, switchboard, engine) -> None:
        """Wire the supervisor to a run's switchboard and engine.

        Subscribes to the supervision topic so degradation notices
        published *by plugins* (e.g. the integrator announcing IMU-only
        fallback) land in the same event ledger.
        """
        self._switchboard = switchboard
        self._engine = engine

        def collect(event) -> None:
            notice = event.data
            if isinstance(notice, SupervisionEvent) and notice.kind == "degraded":
                self._emit(notice)

        switchboard.topic(self.config.supervision_topic).subscribe_callback(collect)

    def _emit(self, event: SupervisionEvent) -> None:
        """Ledger the event and route it onto the observability topic.

        Uses ``deliver`` (not ``put``): supervision traffic must never
        itself be faulted.  Without a switchboard (standalone unit use)
        the ledger alone is kept.
        """
        self.events.append(event)
        if self._switchboard is not None:
            self._switchboard.topic(self.config.observability_topic).deliver(
                event.time, event
            )

    # ------------------------------------------------------------------
    # Outcome handlers (called by the scheduler)
    # ------------------------------------------------------------------

    def plugin_health(self, name: str) -> PluginHealth:
        if name not in self.health:
            self.health[name] = PluginHealth(name)
        return self.health[name]

    def is_quarantined(self, name: str) -> bool:
        entry = self.health.get(name)
        return entry is not None and entry.quarantined

    def on_success(self, name: str) -> None:
        entry = self.health.get(name)
        if entry is not None:
            entry.consecutive_failures = 0

    def record_failure(self, name: str, time: float, exc: BaseException, kind: str = "crash") -> str:
        """Count one crash/hang; returns ``"retry"`` or ``"quarantine"``."""
        entry = self.plugin_health(name)
        if kind == "hang":
            entry.hangs += 1
        else:
            entry.crashes += 1
        entry.consecutive_failures += 1
        self._emit(SupervisionEvent(time, name, kind, repr(exc)))
        if entry.consecutive_failures >= self.config.max_consecutive_failures:
            self._quarantine(name, time)
            return "quarantine"
        return "retry"

    def record_retry(self, name: str, time: float, delay: float) -> None:
        self.plugin_health(name).retries += 1
        self._emit(SupervisionEvent(time, name, "retry", f"backoff={delay:.4f}"))

    def backoff_delay(self, name: str) -> float:
        """Exponential backoff keyed to the consecutive-failure count."""
        entry = self.plugin_health(name)
        exponent = max(entry.consecutive_failures - 1, 0)
        delay = self.config.backoff_initial * self.config.backoff_factor**exponent
        return min(delay, self.config.backoff_max)

    def watchdog_timeout(self, deadline: Optional[float]) -> float:
        """How long an invocation may run before it counts as hung."""
        if deadline is not None and deadline > 0:
            return self.config.watchdog_factor * deadline
        return self.config.watchdog_default

    def dead_letter(self, name: str, time: float, event: Any, exc: BaseException) -> None:
        """Route a poison trigger event to the dead-letter topic."""
        entry = self.plugin_health(name)
        entry.dead_letters += 1
        self._emit(SupervisionEvent(time, name, "dead_letter", repr(exc)))
        if self.config.dead_letter and self._switchboard is not None:
            topic = self._switchboard.topic(self.config.dead_letter_topic)
            topic.deliver(time, event, data_time=getattr(event, "effective_data_time", None))

    def _quarantine(self, name: str, time: float) -> None:
        entry = self.plugin_health(name)
        if entry.quarantined:
            return
        entry.quarantined = True
        entry.quarantined_at = time
        notice = SupervisionEvent(time, name, "quarantine", f"after {entry.consecutive_failures} consecutive failures")
        self._emit(notice)
        if self._switchboard is not None:
            self._switchboard.topic(self.config.supervision_topic).deliver(time, notice)

    # ------------------------------------------------------------------

    def quarantined_plugins(self) -> List[str]:
        return sorted(n for n, h in self.health.items() if h.quarantined)

    def events_of_kind(self, kind: str) -> List[SupervisionEvent]:
        return [e for e in self.events if e.kind == kind]

    def report(self) -> Dict[str, object]:
        """JSON-serializable supervision summary for ``RuntimeResult.summary``."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {
            "plugins": {
                name: {
                    "state": h.state,
                    "crashes": h.crashes,
                    "hangs": h.hangs,
                    "retries": h.retries,
                    "dead_letters": h.dead_letters,
                }
                for name, h in sorted(self.health.items())
            },
            "quarantined": self.quarantined_plugins(),
            "event_counts": counts,
            "degradations": [
                {"time": round(e.time, 6), "plugin": e.plugin, "detail": e.detail}
                for e in self.events_of_kind("degraded")
            ],
        }
