"""Runtime supervision and deterministic fault injection.

The paper's runtime is expected to *degrade gracefully*: timewarp covers
missed renderer frames, and the fast path keeps serving poses when VIO
falls behind (§II-B, §IV-A).  This package creates those failure
scenarios on demand and pins the degradation behaviour down:

- :mod:`repro.resilience.faults` -- a seeded :class:`FaultPlan` that can
  drop, delay, duplicate, and corrupt switchboard events, raise
  exceptions inside plugin callbacks, stall a plugin, and skew a
  component's clock, with an event-level injection log that is
  bit-identical across runs with the same seed.
- :mod:`repro.resilience.supervisor` -- per-plugin supervisors (crash
  counting, bounded retry with backoff, watchdog hang detection against
  the per-component deadlines, quarantine) plus dead-letter routing for
  poison events.
- :mod:`repro.resilience.plans` -- canned chaos scenarios used by the
  soak suite (VIO crash-loop, renderer stall, IMU dropouts, corrupted
  camera frames) and a generator of random plans for property tests.

Every hook is zero-overhead when no plan/supervisor is installed: the
scheduler and switchboard pay one attribute load and a branch (the same
discipline as :mod:`repro.perf.profile`).
"""

from repro.resilience.faults import (
    Corrupted,
    FaultPlan,
    InjectedFault,
    InjectionRecord,
)
from repro.resilience.plans import (
    CANNED_PLANS,
    corrupted_camera,
    imu_dropout,
    random_fault_plan,
    renderer_stall,
    vio_crash_loop,
)
from repro.resilience.supervisor import (
    PluginHealth,
    RuntimeSupervisor,
    SupervisionEvent,
    SupervisorConfig,
)

__all__ = [
    "CANNED_PLANS",
    "Corrupted",
    "FaultPlan",
    "InjectedFault",
    "InjectionRecord",
    "PluginHealth",
    "RuntimeSupervisor",
    "SupervisionEvent",
    "SupervisorConfig",
    "corrupted_camera",
    "imu_dropout",
    "random_fault_plan",
    "renderer_stall",
    "vio_crash_loop",
]
