"""repro: a pure-Python reproduction of ILLIXR (IISWC 2021).

ILLIXR is an end-to-end extended-reality (XR) system and research testbed:
a modular runtime in which perception, visual, and audio pipeline components
communicate through event streams, scheduled against per-component deadlines,
with end-to-end quality-of-experience (QoE) metrics.

This package reimplements the complete system in Python:

- :mod:`repro.core` -- the runtime (switchboard, plugins, scheduler,
  phonebook, telemetry) — the paper's primary contribution.
- :mod:`repro.sim` -- a discrete-event simulation engine standing in for
  real hardware platforms.
- :mod:`repro.hardware` -- platform, timing, power, and microarchitecture
  models for the desktop, Jetson-HP, and Jetson-LP configurations.
- :mod:`repro.sensors` -- synthetic camera/IMU/depth/eye sensors driven by a
  smooth ground-truth trajectory.
- :mod:`repro.perception` -- MSCKF visual-inertial odometry, RK4 IMU
  integration, eye tracking, and TSDF scene reconstruction.
- :mod:`repro.visual` -- software renderer (the "application"), reprojection
  (timewarp), lens distortion/chromatic aberration, and holography.
- :mod:`repro.audio` -- higher-order ambisonic encoding and binaural playback.
- :mod:`repro.plugins` -- the ILLIXR plugins wiring components into the
  runtime.
- :mod:`repro.openxr` -- a minimal OpenXR-style application interface.
- :mod:`repro.metrics` -- MTP, SSIM, FLIP, and trajectory-error metrics.
- :mod:`repro.analysis` -- experiment drivers regenerating every table and
  figure of the paper's evaluation.
- :mod:`repro.resilience` -- runtime supervision (crash/hang handling,
  quarantine, dead-letter routing) and deterministic fault injection for
  chaos testing.
"""

from typing import Any

__version__ = "1.0.0"

# Lazily resolved exports: "name" -> (module, attribute).
_EXPORTS = {
    "SystemConfig": ("repro.core.config", "SystemConfig"),
    "TABLE_III_PARAMETERS": ("repro.core.config", "TABLE_III_PARAMETERS"),
    "Runtime": ("repro.core.runtime", "Runtime"),
    "RuntimeResult": ("repro.core.runtime", "RuntimeResult"),
    "build_runtime": ("repro.core.runtime", "build_runtime"),
    "DESKTOP": ("repro.hardware.platform", "DESKTOP"),
    "JETSON_HP": ("repro.hardware.platform", "JETSON_HP"),
    "JETSON_LP": ("repro.hardware.platform", "JETSON_LP"),
    "PLATFORMS": ("repro.hardware.platform", "PLATFORMS"),
    "Platform": ("repro.hardware.platform", "Platform"),
    "APPLICATIONS": ("repro.visual.scenes", "APPLICATIONS"),
    "build_extended_runtime": ("repro.plugins.extended", "build_extended_runtime"),
    "build_offloaded_runtime": ("repro.plugins.offload", "build_offloaded_runtime"),
    "run_integrated": ("repro.analysis.experiments", "run_integrated"),
    "run_matrix": ("repro.analysis.experiments", "run_matrix"),
    "evaluate_image_quality": ("repro.metrics.qoe", "evaluate_image_quality"),
    "FaultPlan": ("repro.resilience.faults", "FaultPlan"),
    "RuntimeSupervisor": ("repro.resilience.supervisor", "RuntimeSupervisor"),
    "SupervisorConfig": ("repro.resilience.supervisor", "SupervisorConfig"),
    "CANNED_PLANS": ("repro.resilience.plans", "CANNED_PLANS"),
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    """PEP 562 lazy attribute access for the public API."""
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attribute)
