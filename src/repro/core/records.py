"""Telemetry: the logging framework of §III-E.

The paper "developed a logging framework that allows ILLIXR to easily
collect the wall clock time and CPU time of each of its components with
negligible overhead".  Here, every plugin invocation on the simulated
platform appends one :class:`InvocationRecord`; all of Fig. 3-5 and 7 and
Tables IV derive from these records.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class InvocationRecord:
    """One completed (or dropped) plugin invocation."""

    plugin: str
    component: str
    pipeline: str
    index: int
    scheduled_at: float
    start: float
    end: float
    cpu_time: float
    gpu_time: float
    deadline: Optional[float]
    missed_deadline: bool
    dropped: bool = False
    # True when the supervisor's watchdog reaped a hung invocation; such
    # records carry no cost (their CPU/GPU slots were reclaimed).
    killed: bool = False

    @property
    def wall_time(self) -> float:
        """Wall-clock duration of the invocation."""
        return self.end - self.start


@dataclass(frozen=True)
class DropRecord:
    """A scheduled tick that was skipped because the previous invocation
    was still running (the frame-skip behaviour of §IV-A1)."""

    plugin: str
    scheduled_at: float


@dataclass
class RecordLogger:
    """Accumulates invocation records and derives summary statistics."""

    records: List[InvocationRecord] = field(default_factory=list)
    drops: List[DropRecord] = field(default_factory=list)

    def log(self, record: InvocationRecord) -> None:
        """Append one invocation record."""
        self.records.append(record)

    def log_drop(self, plugin: str, scheduled_at: float) -> None:
        """Record a skipped tick for ``plugin``."""
        self.drops.append(DropRecord(plugin, scheduled_at))

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    def for_plugin(self, plugin: str) -> List[InvocationRecord]:
        """All records for one plugin, in invocation order."""
        return [r for r in self.records if r.plugin == plugin]

    def plugins(self) -> List[str]:
        """Names of all plugins that logged at least one record."""
        return sorted({r.plugin for r in self.records})

    def for_pipeline(self, pipeline: str) -> List[InvocationRecord]:
        """All records for one pipeline (perception/visual/audio/...)."""
        return [r for r in self.records if r.pipeline == pipeline]

    def pipelines(self) -> List[str]:
        """Names of all pipelines that logged at least one record."""
        return sorted({r.pipeline for r in self.records})

    def frame_rate(self, plugin: str, duration: float) -> float:
        """Achieved frames per second over ``duration`` seconds.

        Watchdog-killed invocations produced no output and do not count
        as frames.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return sum(1 for r in self.for_plugin(plugin) if not r.killed) / duration

    def execution_times(self, plugin: str) -> List[float]:
        """Per-invocation wall times for ``plugin`` (completed only)."""
        return [r.wall_time for r in self.for_plugin(plugin) if not r.killed]

    def mean_execution_time(self, plugin: str) -> float:
        """Mean wall time; NaN if the plugin never ran."""
        times = self.execution_times(plugin)
        return sum(times) / len(times) if times else math.nan

    def std_execution_time(self, plugin: str) -> float:
        """Population standard deviation of wall time; NaN if never ran."""
        times = self.execution_times(plugin)
        if not times:
            return math.nan
        mean = sum(times) / len(times)
        return math.sqrt(sum((t - mean) ** 2 for t in times) / len(times))

    def miss_rate(self, plugin: str) -> float:
        """Fraction of invocations that missed their deadline."""
        records = self.for_plugin(plugin)
        if not records:
            return 0.0
        return sum(r.missed_deadline for r in records) / len(records)

    def cpu_time_totals(self) -> Dict[str, float]:
        """Total CPU seconds consumed per plugin.

        Watchdog-killed invocations are excluded: their slots were
        reclaimed, so they consumed no accountable cost (the scheduler
        logs them with zero times, but the exclusion is an invariant of
        the accounting, not of the producer).
        """
        totals: Dict[str, float] = defaultdict(float)
        for record in self.records:
            if not record.killed:
                totals[record.plugin] += record.cpu_time
        return dict(totals)

    def pipeline_cpu_share(self) -> Dict[str, float]:
        """Fraction of all CPU seconds attributed to each *pipeline*.

        The pipeline-level rollup of :meth:`cpu_share` (Fig. 5 groups the
        per-component shares by pipeline); killed invocations carry no
        cost here either.
        """
        totals: Dict[str, float] = defaultdict(float)
        for record in self.records:
            if not record.killed:
                totals[record.pipeline] += record.cpu_time
        grand = sum(totals.values())
        if grand == 0:
            return {name: 0.0 for name in totals}
        return {name: value / grand for name, value in totals.items()}

    def cpu_share(self) -> Dict[str, float]:
        """Fraction of all CPU cycles attributed to each plugin (Fig. 5).

        The paper computes "the total CPU cycles consumed by that component
        as a fraction of the cycles used by all components"; with a fixed
        clock frequency, CPU seconds are proportional to cycles.
        """
        totals = self.cpu_time_totals()
        grand = sum(totals.values())
        if grand == 0:
            return {name: 0.0 for name in totals}
        return {name: value / grand for name, value in totals.items()}

    def drop_count(self, plugin: str) -> int:
        """Number of skipped ticks for ``plugin``."""
        return sum(1 for d in self.drops if d.plugin == plugin)

    def kill_count(self, plugin: str) -> int:
        """Number of invocations the watchdog reaped for ``plugin``."""
        return sum(1 for r in self.records if r.plugin == plugin and r.killed)


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """(mean, population std) of ``values``; (nan, nan) when empty."""
    if not values:
        return (math.nan, math.nan)
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return (mean, math.sqrt(var))
