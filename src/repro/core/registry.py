"""Component registry: algorithms and implementations (Table II).

Mirrors the paper's Table II: every pipeline component, the algorithm it
implements, and the implementation -- here, which :mod:`repro` module
provides it and which original system it stands in for.  Components with
multiple rows have interchangeable alternative implementations; the
starred (default) alternative is the one used for detailed results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ComponentEntry:
    """One Table II row."""

    pipeline: str
    component: str
    algorithm: str
    original: str          # the implementation the paper used
    module: str            # our implementing module
    default: bool          # the * alternative in Table II


COMPONENT_REGISTRY: Tuple[ComponentEntry, ...] = (
    # Perception pipeline
    ComponentEntry("perception", "camera", "Stereo feature frames from landmark field", "ZED SDK *", "repro.sensors.camera", True),
    ComponentEntry("perception", "camera", "Offline dataset replay", "Intel RealSense SDK", "repro.sensors.dataset", False),
    ComponentEntry("perception", "imu", "White noise + bias random walk synthesis", "ZED SDK *", "repro.sensors.imu", True),
    ComponentEntry("perception", "vio", "Stereo MSCKF with EKF-SLAM landmarks", "OpenVINS *", "repro.perception.vio", True),
    ComponentEntry("perception", "vio", "Stereo EKF-SLAM (landmarks in state, no clone window)", "Kimera-VIO", "repro.perception.vio.ekf_slam", False),
    ComponentEntry("perception", "imu_integrator", "RK4 strapdown integration", "RK4 [33] *", "repro.perception.integrator.Rk4Integrator", True),
    ComponentEntry("perception", "imu_integrator", "First-order exponential-map integration", "GTSAM", "repro.perception.integrator.ComplementaryIntegrator", False),
    ComponentEntry("perception", "eye_tracking", "FCN pupil segmentation (numpy CNN)", "RITnet", "repro.perception.eye_tracking", True),
    ComponentEntry("perception", "scene_reconstruction", "TSDF fusion + point-to-plane ICP", "ElasticFusion *", "repro.perception.reconstruction", True),
    ComponentEntry("perception", "scene_reconstruction", "(same volume; KinectFusion-style)", "KinectFusion", "repro.perception.reconstruction", False),
    # Visual pipeline
    ComponentEntry("visual", "reprojection", "Rotational homography reprojection with pose", "VP-matrix reprojection [39]", "repro.visual.reprojection.rotational_reproject", True),
    ComponentEntry("visual", "reprojection", "Translational (depth-aided) reprojection", "(post-paper ILLIXR)", "repro.visual.reprojection.translational_reproject", False),
    ComponentEntry("visual", "lens_distortion", "Mesh-based radial distortion", "Mesh-based radial distortion [39]", "repro.visual.distortion", True),
    ComponentEntry("visual", "chromatic_aberration", "Per-channel mesh-based radial warp", "Mesh-based radial distortion [39]", "repro.visual.distortion", True),
    ComponentEntry("visual", "adaptive_display", "Weighted Gerchberg-Saxton holography", "Weighted Gerchberg-Saxton [40]", "repro.visual.hologram", True),
    # Audio pipeline
    ComponentEntry("audio", "audio_encoding", "HOA ambisonic encoding (order 3, ACN/N3D)", "libspatialaudio [41]", "repro.audio.encoding", True),
    ComponentEntry("audio", "audio_playback", "Soundfield rotation/zoom + HRTF binauralization", "libspatialaudio [41]", "repro.audio.playback", True),
)


def registry_by_pipeline() -> Dict[str, List[ComponentEntry]]:
    """Group the registry rows by pipeline."""
    grouped: Dict[str, List[ComponentEntry]] = {}
    for entry in COMPONENT_REGISTRY:
        grouped.setdefault(entry.pipeline, []).append(entry)
    return grouped


def default_components() -> List[ComponentEntry]:
    """The starred (default) implementation of each component."""
    seen: Dict[str, ComponentEntry] = {}
    for entry in COMPONENT_REGISTRY:
        if entry.default and entry.component not in seen:
            seen[entry.component] = entry
    return list(seen.values())
