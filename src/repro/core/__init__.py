"""The ILLIXR-style runtime: the paper's primary contribution.

The runtime is structured exactly as §II-B of the paper describes:

- components are **plugins** (:mod:`repro.core.plugin`) that may only
  interact through **event streams** (:mod:`repro.core.switchboard`);
- shared services are looked up through the **phonebook**
  (:mod:`repro.core.phonebook`);
- a **scheduler** (:mod:`repro.core.scheduler`) runs each plugin at its
  period on the simulated platform, enforcing the synchronous/asynchronous
  dependencies of Fig. 2;
- **telemetry** (:mod:`repro.core.records`) logs every invocation so that
  frame rates, execution times, CPU attribution, and MTP can be derived.
"""

from repro.core.config import SystemConfig
from repro.core.phonebook import Phonebook
from repro.core.plugin import IterationResult, Plugin
from repro.core.records import InvocationRecord, RecordLogger
from repro.core.switchboard import Switchboard

__all__ = [
    "InvocationRecord",
    "IterationResult",
    "Phonebook",
    "Plugin",
    "RecordLogger",
    "Switchboard",
    "SystemConfig",
]
