"""System configuration: the tunable parameters of Table III.

Configuring an XR system means tuning many interacting parameters (camera
rate/resolution/exposure, IMU rate, display rate/resolution/FoV, audio
rate/block size).  The defaults below are the paper's tuned values; the
ranges are the paper's reported tunable ranges, kept so that experiments
(and the Table III bench) can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Parameter:
    """One tunable system parameter: its range, tuned value, and deadline."""

    component: str
    name: str
    range_description: str
    tuned: str
    deadline_ms: Optional[float]


# Table III of the paper, verbatim.
TABLE_III_PARAMETERS: Tuple[Parameter, ...] = (
    Parameter("Camera (VIO)", "Frame rate", "15 - 100 Hz", "15 Hz", 66.7),
    Parameter("Camera (VIO)", "Resolution", "VGA - 2K", "VGA", None),
    Parameter("Camera (VIO)", "Exposure", "0.2 - 20 ms", "1 ms", None),
    Parameter("IMU (Integrator)", "Frame rate", "<= 800 Hz", "500 Hz", 2.0),
    Parameter("Display (Visual pipeline, Application)", "Frame rate", "30 - 144 Hz", "120 Hz", 8.33),
    Parameter("Display (Visual pipeline, Application)", "Resolution", "<= 2K", "2K", None),
    Parameter("Display (Visual pipeline, Application)", "Field-of-view", "<= 180", "90", None),
    Parameter("Audio (Encoding, Playback)", "Frame rate", "48 - 96 Hz", "48 Hz", 20.8),
    Parameter("Audio (Encoding, Playback)", "Block size", "256 - 2048", "1024", None),
)


RESOLUTIONS: Dict[str, Tuple[int, int]] = {
    "VGA": (640, 480),
    "720p": (1280, 720),
    "1080p": (1920, 1080),
    "2K": (2560, 1440),
}


@dataclass(frozen=True)
class SystemConfig:
    """Full end-to-end system configuration (Table III defaults).

    ``fidelity`` selects how much real algorithmic work the integrated run
    performs: ``"model"`` charges only modeled execution times (fast,
    enough for Fig. 3-7), while ``"full"`` also runs the real VIO /
    integrator / audio algorithms through the switchboard so pose and
    audio outputs are genuine.
    """

    # Perception pipeline (camera-driven)
    camera_rate_hz: float = 15.0
    camera_resolution: str = "VGA"
    camera_exposure_ms: float = 1.0
    # Perception pipeline (IMU-driven)
    imu_rate_hz: float = 500.0
    # Visual pipeline
    display_rate_hz: float = 120.0
    display_resolution: str = "2K"
    field_of_view_deg: float = 90.0
    # Audio pipeline
    audio_rate_hz: float = 48.0
    audio_block_size: int = 1024
    audio_sample_rate_hz: int = 48000
    # Run control
    duration_s: float = 30.0
    seed: int = 0
    fidelity: str = "full"
    # VIO accuracy/performance knob (§V.E ablation): scales the number of
    # tracked features and SLAM landmarks.
    vio_quality: str = "standard"  # "standard" | "high"
    # Reprojection pose prediction (footnote 3 of the paper): predict the
    # pose forward to the display time instead of using the latest sample.
    pose_prediction: bool = False
    extras: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 15.0 <= self.camera_rate_hz <= 100.0:
            raise ValueError(f"camera rate out of range: {self.camera_rate_hz}")
        if self.camera_resolution not in RESOLUTIONS:
            raise ValueError(f"unknown camera resolution: {self.camera_resolution}")
        if not 0.2 <= self.camera_exposure_ms <= 20.0:
            raise ValueError(f"camera exposure out of range: {self.camera_exposure_ms}")
        if not 0 < self.imu_rate_hz <= 800.0:
            raise ValueError(f"IMU rate out of range: {self.imu_rate_hz}")
        if not 30.0 <= self.display_rate_hz <= 144.0:
            raise ValueError(f"display rate out of range: {self.display_rate_hz}")
        if self.display_resolution not in RESOLUTIONS:
            raise ValueError(f"unknown display resolution: {self.display_resolution}")
        if not 0 < self.field_of_view_deg <= 180.0:
            raise ValueError(f"field of view out of range: {self.field_of_view_deg}")
        if not 48.0 <= self.audio_rate_hz <= 96.0:
            raise ValueError(f"audio rate out of range: {self.audio_rate_hz}")
        if not 256 <= self.audio_block_size <= 2048:
            raise ValueError(f"audio block size out of range: {self.audio_block_size}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive: {self.duration_s}")
        if self.fidelity not in ("model", "full"):
            raise ValueError(f"fidelity must be 'model' or 'full': {self.fidelity}")
        if self.vio_quality not in ("standard", "high"):
            raise ValueError(f"vio_quality must be 'standard' or 'high': {self.vio_quality}")

    @property
    def camera_period(self) -> float:
        """Seconds between camera frames."""
        return 1.0 / self.camera_rate_hz

    @property
    def imu_period(self) -> float:
        """Seconds between IMU samples."""
        return 1.0 / self.imu_rate_hz

    @property
    def vsync_period(self) -> float:
        """Seconds between display vsyncs."""
        return 1.0 / self.display_rate_hz

    @property
    def audio_period(self) -> float:
        """Seconds between audio blocks."""
        return 1.0 / self.audio_rate_hz

    @property
    def display_pixels(self) -> int:
        """Pixel count of the configured display resolution."""
        width, height = RESOLUTIONS[self.display_resolution]
        return width * height

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = SystemConfig()
