"""The runtime scheduler: plugins on a simulated platform (§II-B).

Each plugin becomes a driver process on the DES engine:

- :class:`~repro.core.plugin.Periodic` plugins tick at their period; a tick
  that finds the previous invocation still running is *dropped* (the
  frame-skip behaviour §IV-A1 observes for the application and
  reprojection on the Jetsons).
- :class:`~repro.core.plugin.OnTopic` plugins run when their producer
  publishes (the synchronous dependences of Fig. 2); publishes that arrive
  while busy are dropped (the consumer will pick up the latest data on its
  next run, which is how VIO falls behind the camera).
- :class:`~repro.core.plugin.OnVsync` plugins start ``lead`` seconds before
  each vsync so they read the freshest pose (footnote 5); their outputs are
  released at the vsync at/after completion, and the wait is reported as
  the swap time for MTP.

An invocation occupies one CPU core for its sampled ``cpu_time`` and then
the GPU for ``gpu_time``; contention for those resources -- not added
noise -- produces the execution-time variability of Fig. 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.plugin import InvocationContext, IterationResult, OnTopic, OnVsync, Periodic, Plugin
from repro.core.records import InvocationRecord, RecordLogger
from repro.core.switchboard import Switchboard
from repro.hardware.platform import Platform
from repro.hardware.timing import TimingModel
from repro.sim.engine import Engine, Interrupt
from repro.sim.resources import Resource


@dataclass
class CompletionInfo:
    """Timing facts handed to ``plugin.on_complete`` after an invocation."""

    scheduled_at: float
    start: float
    end: float
    cpu_time: float
    gpu_time: float
    swap_time: float   # when outputs became visible (vsync for OnVsync)


class Scheduler:
    """Drives all plugins on the simulated platform."""

    def __init__(
        self,
        engine: Engine,
        platform: Platform,
        timing: TimingModel,
        switchboard: Switchboard,
        logger: RecordLogger,
        app_name: Optional[str] = None,
        dilation: Optional[Dict[str, float]] = None,
        injector=None,
        supervisor=None,
        observability=None,
    ) -> None:
        self.engine = engine
        self.platform = platform
        self.timing = timing
        self.switchboard = switchboard
        self.logger = logger
        self.app_name = app_name
        # Resilience hooks (repro.resilience): both default to None, in
        # which case every hook below is one attribute load and a branch.
        self.injector = injector
        self.supervisor = supervisor
        # Observability (repro.obs): wraps every invocation in a causal
        # span and feeds the scheduler metrics.  None-check discipline.
        self.obs = observability
        self.cpu = Resource(engine, platform.cpu_cores, name="cpu")
        self.gpu = Resource(engine, platform.gpu_concurrency, name="gpu")
        # GPU preemption granularity (draw-call/kernel boundary timeslice).
        self.gpu_quantum = 2.0e-3
        # Per-component clock dilation (§V.G, evaluation-tools idea 3):
        # a component whose detailed model runs in an external simulator
        # can be slowed by a factor so the rest of the system experiences
        # its simulated-speed behaviour (hybrid real+simulated systems).
        self.dilation: Dict[str, float] = dict(dilation or {})
        for component, factor in self.dilation.items():
            if factor <= 0:
                raise ValueError(f"dilation for {component!r} must be positive")
        self._busy: Dict[str, bool] = {}
        self._indices: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def add_plugin(self, plugin: Plugin) -> None:
        """Register a plugin's driver according to its trigger."""
        self._busy[plugin.name] = False
        self._indices[plugin.name] = 0
        trigger = plugin.trigger
        if isinstance(trigger, Periodic):
            self.engine.process(self._periodic_driver(plugin, trigger), name=plugin.name)
        elif isinstance(trigger, OnVsync):
            self.engine.process(self._vsync_driver(plugin, trigger), name=plugin.name)
        elif isinstance(trigger, OnTopic):
            self._install_topic_driver(plugin, trigger)
        else:
            raise TypeError(f"unknown trigger type: {trigger!r}")

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------

    def _periodic_driver(self, plugin: Plugin, trigger: Periodic):
        period = trigger.period
        tick = 0
        while True:
            scheduled = tick * period
            if scheduled > self.engine.now:
                yield self.engine.timeout(scheduled - self.engine.now)
            if self.supervisor is not None and self.supervisor.is_quarantined(plugin.name):
                # Quarantine is terminal: stop driving (and stop logging
                # drops -- a dead plugin must not inflate drop counts).
                return
            if self._busy[plugin.name]:
                self.logger.log_drop(plugin.name, scheduled)
                if self.obs is not None:
                    self.obs.on_scheduler_drop(plugin.name, scheduled)
            else:
                self._busy[plugin.name] = True
                self._spawn(
                    plugin, scheduled, deadline=period, name=f"{plugin.name}#{tick}"
                )
            tick += 1

    def _vsync_driver(self, plugin: Plugin, trigger: OnVsync):
        period = trigger.period
        tick = 1
        while True:
            vsync = tick * period
            start_at = vsync - trigger.lead
            if start_at > self.engine.now:
                yield self.engine.timeout(start_at - self.engine.now)
            if self.supervisor is not None and self.supervisor.is_quarantined(plugin.name):
                return
            if self._busy[plugin.name]:
                self.logger.log_drop(plugin.name, start_at)
                if self.obs is not None:
                    self.obs.on_scheduler_drop(plugin.name, start_at)
            else:
                # Deadline = the lead: finishing after it means the vsync
                # was missed and the frame slips to the next one.
                self._busy[plugin.name] = True
                self._spawn(
                    plugin,
                    start_at,
                    deadline=trigger.lead,
                    vsync_period=period,
                    name=f"{plugin.name}#{tick}",
                )
            tick += 1

    def _install_topic_driver(self, plugin: Plugin, trigger: OnTopic) -> None:
        topic = self.switchboard.topic(trigger.topic)

        def on_publish(_event) -> None:
            if self.supervisor is not None and self.supervisor.is_quarantined(plugin.name):
                return
            if self._busy[plugin.name]:
                self.logger.log_drop(plugin.name, self.engine.now)
                if self.obs is not None:
                    self.obs.on_scheduler_drop(plugin.name, self.engine.now)
            else:
                self._busy[plugin.name] = True
                self._spawn(
                    plugin,
                    self.engine.now,
                    deadline=None,
                    trigger_event=_event,
                    name=f"{plugin.name}@{self.engine.now:.4f}",
                )

        topic.subscribe_callback(on_publish)

    def _spawn(
        self,
        plugin: Plugin,
        scheduled_at: float,
        deadline: Optional[float],
        vsync_period: Optional[float] = None,
        trigger_event=None,
        name: str = "",
    ) -> None:
        """Launch one invocation process, arming the watchdog if supervised."""
        process = self.engine.process(
            self._invocation(
                plugin, scheduled_at, deadline, vsync_period=vsync_period, trigger_event=trigger_event
            ),
            name=name,
        )
        supervisor = self.supervisor
        if supervisor is None:
            return
        timeout = supervisor.watchdog_timeout(deadline)

        def watchdog_check() -> None:
            if process.is_alive:
                supervisor.record_failure(
                    plugin.name,
                    self.engine.now,
                    TimeoutError(f"hung > {timeout:.4f}s"),
                    kind="hang",
                )
                process.interrupt("watchdog")

        self.engine.call_later(timeout, watchdog_check)

    # ------------------------------------------------------------------
    # One invocation
    # ------------------------------------------------------------------

    def _run_iteration(self, plugin: Plugin, index: int, trigger_event, span=None):
        """Run ``plugin.iteration`` under supervision (crash/retry/quarantine).

        Returns the :class:`IterationResult`, or None when the invocation
        was abandoned (quarantined, or retries exhausted).  Unsupervised,
        this is exactly one ``iteration`` call and exceptions propagate.

        ``span`` (observability only) is activated around the synchronous
        ``iteration`` call so async topic reads inside it become lineage
        links; it is never held across a yield.
        """
        injector = self.injector
        supervisor = self.supervisor
        skew = injector.clock_skew(plugin.component) if injector is not None else 0.0
        attempt = 0
        while True:
            ctx = InvocationContext(
                now=self.engine.now + skew, index=index, trigger_event=trigger_event
            )
            try:
                if injector is not None:
                    injector.check_crash(plugin.name, index, self.engine.now, attempt)
                if span is not None:
                    self.obs.note_attempt(span, ctx.now, attempt)
                    with self.obs.tracer.activate(span):
                        result = plugin.iteration(ctx)
                else:
                    result = plugin.iteration(ctx)
            except Interrupt:
                raise
            except Exception as exc:
                if span is not None:
                    self.obs.on_attempt_error(span, self.engine.now, exc)
                if supervisor is None:
                    self._busy[plugin.name] = False
                    raise
                action = supervisor.record_failure(plugin.name, self.engine.now, exc)
                if (
                    action == "quarantine"
                    or attempt >= supervisor.config.max_retries_per_invocation
                ):
                    if trigger_event is not None:
                        # Poison event: route it to the dead-letter topic
                        # instead of killing (or crash-looping) the reader.
                        supervisor.dead_letter(plugin.name, self.engine.now, trigger_event, exc)
                    return None
                delay = supervisor.backoff_delay(plugin.name)
                supervisor.record_retry(plugin.name, self.engine.now, delay)
                if delay > 0:
                    yield self.engine.timeout(delay)
                plugin.reset(exc)
                attempt += 1
                continue
            if supervisor is not None:
                supervisor.on_success(plugin.name)
            return result

    def _invocation(
        self,
        plugin: Plugin,
        scheduled_at: float,
        deadline: Optional[float],
        vsync_period: Optional[float] = None,
        trigger_event=None,
    ):
        # The spawner already marked the plugin busy (it must happen
        # before any other same-timestamp trigger fires).
        index = self._indices[plugin.name]
        self._indices[plugin.name] += 1
        start = self.engine.now
        obs = self.obs
        span = (
            obs.begin_invocation(plugin, start, trigger_event, index)
            if obs is not None
            else None
        )
        # Resource slots currently held, so a watchdog kill can reclaim
        # them (a hung invocation must not leak a CPU core or the GPU).
        held: list = []
        try:
            result: Optional[IterationResult] = yield from self._run_iteration(
                plugin, index, trigger_event, span=span
            )
            if result is None or result.skipped:
                if span is not None:
                    obs.end_invocation(span, end=self.engine.now, skipped=True)
                self._busy[plugin.name] = False
                return

            cost = self.timing.sample(
                plugin.component,
                app=self.app_name if plugin.component == "application" else None,
                complexity=max(result.complexity, 1e-3),
            )
            dilation = self.dilation.get(plugin.component, 1.0)
            if dilation != 1.0:
                from repro.hardware.timing import CostSample

                cost = CostSample(cost.cpu_time * dilation, cost.gpu_time * dilation)

            # Injected stall: the plugin wedges for N deadline-ticks while
            # holding no resource (a blocked syscall / driver hiccup).
            # Long stalls trip the watchdog.
            if self.injector is not None:
                stall = self.injector.stall_time(plugin.name, index, self.engine.now, deadline)
                if stall > 0:
                    yield self.engine.timeout(stall)

            # CPU phase: occupy one core.
            request = self.cpu.request()
            held.append((self.cpu, request))
            yield request
            yield self.engine.timeout(cost.cpu_time)
            self.cpu.release(request)
            held.pop()

            # GPU phase (if any): occupy the GPU in timeslice quanta so a
            # high-priority client (the compositor's reprojection context) can
            # jump in at quantum boundaries instead of waiting out a whole
            # application frame.
            if cost.gpu_time > 0:
                if self.platform.gpu_priority_contexts:
                    # Discrete GPU: fine-grained timeslicing + priority contexts.
                    priority = getattr(plugin, "gpu_priority", 0)
                    quantum = self.gpu_quantum
                else:
                    # Integrated GPU: clients yield only at draw-call boundaries,
                    # and draws scale with scene complexity -- so a heavy app
                    # blocks the compositor for longer stretches (the Jetsons'
                    # app-dependent MTP degradation, Table IV).
                    priority = 0
                    quantum = max(0.5e-3, cost.gpu_time / 10.0)
                remaining = cost.gpu_time
                while remaining > 1e-12:
                    slice_time = min(remaining, quantum)
                    gpu_request = self.gpu.request(priority=priority)
                    held.append((self.gpu, gpu_request))
                    yield gpu_request
                    yield self.engine.timeout(slice_time)
                    self.gpu.release(gpu_request)
                    held.pop()
                    remaining -= slice_time

            # Resource-free delay: an offloaded component's remote compute and
            # network round trip (no local CPU/GPU is held).
            if result.extra_delay > 0:
                yield self.engine.timeout(result.extra_delay)

            end = self.engine.now
            # Output release: vsync-aligned plugins hold results to the vsync.
            swap_time = end
            if vsync_period is not None:
                swap_time = math.ceil(end / vsync_period - 1e-9) * vsync_period
                if swap_time > end:
                    yield self.engine.timeout(swap_time - end)
        except Interrupt:
            # Watchdog kill: reclaim any held slots, log a killed record
            # (no cost -- the slots were reclaimed), release the plugin.
            for resource, pending in held:
                resource.cancel(pending)
            if span is not None:
                obs.end_invocation(span, end=self.engine.now, killed=True)
            self.logger.log(
                InvocationRecord(
                    plugin=plugin.name,
                    component=plugin.component,
                    pipeline=plugin.pipeline,
                    index=index,
                    scheduled_at=scheduled_at,
                    start=start,
                    end=self.engine.now,
                    cpu_time=0.0,
                    gpu_time=0.0,
                    deadline=deadline,
                    missed_deadline=deadline is not None,
                    killed=True,
                )
            )
            self._busy[plugin.name] = False
            return

        if span is not None:
            # Activate around the (synchronous) publishes so outputs are
            # stamped with this invocation's trace context.
            with obs.tracer.activate(span):
                for output in result.outputs:
                    self.switchboard.topic(output.topic).put(
                        self.engine.now, output.data, data_time=output.data_time
                    )
        else:
            for output in result.outputs:
                self.switchboard.topic(output.topic).put(
                    self.engine.now, output.data, data_time=output.data_time
                )

        missed = deadline is not None and (end - scheduled_at) > deadline
        if span is not None:
            obs.end_invocation(
                span,
                end=end,
                cpu_time=cost.cpu_time,
                gpu_time=cost.gpu_time,
                swap_time=swap_time if vsync_period is not None else None,
                missed_deadline=missed,
            )
        self.logger.log(
            InvocationRecord(
                plugin=plugin.name,
                component=plugin.component,
                pipeline=plugin.pipeline,
                index=index,
                scheduled_at=scheduled_at,
                start=start,
                end=end,
                cpu_time=cost.cpu_time,
                gpu_time=cost.gpu_time,
                deadline=deadline,
                missed_deadline=missed,
            )
        )
        on_complete: Optional[Callable[[CompletionInfo], None]] = getattr(
            plugin, "on_complete", None
        )
        if on_complete is not None:
            on_complete(
                CompletionInfo(
                    scheduled_at=scheduled_at,
                    start=start,
                    end=end,
                    cpu_time=cost.cpu_time,
                    gpu_time=cost.gpu_time,
                    swap_time=swap_time,
                )
            )
        self._busy[plugin.name] = False

    # ------------------------------------------------------------------

    def utilization(self) -> Dict[str, float]:
        """Mean CPU and GPU utilization so far."""
        return {"cpu": self.cpu.utilization(), "gpu": self.gpu.utilization()}
