"""Runtime assembly: plugins + platform -> a running XR system.

:func:`build_runtime` assembles the paper's integrated configuration
(§III-B): camera, IMU, VIO, integrator, application, reprojection, audio
encoding and playback.  (Eye tracking, scene reconstruction, and hologram
run standalone, as in the paper, because the integrated OpenXR path has no
consumer for them; see :mod:`repro.analysis.standalone`.)

:meth:`Runtime.run` executes the system for the configured duration on the
simulated platform and returns a :class:`RuntimeResult` with everything
the paper's figures need: invocation records, MTP samples, display events
(for offline image quality), resource utilization, and the power
breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.phonebook import Phonebook
from repro.core.plugin import Plugin
from repro.core.records import RecordLogger
from repro.core.scheduler import Scheduler
from repro.core.switchboard import Switchboard
from repro.hardware.platform import Platform
from repro.hardware.power import PowerBreakdown, PowerModel
from repro.hardware.timing import TimingModel
from repro.maths.se3 import Pose
from repro.maths.splines import TrajectorySpline
from repro.metrics.mtp import MtpSample, MtpSummary, summarize_mtp
from repro.perception.vio.msckf import VioEstimate
from repro.plugins.audio import AudioEncodingPlugin, AudioPlaybackPlugin
from repro.plugins.perception import CameraPlugin, ImuPlugin, IntegratorPlugin, VioPlugin
from repro.plugins.visual import ApplicationPlugin, DisplayEvent, TimewarpPlugin
from repro.sensors.camera import LandmarkField, StereoCamera
from repro.sensors.imu import ImuModel
from repro.sensors.trajectory import lab_walk_trajectory
from repro.sim.engine import Engine
from repro.visual.scenes import Scene, scene_by_name


@dataclass
class RuntimeResult:
    """Everything a completed run exposes for analysis."""

    platform: Platform
    app_name: str
    config: SystemConfig
    duration: float
    logger: RecordLogger
    mtp_samples: List[MtpSample]
    display_events: List[DisplayEvent]
    utilization: Dict[str, float]
    power: PowerBreakdown
    vio_trajectory: List[Tuple[float, VioEstimate]]
    fast_pose_count: int
    trajectory: TrajectorySpline
    # Resilience artifacts (None on unsupervised runs): the supervision
    # report and the fault injector's event-level injection log.
    supervision: Optional[Dict[str, object]] = None
    fault_log: List[object] = field(default_factory=list)
    # Observability (None unless the run opted in): the live
    # tracer/metrics facade -- see repro.obs.
    observability: Optional[object] = None

    def frame_rate(self, plugin: str) -> float:
        """Achieved frame rate of one plugin over the run (Fig. 3)."""
        return self.logger.frame_rate(plugin, self.duration)

    def frame_rates(self) -> Dict[str, float]:
        """Achieved frame rate per plugin."""
        return {name: self.frame_rate(name) for name in self.logger.plugins()}

    def cpu_share(self) -> Dict[str, float]:
        """Fraction of CPU cycles per plugin (Fig. 5)."""
        return self.logger.cpu_share()

    def mtp_summary(self) -> MtpSummary:
        """Motion-to-photon summary (Table IV row)."""
        return summarize_mtp(self.mtp_samples)

    def ground_truth(self, t: float) -> Pose:
        """The true head pose at virtual time ``t``."""
        sample = self.trajectory.sample(t)
        return Pose(sample.position, sample.orientation, timestamp=t)

    def summary(self) -> Dict[str, object]:
        """A JSON-serializable metrics snapshot (the paper artifact's
        ``results/metrics/metrics-<hardware>-<app>`` equivalent)."""
        mtp = self.mtp_summary()
        summary: Dict[str, object] = {
            "platform": self.platform.key,
            "app": self.app_name,
            "duration_s": self.duration,
            "frame_rates_hz": {k: round(v, 3) for k, v in self.frame_rates().items()},
            "cpu_share": {k: round(v, 5) for k, v in self.cpu_share().items()},
            "drops": {
                name: self.logger.drop_count(name) for name in self.logger.plugins()
            },
            "mtp_ms": {
                "mean": mtp.mean_ms,
                "std": mtp.std_ms,
                "p99": mtp.p99_ms,
                "max": mtp.max_ms,
                "count": mtp.count,
                "vr_target_met_fraction": mtp.vr_target_met_fraction,
                "ar_target_met_fraction": mtp.ar_target_met_fraction,
            },
            "power_w": {k: round(v, 3) for k, v in self.power.rails.items()},
            "power_total_w": round(self.power.total, 3),
            "utilization": {k: round(v, 5) for k, v in self.utilization.items()},
            "vio_estimates": len(self.vio_trajectory),
            "fast_pose_count": self.fast_pose_count,
        }
        summary["mtp_ms"]["degraded_fraction"] = mtp.degraded_fraction
        if self.supervision is not None:
            summary["supervision"] = self.supervision
            summary["faults_injected"] = len(self.fault_log)
        if self.observability is not None:
            summary["observability"] = self.observability.summary()
        return summary

    def save_metrics(self, path: str) -> None:
        """Write :meth:`summary` as JSON."""
        import json

        with open(path, "w") as handle:
            json.dump(self.summary(), handle, indent=2, sort_keys=True)

    # ------------------------------------------------------------------
    # Observability accessors (require observability=True on the run)
    # ------------------------------------------------------------------

    def _require_obs(self):
        if self.observability is None:
            raise RuntimeError(
                "run was not traced; pass observability=True to build_runtime"
            )
        return self.observability

    def chrome_trace(self) -> Dict[str, object]:
        """The run as a Chrome trace-event JSON object (Perfetto-loadable)."""
        from repro.obs.export import chrome_trace

        obs = self._require_obs()
        return chrome_trace(
            obs.tracer,
            metadata={"platform": self.platform.key, "app": self.app_name,
                      "duration_s": self.duration},
        )

    def export_chrome_trace(self, path: str) -> None:
        """Write :meth:`chrome_trace` to ``path``."""
        import json

        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)

    def critical_paths(self) -> List[object]:
        """Per-displayed-frame MTP decomposition walked from the trace."""
        from repro.obs.critical_path import critical_paths

        return critical_paths(self._require_obs().tracer)


class Runtime:
    """One bootable XR system instance."""

    def __init__(
        self,
        platform: Platform,
        config: SystemConfig,
        app_name: str,
        plugins: List[Plugin],
        trajectory: TrajectorySpline,
        timing: Optional[TimingModel] = None,
        dilation: Optional[Dict[str, float]] = None,
        fault_plan=None,
        supervision=None,
        observability=None,
    ) -> None:
        self.platform = platform
        self.config = config
        self.app_name = app_name
        self.plugins = plugins
        self.trajectory = trajectory
        self.engine = Engine()
        self.switchboard = Switchboard()
        self.phonebook = Phonebook()
        self.logger = RecordLogger()
        self.timing = timing or TimingModel(platform, seed=config.seed)
        # Resilience layer (repro.resilience): a fault plan implies
        # supervision (chaos without a supervisor would just crash the
        # engine); with neither, every hook stays on its zero-cost path.
        self.fault_plan = fault_plan
        self.supervisor = None
        if fault_plan is not None or supervision is not None:
            from repro.resilience.supervisor import RuntimeSupervisor, SupervisorConfig

            if isinstance(supervision, RuntimeSupervisor):
                self.supervisor = supervision
            else:
                self.supervisor = RuntimeSupervisor(supervision or SupervisorConfig())
            self.supervisor.attach(self.switchboard, self.engine)
        if fault_plan is not None:
            fault_plan.begin_run(self.engine)
            self.switchboard.install_injector(fault_plan)
        # Observability layer (repro.obs): opt-in.  True builds a fresh
        # facade; a prebuilt Observability is accepted so tests/analysis
        # can pre-register extra instruments.
        self.observability = None
        if observability:
            from repro.obs import Observability

            self.observability = (
                observability
                if isinstance(observability, Observability)
                else Observability()
            )
            self.observability.attach(self.engine, self.switchboard)
        self.scheduler = Scheduler(
            self.engine,
            platform,
            self.timing,
            self.switchboard,
            self.logger,
            app_name=app_name,
            dilation=dilation,
            injector=fault_plan,
            supervisor=self.supervisor,
            observability=self.observability,
        )
        self.phonebook.register("engine", self.engine)
        self.phonebook.register("platform", platform)
        self.phonebook.register("config", config)
        self.phonebook.register("trajectory", trajectory)
        self.phonebook.register("timing", self.timing)
        if self.observability is not None:
            self.phonebook.register("observability", self.observability)

    def run(self, duration: Optional[float] = None) -> RuntimeResult:
        """Boot the system, run for ``duration`` seconds, collect results."""
        duration = duration if duration is not None else self.config.duration_s
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")

        vio_log: List[Tuple[float, VioEstimate]] = []
        fast_pose_count = [0]

        def collect_slow_pose(event) -> None:
            if event.data is not None:
                vio_log.append((event.publish_time, event.data))

        def collect_fast_pose(_event) -> None:
            fast_pose_count[0] += 1

        self.switchboard.topic("slow_pose").subscribe_callback(collect_slow_pose)
        self.switchboard.topic("fast_pose").subscribe_callback(collect_fast_pose)

        for plugin in self.plugins:
            plugin.setup(self.phonebook, self.switchboard)
        for plugin in self.plugins:
            self.scheduler.add_plugin(plugin)

        self.engine.run(until=duration)
        for plugin in self.plugins:
            plugin.finalize()

        utilization = self.scheduler.utilization()
        power = PowerModel(self.platform).breakdown(
            cpu_utilization=utilization["cpu"], gpu_utilization=utilization["gpu"]
        )
        timewarp = next((p for p in self.plugins if isinstance(p, TimewarpPlugin)), None)
        return RuntimeResult(
            platform=self.platform,
            app_name=self.app_name,
            config=self.config,
            duration=duration,
            logger=self.logger,
            mtp_samples=list(timewarp.mtp_samples) if timewarp else [],
            display_events=list(timewarp.display_events) if timewarp else [],
            utilization=utilization,
            power=power,
            vio_trajectory=vio_log,
            fast_pose_count=fast_pose_count[0],
            trajectory=self.trajectory,
            supervision=self.supervisor.report() if self.supervisor is not None else None,
            fault_log=list(self.fault_plan.log) if self.fault_plan is not None else [],
            observability=self.observability,
        )


def build_runtime(
    platform: Platform,
    app_name: str = "sponza",
    config: Optional[SystemConfig] = None,
    trajectory: Optional[TrajectorySpline] = None,
    fault_plan=None,
    supervision=None,
    observability=None,
) -> Runtime:
    """Assemble the paper's integrated system configuration (§III-B).

    ``fault_plan`` (a :class:`repro.resilience.FaultPlan`) and
    ``supervision`` (a :class:`repro.resilience.SupervisorConfig` or a
    prebuilt supervisor) opt the run into the resilience layer; both
    default to off, leaving the hot paths untouched.  ``observability``
    (True or a prebuilt :class:`repro.obs.Observability`) opts into
    causal tracing and the metrics registry under the same discipline.
    """
    config = config or SystemConfig()
    scene: Scene = scene_by_name(app_name)
    trajectory = trajectory or lab_walk_trajectory(
        duration=config.duration_s + 2.0, seed=config.seed
    )
    landmarks = LandmarkField(seed=config.seed + 100)
    camera = StereoCamera(
        landmarks=landmarks,
        exposure_ms=config.camera_exposure_ms,
        seed=config.seed + 200,
    )
    imu = ImuModel(trajectory, rate_hz=config.imu_rate_hz, seed=config.seed + 300)
    timing = TimingModel(platform, seed=config.seed)
    # Reprojection starts as late as possible: its p90 cost plus a margin
    # for GPU queueing (larger where the GPU cannot preempt), clamped
    # inside the vsync period (footnote 5 of the paper).
    queue_margin = 0.2e-3 if platform.gpu_priority_contexts else 1.0e-3
    lead = min(
        timing.percentile("timewarp", 0.90) * 1.15 + queue_margin,
        config.vsync_period * 0.9,
    )
    plugins: List[Plugin] = [
        CameraPlugin(config, camera, trajectory),
        ImuPlugin(config, imu),
        VioPlugin(config, camera, trajectory),
        IntegratorPlugin(config, trajectory),
        ApplicationPlugin(config, scene),
        TimewarpPlugin(config, lead=lead),
        AudioEncodingPlugin(config),
        AudioPlaybackPlugin(config),
    ]
    return Runtime(
        platform,
        config,
        app_name,
        plugins,
        trajectory,
        timing=timing,
        fault_plan=fault_plan,
        supervision=supervision,
        observability=observability,
    )
