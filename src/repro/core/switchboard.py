"""The switchboard: ILLIXR's event-stream communication framework.

Per §II-B of the paper, event streams support writes, **asynchronous reads**
(consumer asks for the latest value) and **synchronous reads** (consumer sees
every value the producer publishes).  Plugins may only interact through these
streams, which is what makes components interchangeable.

Streams are typed by topic name.  Every published event carries the virtual
time at which it was published, so consumers can compute data ages (the basis
of the motion-to-photon metric).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class _RingBuffer(Generic[T]):
    """Fixed-capacity append-only ring with O(1) random access.

    ``collections.deque`` indexes from the nearer end in O(distance), which
    turns a binary search over the history into O(n log n); a flat list
    with a rotating start keeps every probe O(1).
    """

    __slots__ = ("_items", "_capacity", "_start", "_size")

    def __init__(self, capacity: int) -> None:
        self._items: List[Any] = [None] * capacity
        self._capacity = capacity
        self._start = 0
        self._size = 0

    def append(self, item: T) -> None:
        if self._size < self._capacity:
            self._items[(self._start + self._size) % self._capacity] = item
            self._size += 1
        else:  # full: overwrite the oldest slot
            self._items[self._start] = item
            self._start = (self._start + 1) % self._capacity

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> T:
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(index)
        return self._items[(self._start + index) % self._capacity]

    def __iter__(self) -> Iterator[T]:
        for offset in range(self._size):
            yield self._items[(self._start + offset) % self._capacity]


@dataclass(frozen=True)
class StampedEvent(Generic[T]):
    """A value published on a topic, stamped with its publication time.

    ``data_time`` optionally records the timestamp of the underlying datum
    (e.g. the IMU sample time behind a pose estimate), which can be older
    than ``publish_time`` -- their difference is the data's age at
    publication.

    ``trace`` carries the publishing invocation's trace context (see
    :mod:`repro.obs`) so consumers can attach themselves to the
    producer's lineage; it is None unless observability is enabled.
    """

    publish_time: float
    data: T
    data_time: Optional[float] = None
    sequence: int = 0
    trace: Optional[Any] = None

    @property
    def effective_data_time(self) -> float:
        """The datum's own timestamp, defaulting to the publication time."""
        return self.publish_time if self.data_time is None else self.data_time


class Topic(Generic[T]):
    """A single event stream: one logical writer, many readers."""

    def __init__(self, name: str, history: int = 128) -> None:
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.name = name
        self._history: _RingBuffer[StampedEvent[T]] = _RingBuffer(history)
        self._sequence = 0
        self._queues: List[Deque[StampedEvent[T]]] = []
        self._callbacks: List[Callable[[StampedEvent[T]], None]] = []
        # Fault-injection hook (see repro.resilience.faults).  None in
        # normal operation: put() then pays one attribute load + branch.
        self._injector: Optional[Any] = None
        # Observability hook (see repro.obs): stamps trace contexts at
        # publish and turns reads into lineage links.  Same discipline:
        # None unless a run opted in.
        self._observer: Optional[Any] = None

    def put(self, publish_time: float, data: T, data_time: Optional[float] = None) -> StampedEvent[T]:
        """Publish ``data`` at ``publish_time``; notify all readers.

        When a fault injector is installed the publish may be dropped,
        delayed, duplicated, or corrupted before delivery.  A dropped or
        delayed publish returns an *undelivered* event (not appended to
        history, sequence unconsumed) so callers see a consistent shape.
        """
        if self._injector is not None:
            directive = self._injector.on_publish(self, publish_time, data, data_time)
            if directive is not None:
                kind, payload = directive
                if kind == "drop" or kind == "delay":
                    if self._observer is not None:
                        self._observer.on_injector_drop(self.name, kind)
                    return StampedEvent(publish_time, data, data_time, self._sequence)
                if kind == "corrupt":
                    data = payload
                elif kind == "duplicate":
                    self.deliver(publish_time, data, data_time)
        return self.deliver(publish_time, data, data_time)

    def deliver(self, publish_time: float, data: T, data_time: Optional[float] = None) -> StampedEvent[T]:
        """Deliver an event to all readers, bypassing fault injection.

        This is the raw delivery path ``put`` uses after injection has had
        its say; the injector's delayed redelivery and the supervisor's
        dead-letter/supervision publishes call it directly so control
        traffic is never itself faulted.
        """
        if self._history and publish_time < self._history[-1].publish_time:
            raise ValueError(
                f"topic {self.name!r}: non-monotonic publish time "
                f"{publish_time} < {self._history[-1].publish_time}"
            )
        observer = self._observer
        trace = observer.publish_context(self.name) if observer is not None else None
        event = StampedEvent(publish_time, data, data_time, self._sequence, trace)
        self._sequence += 1
        self._history.append(event)
        for queue in self._queues:
            queue.append(event)
        if observer is not None:
            # Metrics before callbacks: the publish is recorded before any
            # cascading reaction it triggers.
            observer.on_publish(self, event)
        for callback in self._callbacks:
            callback(event)
        return event

    def get_latest(self) -> Optional[StampedEvent[T]]:
        """Asynchronous read: the most recent event, or None if empty."""
        if not self._history:
            return None
        event = self._history[-1]
        if self._observer is not None:
            self._observer.on_read(self.name, event)
        return event

    def get_latest_before(self, time: float) -> Optional[StampedEvent[T]]:
        """The most recent event published at or before ``time``.

        Publish times are append-ordered (``put`` enforces monotonicity),
        so this is a bisect over the retained ring — O(log n) instead of
        the linear reverse scan it replaces.  Among equal publish times the
        latest-published event wins, matching the old scan.
        """
        history = self._history
        lo, hi = 0, len(history)
        while lo < hi:
            mid = (lo + hi) // 2
            if history[mid].publish_time <= time:
                lo = mid + 1
            else:
                hi = mid
        if not lo:
            return None
        event = history[lo - 1]
        if self._observer is not None:
            self._observer.on_read(self.name, event)
        return event

    def subscribe_queue(self) -> "SyncReader[T]":
        """Synchronous read: a reader that sees every subsequent event."""
        queue: Deque[StampedEvent[T]] = deque()
        self._queues.append(queue)
        return SyncReader(self, queue)

    def subscribe_callback(self, callback: Callable[[StampedEvent[T]], None]) -> None:
        """Invoke ``callback`` on every publish (used by the scheduler)."""
        self._callbacks.append(callback)

    @property
    def count(self) -> int:
        """Total number of events ever published."""
        return self._sequence

    def history(self) -> Iterator[StampedEvent[T]]:
        """Iterate over the retained event history, oldest first."""
        return iter(self._history)


class SyncReader(Generic[T]):
    """A synchronous subscription: drains every event exactly once."""

    def __init__(self, topic: Topic[T], queue: Deque[StampedEvent[T]]) -> None:
        self.topic = topic
        self._queue = queue

    def __len__(self) -> int:
        return len(self._queue)

    def pop(self) -> StampedEvent[T]:
        """Remove and return the oldest unread event."""
        if not self._queue:
            raise IndexError(f"no unread events on {self.topic.name!r}")
        return self._queue.popleft()

    def drain(self) -> List[StampedEvent[T]]:
        """Remove and return all unread events, oldest first."""
        events = list(self._queue)
        self._queue.clear()
        return events

    def peek(self) -> Optional[StampedEvent[T]]:
        """The oldest unread event without removing it, or None."""
        return self._queue[0] if self._queue else None


@dataclass
class Switchboard:
    """Registry of topics; the only channel between plugins."""

    _topics: Dict[str, Topic[Any]] = field(default_factory=dict)

    _injector: Optional[Any] = None
    _observer: Optional[Any] = None

    def topic(self, name: str, history: int = 128) -> Topic[Any]:
        """Get or create the topic called ``name``."""
        if name not in self._topics:
            topic = Topic(name, history=history)
            topic._injector = self._injector
            topic._observer = self._observer
            self._topics[name] = topic
        return self._topics[name]

    def install_injector(self, injector: Optional[Any]) -> None:
        """Attach a fault injector to every current and future topic."""
        self._injector = injector
        for topic in self._topics.values():
            topic._injector = injector

    def install_observer(self, observer: Optional[Any]) -> None:
        """Attach an observability hook to every current and future topic."""
        self._observer = observer
        for topic in self._topics.values():
            topic._observer = observer

    def __contains__(self, name: str) -> bool:
        return name in self._topics

    def topic_names(self) -> List[str]:
        """All registered topic names, sorted."""
        return sorted(self._topics)
