"""The phonebook: ILLIXR's service registry.

Plugins obtain shared services (the clock, pose prediction, the platform
model) by name rather than by direct reference, which keeps them decoupled
and interchangeable.
"""

from __future__ import annotations

from typing import Any, Dict, List


class ServiceNotFound(KeyError):
    """Raised when a plugin looks up a service nobody registered."""


class Phonebook:
    """A name -> service registry with single registration per name."""

    def __init__(self) -> None:
        self._services: Dict[str, Any] = {}

    def register(self, name: str, service: Any) -> None:
        """Register ``service`` under ``name``; names are single-use."""
        if name in self._services:
            raise ValueError(f"service {name!r} already registered")
        self._services[name] = service

    def lookup(self, name: str) -> Any:
        """Return the service registered under ``name``."""
        try:
            return self._services[name]
        except KeyError:
            raise ServiceNotFound(
                f"no service {name!r}; available: {sorted(self._services)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def names(self) -> List[str]:
        """All registered service names, sorted."""
        return sorted(self._services)
