"""Plugin architecture: components as interchangeable units.

Each ILLIXR component (Table II of the paper) is a plugin.  A plugin
declares *how* it is triggered (periodically, on publication of a topic, or
against vsync), does its algorithmic work in :meth:`Plugin.iteration`, and
returns the outputs to publish plus a complexity scalar that scales the
platform timing model for this invocation (input-dependent components such
as VIO and the application report varying complexity; see §IV-A1).

The scheduler -- not the plugin -- decides when the invocation's outputs
become visible: they are published at the invocation's *completion* time on
the simulated platform, so downstream consumers experience realistic data
ages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.phonebook import Phonebook
from repro.core.switchboard import Switchboard


@dataclass(frozen=True)
class Periodic:
    """Run every ``period`` seconds; skip the tick if still running."""

    period: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")


@dataclass(frozen=True)
class OnTopic:
    """Run when ``topic`` publishes (a synchronous dependence, Fig. 2)."""

    topic: str


@dataclass(frozen=True)
class OnVsync:
    """Run as late as possible before each vsync (footnote 5 of the paper).

    The scheduler starts the plugin ``lead`` seconds before each vsync so
    that it reads the freshest pose; ``lead`` is typically the component's
    high-percentile modeled execution time.
    """

    period: float
    lead: float

    def __post_init__(self) -> None:
        if not 0 < self.lead <= self.period:
            raise ValueError(
                f"lead must be in (0, period]; got lead={self.lead} period={self.period}"
            )


Trigger = Periodic | OnTopic | OnVsync


@dataclass
class Output:
    """One datum to publish when the invocation completes."""

    topic: str
    data: Any
    data_time: Optional[float] = None


@dataclass
class IterationResult:
    """What one plugin invocation produced.

    ``complexity`` multiplies the timing model's sampled execution time for
    this invocation (1.0 = typical work).  ``skipped`` marks invocations
    that found no work to do (e.g. VIO with no new camera frame); these are
    not counted as frames.  ``extra_delay`` adds wall time that occupies
    *no local resource* -- the remote-compute + network round trip of an
    offloaded component (§II footnote 2).
    """

    outputs: List[Output] = field(default_factory=list)
    complexity: float = 1.0
    skipped: bool = False
    extra_delay: float = 0.0

    def publish(self, topic: str, data: Any, data_time: Optional[float] = None) -> None:
        """Queue ``data`` for publication on ``topic`` at completion time."""
        self.outputs.append(Output(topic, data, data_time))


@dataclass(frozen=True)
class InvocationContext:
    """Facts about the current invocation, passed to ``iteration``."""

    now: float
    index: int
    trigger_event: Any = None


class Plugin:
    """Base class for all runtime components.

    Subclasses set the class attributes and implement :meth:`iteration`.
    ``component`` keys into the platform timing/power/microarchitecture
    models; several plugins may share a component key only if they are
    alternative implementations of the same component.
    """

    name: str = "plugin"
    component: str = "generic"
    pipeline: str = "perception"
    uses_gpu: bool = False

    def __init__(self, trigger: Trigger) -> None:
        self.trigger = trigger
        self.switchboard: Optional[Switchboard] = None
        self.phonebook: Optional[Phonebook] = None
        # The run's observability facade (repro.obs), or None when the
        # run is untraced; resolved in setup().  Plugins wanting richer
        # traces call ``self.obs.annotate(...)`` behind a None-check.
        self.obs: Optional[Any] = None

    def setup(self, phonebook: Phonebook, switchboard: Switchboard) -> None:
        """Wire up streams/services.  Subclasses should call super().setup."""
        self.phonebook = phonebook
        self.switchboard = switchboard
        self.obs = phonebook.lookup("observability") if "observability" in phonebook else None

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        """Do one invocation's work; must be overridden."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Hook called once when the run ends (e.g. flush buffered state)."""

    def reset(self, reason: Optional[BaseException] = None) -> None:
        """Hook called by the supervisor before retrying a crashed invocation.

        A restart is allowed to lose in-memory state (that is the point:
        it models relaunching the component process).  Subclasses with
        internal estimators should drop them here so the retry starts
        from a clean slate; the default keeps everything.
        """

    @property
    def deadline(self) -> Optional[float]:
        """The per-invocation deadline implied by the trigger, if periodic."""
        if isinstance(self.trigger, (Periodic, OnVsync)):
            return self.trigger.period
        return None

    def describe(self) -> Tuple[str, str, str]:
        """(name, pipeline, component) -- used for Table II style reports."""
        return (self.name, self.pipeline, self.component)
