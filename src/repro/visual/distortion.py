"""Mesh-based lens distortion and chromatic aberration correction [39].

HMD lenses introduce pincushion distortion and chromatic aberration; the
runtime pre-applies the inverse (barrel) warp so the image looks correct
through the lens.  Like the production TimeWarp shader, the warp is
evaluated on a coarse mesh and bilinearly interpolated across pixels --
exact per-pixel evaluation is available for testing.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.visual.reprojection import bilinear_sample

# Default radial coefficients (barrel pre-correction for a typical HMD
# lens) and per-channel chromatic scale factors (red refracts least).
DEFAULT_K1 = -0.22
DEFAULT_K2 = -0.04
DEFAULT_CHROMATIC_SCALES = (0.994, 1.0, 1.008)  # R, G, B


def radial_warp_coordinates(
    width: int, height: int, k1: float, k2: float, scale: float = 1.0
) -> np.ndarray:
    """Per-pixel source coordinates for a radial warp, exact evaluation.

    The warp maps normalized radius r -> r * (1 + k1 r^2 + k2 r^4),
    optionally scaled per color channel (chromatic aberration).  Radius is
    normalized by the half-diagonal so r <= 1 everywhere and the default
    coefficients keep the mapping monotonic (no fold-over at the corners).
    """
    u, v = np.meshgrid(np.arange(width, dtype=float), np.arange(height, dtype=float))
    cx, cy = width / 2.0, height / 2.0
    norm = float(np.hypot(cx, cy))
    x = (u - cx) / norm
    y = (v - cy) / norm
    r2 = (x * x + y * y) * scale * scale
    factor = 1.0 + k1 * r2 + k2 * r2 * r2
    return np.stack([cx + x * factor * norm, cy + y * factor * norm], axis=-1)


def mesh_warp_coordinates(
    width: int, height: int, k1: float, k2: float, scale: float = 1.0, mesh_step: int = 16
) -> np.ndarray:
    """Mesh-based approximation of :func:`radial_warp_coordinates`.

    Evaluates the warp on an (H/step x W/step) grid and bilinearly
    interpolates -- the structure of the real mesh-based shader.
    """
    if mesh_step < 2:
        raise ValueError("mesh_step must be >= 2")
    xs = np.unique(np.concatenate([np.arange(0, width, mesh_step), [width - 1]]))
    ys = np.unique(np.concatenate([np.arange(0, height, mesh_step), [height - 1]]))
    cx, cy = width / 2.0, height / 2.0
    norm = float(np.hypot(cx, cy))
    gx, gy = np.meshgrid(xs.astype(float), ys.astype(float))
    x = (gx - cx) / norm
    y = (gy - cy) / norm
    r2 = (x * x + y * y) * scale * scale
    factor = 1.0 + k1 * r2 + k2 * r2 * r2
    mesh_u = cx + x * factor * norm
    mesh_v = cy + y * factor * norm
    # Interpolate mesh -> full resolution.
    from scipy.interpolate import RegularGridInterpolator

    interp_u = RegularGridInterpolator((ys, xs), mesh_u, method="linear")
    interp_v = RegularGridInterpolator((ys, xs), mesh_v, method="linear")
    uu, vv = np.meshgrid(np.arange(width), np.arange(height))
    points = np.stack([vv.ravel(), uu.ravel()], axis=-1)
    coords = np.stack(
        [interp_u(points).reshape(height, width), interp_v(points).reshape(height, width)],
        axis=-1,
    )
    return coords


def apply_lens_correction(
    image: np.ndarray,
    k1: float = DEFAULT_K1,
    k2: float = DEFAULT_K2,
    chromatic_scales: Sequence[float] = DEFAULT_CHROMATIC_SCALES,
    mesh_step: int = 16,
) -> np.ndarray:
    """Barrel pre-distortion with per-channel chromatic correction.

    Each color channel is warped with a slightly different radial scale so
    that, after the lens's wavelength-dependent magnification, the channels
    land on top of each other.
    """
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {image.shape}")
    if len(chromatic_scales) != 3:
        raise ValueError("need exactly 3 chromatic scales (R, G, B)")
    height, width = image.shape[:2]
    out = np.empty_like(image)
    for channel, scale in enumerate(chromatic_scales):
        coords = mesh_warp_coordinates(width, height, k1, k2, scale=scale, mesh_step=mesh_step)
        out[..., channel] = bilinear_sample(image[..., channel], coords)
    return out


def mesh_approximation_error(
    width: int, height: int, k1: float = DEFAULT_K1, k2: float = DEFAULT_K2, mesh_step: int = 16
) -> Tuple[float, float]:
    """(mean, max) pixel error of the mesh warp vs exact evaluation."""
    exact = radial_warp_coordinates(width, height, k1, k2)
    mesh = mesh_warp_coordinates(width, height, k1, k2, mesh_step=mesh_step)
    err = np.linalg.norm(exact - mesh, axis=-1)
    return float(err.mean()), float(err.max())
