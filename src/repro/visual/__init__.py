"""Visual pipeline components.

Takes the fresh pose from the perception pipeline and the frame submitted
by the application and produces the final display (§II-A):

- :mod:`repro.visual.scenes` -- the four evaluation applications
  (Sponza, Materials, Platformer, AR Demo) as procedural scenes;
- :mod:`repro.visual.renderer` -- a software ray-cast renderer standing in
  for the Godot game engine ("the application");
- :mod:`repro.visual.reprojection` -- asynchronous reprojection (rotational
  TimeWarp, plus the translational variant ILLIXR added later);
- :mod:`repro.visual.distortion` -- mesh-based lens distortion and
  chromatic aberration correction;
- :mod:`repro.visual.hologram` -- Weighted Gerchberg-Saxton multi-plane
  computational holography.
"""

from repro.visual.reprojection import rotational_reproject, translational_reproject
from repro.visual.renderer import RenderCamera, Renderer
from repro.visual.scenes import APPLICATIONS, Scene, scene_by_name

__all__ = [
    "APPLICATIONS",
    "RenderCamera",
    "Renderer",
    "Scene",
    "rotational_reproject",
    "scene_by_name",
    "translational_reproject",
]
