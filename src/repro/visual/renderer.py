"""Software ray-cast renderer: the "application" of the visual pipeline.

Stands in for Godot rendering the four evaluation scenes.  View-dependent
shading (Lambertian + Blinn-Phong speculars + procedural wall texture)
makes reprojection error *real*: warping an old frame to a new pose leaves
exactly the disocclusion/parallax artifacts the SSIM/FLIP metrics of
Table V are sensitive to.

Also exposes :meth:`Renderer.view_complexity`, a cheap analytic proxy for
per-frame render cost (how much geometry the view actually hits) used as
the input-dependence signal for the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.maths.quaternion import quat_rotate
from repro.maths.se3 import Pose
from repro.visual.scenes import Scene

# Body (x fwd, y left, z up) -> camera (x right, y down, z fwd).
R_CAM_BODY = np.array([[0.0, -1.0, 0.0], [0.0, 0.0, -1.0], [1.0, 0.0, 0.0]])


@dataclass(frozen=True)
class RenderCamera:
    """Rendering camera: resolution + field of view."""

    width: int = 320
    height: int = 180
    fov_deg: float = 90.0

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 8:
            raise ValueError("render target too small")
        if not 10.0 <= self.fov_deg <= 180.0:
            raise ValueError(f"fov out of range: {self.fov_deg}")

    @property
    def focal_px(self) -> float:
        """Focal length in pixels (horizontal)."""
        return 0.5 * self.width / np.tan(np.radians(self.fov_deg) / 2.0)

    def intrinsic_matrix(self) -> np.ndarray:
        """3x3 pinhole K for reprojection homographies."""
        f = self.focal_px
        return np.array(
            [[f, 0.0, self.width / 2.0], [0.0, f, self.height / 2.0], [0.0, 0.0, 1.0]]
        )

    def rays_camera(self) -> np.ndarray:
        """Per-pixel camera-frame ray directions, shape (H, W, 3)."""
        u, v = np.meshgrid(
            np.arange(self.width) + 0.5, np.arange(self.height) + 0.5
        )
        f = self.focal_px
        return np.stack(
            [(u - self.width / 2.0) / f, (v - self.height / 2.0) / f, np.ones_like(u)],
            axis=-1,
        )


@dataclass(frozen=True)
class RenderedFrame:
    """The application's submitted frame: color + depth + the pose used."""

    image: np.ndarray       # (H, W, 3) float in [0, 1]
    depth: np.ndarray       # (H, W) metres along camera z (0 = miss)
    pose: Pose              # the (possibly stale) pose it was rendered with
    render_time: float      # virtual time at which rendering started


class Renderer:
    """Renders a :class:`Scene` from arbitrary head poses."""

    def __init__(self, scene: Scene, camera: Optional[RenderCamera] = None) -> None:
        self.scene = scene
        self.camera = camera or RenderCamera()
        self._rays_cam = self.camera.rays_camera().reshape(-1, 3)
        self._z_scale = np.linalg.norm(self._rays_cam, axis=1)

    # ------------------------------------------------------------------

    def render(self, pose: Pose, render_time: float = 0.0) -> RenderedFrame:
        """Render the scene from ``pose``; returns color + depth."""
        h, w = self.camera.height, self.camera.width
        rays_body = self._rays_cam @ R_CAM_BODY
        directions = quat_rotate(pose.orientation, rays_body)
        origin = pose.position
        n = directions.shape[0]

        t_hit = np.full(n, np.inf)
        color = np.zeros((n, 3))
        normal = np.zeros((n, 3))
        albedo = np.zeros((n, 3))
        specular = np.zeros(n)
        hit_any = np.zeros(n, dtype=bool)

        def commit(t: np.ndarray, alb: np.ndarray, nrm: np.ndarray, spec: float | np.ndarray) -> None:
            closer = t < t_hit
            if not np.any(closer):
                return
            t_hit[closer] = t[closer]
            albedo[closer] = alb[closer] if alb.ndim == 2 else alb
            normal[closer] = nrm[closer]
            if np.isscalar(spec):
                specular[closer] = spec
            else:
                specular[closer] = spec[closer]
            hit_any[closer] = True

        # Room walls (textured apps only; AR demo leaves them black).
        t_room, n_room = self._intersect_room(origin, directions)
        if self.scene.textured_room:
            hit_points = origin + directions * t_room[:, None]
            wall_albedo = self._wall_texture(hit_points, n_room)
            commit(t_room, wall_albedo, n_room, 0.05)
        else:
            # Opaque but black: occludes virtual objects correctly.
            commit(t_room, np.zeros((n, 3)), n_room, 0.0)

        for sphere in self.scene.spheres:
            t, nrm = _sphere_hit(origin, directions, sphere.center, sphere.radius)
            commit(t, np.broadcast_to(sphere.color, (n, 3)), nrm, sphere.specular)

        for box in self.scene.boxes:
            t, nrm = _box_hit(origin, directions, box.minimum, box.maximum)
            commit(t, np.broadcast_to(box.color, (n, 3)), nrm, box.specular)

        # Shading: ambient + Lambertian + Blinn-Phong.
        light = -self.scene.light_dir
        n_dot_l = np.clip(normal @ light, 0.0, 1.0)
        view = -directions / np.maximum(np.linalg.norm(directions, axis=1, keepdims=True), 1e-12)
        half = light + view
        half /= np.maximum(np.linalg.norm(half, axis=1, keepdims=True), 1e-12)
        spec_term = specular * np.clip(np.sum(normal * half, axis=1), 0.0, 1.0) ** 24
        shade = 0.25 + 0.75 * n_dot_l
        color = albedo * shade[:, None] + spec_term[:, None]
        color[~hit_any] = 0.0

        depth = np.where(np.isfinite(t_hit), t_hit / self._z_scale, 0.0)
        return RenderedFrame(
            image=np.clip(color, 0.0, 1.0).reshape(h, w, 3),
            depth=depth.reshape(h, w),
            pose=pose,
            render_time=render_time,
        )

    def view_complexity(self, pose: Pose) -> float:
        """Cheap proxy for render cost at ``pose`` (mean 1.0 over views).

        Counts scene primitives within the view frustum, weighted by
        projected solid angle -- the signal that makes the application's
        per-frame time input-dependent (Fig. 4 of the paper).
        """
        forward = quat_rotate(pose.orientation, np.array([1.0, 0.0, 0.0]))
        cos_half_fov = np.cos(np.radians(self.camera.fov_deg) / 2.0 * 1.2)
        weight = 0.4  # base cost: room + post-processing
        for sphere in self.scene.spheres:
            weight += _frustum_weight(pose.position, forward, cos_half_fov, sphere.center, sphere.radius)
        for box in self.scene.boxes:
            center = 0.5 * (box.minimum + box.maximum)
            radius = 0.5 * float(np.linalg.norm(box.maximum - box.minimum))
            weight += _frustum_weight(pose.position, forward, cos_half_fov, center, radius)
        n_prims = max(len(self.scene.spheres) + len(self.scene.boxes), 1)
        # Normalize so the average over random views is ~1.
        return float(np.clip(weight / (0.4 + 0.5 * n_prims * 0.35), 0.4, 2.5))

    # ------------------------------------------------------------------

    def _intersect_room(
        self, origin: np.ndarray, directions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        h = self.scene.room_half_extent
        low = np.array([-h, -h, 0.0])
        high = np.array([h, h, self.scene.room_height])
        with np.errstate(divide="ignore", invalid="ignore"):
            t_low = (low - origin) / directions
            t_high = (high - origin) / directions
        t_far = np.maximum(t_low, t_high)
        t_far[~np.isfinite(t_far)] = np.inf
        axis = np.argmin(t_far, axis=1)
        t_exit = t_far[np.arange(len(axis)), axis]
        t_exit = np.where(t_exit > 1e-6, t_exit, np.inf)
        normals = -np.sign(directions[np.arange(len(axis)), axis])[:, None] * np.eye(3)[axis]
        return t_exit, normals

    def _wall_texture(self, points: np.ndarray, normals: np.ndarray) -> np.ndarray:
        """Procedural checker + stripe texture keyed on world position."""
        u = points[:, 0] + points[:, 1] * 0.5
        v = points[:, 2] + points[:, 1] * 0.25
        checker = ((np.floor(u * 2.0) + np.floor(v * 2.0)) % 2.0)
        stripes = 0.5 + 0.5 * np.sin(u * 9.0)
        base = np.array([0.55, 0.5, 0.45])
        tint = np.array([0.25, 0.22, 0.3])
        tex = base[None, :] + tint[None, :] * (0.6 * checker + 0.4 * stripes)[:, None]
        # Slight per-face tint so walls are distinguishable.
        tex *= 0.85 + 0.15 * np.abs(normals)
        return np.clip(tex, 0.0, 1.0)


def _sphere_hit(
    origin: np.ndarray, directions: np.ndarray, center: np.ndarray, radius: float
) -> Tuple[np.ndarray, np.ndarray]:
    oc = origin - center
    a = np.sum(directions * directions, axis=1)
    b = 2.0 * directions @ oc
    c = float(oc @ oc) - radius * radius
    disc = b * b - 4 * a * c
    hit = disc >= 0
    sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
    t = (-b - sqrt_disc) / (2 * a)
    t = np.where(hit & (t > 1e-6), t, np.inf)
    points = origin + directions * np.where(np.isfinite(t), t, 0.0)[:, None]
    normals = (points - center) / radius
    return t, normals


def _box_hit(
    origin: np.ndarray, directions: np.ndarray, minimum: np.ndarray, maximum: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    with np.errstate(divide="ignore", invalid="ignore"):
        t_low = (minimum - origin) / directions
        t_high = (maximum - origin) / directions
    t_min = np.minimum(t_low, t_high)
    t_max = np.maximum(t_low, t_high)
    axis = np.argmax(t_min, axis=1)
    t_near = t_min[np.arange(len(axis)), axis]
    t_far = np.min(t_max, axis=1)
    hit = (t_near <= t_far) & (t_far > 1e-6) & (t_near > 1e-6)
    t = np.where(hit, t_near, np.inf)
    normals = -np.sign(directions[np.arange(len(axis)), axis])[:, None] * np.eye(3)[axis]
    return t, normals


def _frustum_weight(
    position: np.ndarray,
    forward: np.ndarray,
    cos_half_fov: float,
    center: np.ndarray,
    radius: float,
) -> float:
    to_center = center - position
    distance = float(np.linalg.norm(to_center))
    if distance < 1e-6:
        return 1.0
    cos_angle = float(to_center @ forward) / distance
    if cos_angle < cos_half_fov:
        return 0.0
    # Projected solid-angle proxy, clamped for very near objects.
    return min(1.0, (radius / max(distance, radius)) ** 2 * 4.0)
