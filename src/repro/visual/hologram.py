"""Computational holography: Weighted Gerchberg-Saxton ([40], [42]).

Computes the phase pattern a spatial light modulator (SLM) would display
to present multiple focal planes to the user (the *adaptive display*
component).  Propagation between the hologram plane and each depth plane
uses the angular-spectrum method (FFT + transfer function); the weighted GS
iteration drives every plane toward its target amplitude while equalizing
energy across planes.

Task accounting mirrors Table VII's hologram rows: ``hologram_to_depth``
(forward propagations), ``sum`` (accumulating plane contributions), and
``depth_to_hologram`` (backward propagations).

Two implementations coexist (selected by the ``accelerated`` flag):

- the **reference** path propagates each depth plane separately — ``D``
  forward and ``D`` backward FFT pairs per WGS iteration;
- the **accelerated** path stacks the per-depth transfer functions into one
  ``(D, N, N)`` array so a WGS iteration costs a *single* forward FFT of
  the hologram (every plane shares it), one batched inverse FFT, one
  batched forward FFT of the constrained fields, and one inverse FFT of
  their frequency-domain sum.  Per-target masks, flat indices, and norms
  are cached across iterations, and the WGS weights live only on the
  in-target pixels (weights elsewhere multiply a zero target and cannot
  affect the result).

``benchmarks/perf_harness.py`` times both and checks parity; on the
acceptance configuration (3 planes, 128^2, 10 iterations) the accelerated
path is >= 2x faster with max phase deviation around 1e-10.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.perf import batched_fft2, batched_ifft2, fft2, global_plan_cache, ifft2, profiled

TASK_NAMES = ("hologram_to_depth", "sum", "depth_to_hologram")


@dataclass(frozen=True)
class HologramResult:
    """Output of one WGS solve."""

    phase: np.ndarray                 # (N, N) SLM phase in [-pi, pi]
    plane_amplitudes: List[np.ndarray]
    efficiency: float                 # target-region energy fraction
    uniformity: float                 # 1 - (max-min)/(max+min) across planes
    iterations: int
    task_times: Dict[str, float]


def _build_transfer_stack(
    resolution: int,
    wavelength_m: float,
    pixel_pitch_m: float,
    depths_m: Tuple[float, ...],
) -> np.ndarray:
    """Angular-spectrum transfer functions stacked as one (D, N, N) array."""
    fx = np.fft.fftfreq(resolution, d=pixel_pitch_m)
    fxx, fyy = np.meshgrid(fx, fx)
    inv_lambda2 = 1.0 / wavelength_m**2
    arg = inv_lambda2 - fxx**2 - fyy**2
    propagating = arg > 0
    kz = 2 * np.pi * np.sqrt(np.where(propagating, arg, 0.0))
    stack = np.empty((len(depths_m), resolution, resolution), dtype=complex)
    for k, z in enumerate(depths_m):
        stack[k] = np.where(propagating, np.exp(1j * kz * z), 0.0)
    return stack


@dataclass
class WeightedGerchbergSaxton:
    """Multi-plane WGS hologram solver on a square SLM."""

    resolution: int = 128
    wavelength_m: float = 520e-9
    pixel_pitch_m: float = 8e-6
    depths_m: Sequence[float] = (0.05, 0.10, 0.20)
    accelerated: bool = True
    _transfer: Dict[float, np.ndarray] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.resolution < 16 or self.resolution & (self.resolution - 1):
            raise ValueError("resolution must be a power of two >= 16")
        if not self.depths_m:
            raise ValueError("need at least one depth plane")
        for z in self.depths_m:
            if z <= 0:
                raise ValueError(f"depth must be positive: {z}")
        key = (
            "wgs.transfer",
            self.resolution,
            float(self.wavelength_m),
            float(self.pixel_pitch_m),
            tuple(float(z) for z in self.depths_m),
        )
        self._transfer_stack = global_plan_cache.get_or_build(
            key,
            lambda: _build_transfer_stack(
                self.resolution,
                self.wavelength_m,
                self.pixel_pitch_m,
                tuple(self.depths_m),
            ),
        )
        self._transfer_conj = np.conj(self._transfer_stack)
        for k, z in enumerate(self.depths_m):
            self._transfer[z] = self._transfer_stack[k]

    def propagate(self, field_in: np.ndarray, z: float, forward: bool = True) -> np.ndarray:
        """Angular-spectrum propagation over distance ``z``."""
        h = self._transfer[z]
        if not forward:
            h = np.conj(h)
        return np.fft.ifft2(np.fft.fft2(field_in) * h)

    def propagate_all(self, field_in: np.ndarray, forward: bool = True) -> np.ndarray:
        """Propagate one hologram field to every depth plane in one batch."""
        h = self._transfer_stack if forward else self._transfer_conj
        return batched_ifft2(fft2(field_in)[None, :, :] * h)

    def _validated_targets(self, targets: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(targets) != len(self.depths_m):
            raise ValueError(
                f"{len(targets)} targets for {len(self.depths_m)} depth planes"
            )
        n = self.resolution
        targets = [np.asarray(t, dtype=float) for t in targets]
        for t in targets:
            if t.shape != (n, n):
                raise ValueError(f"target shape {t.shape} != ({n}, {n})")
            if t.min() < 0:
                raise ValueError("target amplitudes must be non-negative")
        return targets

    @profiled("hologram.solve")
    def solve(
        self, targets: Sequence[np.ndarray], iterations: int = 10, seed: int = 0
    ) -> HologramResult:
        """Run WGS for the per-plane target amplitude images."""
        targets = self._validated_targets(targets)
        if self.accelerated:
            return self._solve_accelerated(targets, iterations, seed)
        return self._solve_reference(targets, iterations, seed)

    # ------------------------------------------------------------------
    # Accelerated path: batched propagation, cached masks, sparse weights.
    # ------------------------------------------------------------------

    def _solve_accelerated(
        self, targets: List[np.ndarray], iterations: int, seed: int
    ) -> HologramResult:
        n = self.resolution
        d = len(self.depths_m)
        task_times: Dict[str, float] = defaultdict(float)
        rng = np.random.default_rng(seed)
        phase = rng.uniform(-np.pi, np.pi, (n, n))

        # Normalize targets to unit energy so weighting is meaningful; cache
        # the per-plane masks, flat indices, and in-target values once.
        target_stack = np.stack(
            [t / max(np.sqrt((t**2).sum()), 1e-12) for t in targets]
        )
        flat_targets = target_stack.reshape(-1)
        plane_idx = [
            np.flatnonzero(target_stack[k].reshape(-1) > 0) + k * n * n
            for k in range(d)
        ]
        target_vals = [flat_targets[i] for i in plane_idx]
        has_target = [len(i) > 0 for i in plane_idx]
        masked_weights = [np.ones(len(i)) for i in plane_idx]
        h_conj = self._transfer_conj
        ratio = np.zeros(d * n * n)

        holo = np.exp(1j * phase)
        accumulated = None
        for _iteration in range(iterations):
            t0 = time.perf_counter()
            # Every plane shares the hologram's spectrum: one forward FFT,
            # one batched inverse FFT, instead of D separate FFT pairs.
            plane_fields = batched_ifft2(
                fft2(holo)[None, :, :] * self._transfer_stack
            )
            task_times["hologram_to_depth"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            amp_flat = np.abs(plane_fields).reshape(-1)
            masked_amps = [amp_flat[i] for i in plane_idx]
            plane_means = [
                float(a.mean()) if has_target[k] else 0.0
                for k, a in enumerate(masked_amps)
            ]
            mean_amp = float(np.mean(plane_means))
            task_times["sum"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            for k in range(d):
                # WGS weight update: boost planes that are lagging.  Weights
                # only matter where the target is nonzero, so they are
                # stored on the in-target pixels alone.
                if has_target[k] and plane_means[k] > 0:
                    masked_weights[k] = (
                        masked_weights[k]
                        * ((mean_amp + 1e-12) / (masked_amps[k] + 1e-12)) ** 0.5
                    )
                ratio[plane_idx[k]] = (
                    masked_weights[k]
                    * target_vals[k]
                    / np.maximum(masked_amps[k], 1e-300)
                )
            # constrained_k = w_k * t_k * exp(i*angle(f_k)) == f_k * ratio_k.
            constrained = plane_fields * ratio.reshape(d, n, n)
            # ifft2 is linear: sum the spectra, invert once.
            spectra = batched_fft2(constrained)
            accumulated = ifft2(np.einsum("kij,kij->ij", spectra, h_conj))
            holo = accumulated / np.maximum(np.abs(accumulated), 1e-300)
            task_times["depth_to_hologram"] += time.perf_counter() - t0

        if accumulated is not None:
            phase = np.angle(accumulated)

        # Final forward pass for metrics (exp(i*phase), as the reference).
        final_fields = self.propagate_all(np.exp(1j * phase))
        final_amps = np.abs(final_fields)
        plane_amps = [final_amps[k] for k in range(d)]
        efficiencies = []
        plane_means = []
        for k in range(d):
            if not has_target[k]:
                continue
            local = plane_idx[k] - k * n * n
            amps_in_target = final_amps[k].reshape(-1)[local]
            total = float((final_amps[k] ** 2).sum())
            if total > 0:
                efficiencies.append(float((amps_in_target**2).sum()) / total)
                plane_means.append(float(amps_in_target.mean()))
        return self._result(phase, plane_amps, efficiencies, plane_means, iterations, task_times)

    # ------------------------------------------------------------------
    # Reference path: the original per-plane implementation, kept for
    # parity tests and before/after benchmarking.
    # ------------------------------------------------------------------

    def _solve_reference(
        self, targets: List[np.ndarray], iterations: int, seed: int
    ) -> HologramResult:
        n = self.resolution
        task_times: Dict[str, float] = defaultdict(float)
        rng = np.random.default_rng(seed)
        phase = rng.uniform(-np.pi, np.pi, (n, n))
        weights = [np.ones((n, n)) for _ in targets]
        # Normalize targets to unit energy so weighting is meaningful.
        targets = [t / max(np.sqrt((t**2).sum()), 1e-12) for t in targets]

        plane_amps: List[np.ndarray] = [np.zeros((n, n)) for _ in targets]
        for _iteration in range(iterations):
            hologram_field = np.exp(1j * phase)
            plane_fields = []
            t0 = time.perf_counter()
            for z in self.depths_m:
                plane_fields.append(self.propagate(hologram_field, z, forward=True))
            task_times["hologram_to_depth"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            mean_amp = np.mean(
                [float(np.mean(np.abs(f)[t > 0])) if np.any(t > 0) else 0.0
                 for f, t in zip(plane_fields, targets)]
            )
            task_times["sum"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            accumulated = np.zeros((n, n), dtype=complex)
            for k, (z, target) in enumerate(zip(self.depths_m, targets)):
                amp = np.abs(plane_fields[k])
                plane_amps[k] = amp
                # WGS weight update: boost planes that are lagging.  The
                # update is skipped when the plane carries no energy in its
                # target region (plane_mean == 0), stated as an explicit
                # branch rather than a conditional expression trailing the
                # product.
                in_target = target > 0
                if np.any(in_target):
                    plane_mean = float(np.mean(amp[in_target]))
                    if plane_mean > 0:
                        weights[k] = weights[k] * np.where(
                            in_target, (mean_amp + 1e-12) / (amp + 1e-12), 1.0
                        ) ** 0.5
                constrained = weights[k] * target * np.exp(1j * np.angle(plane_fields[k]))
                accumulated += self.propagate(constrained, z, forward=False)
            phase = np.angle(accumulated)
            task_times["depth_to_hologram"] += time.perf_counter() - t0

        # Final forward pass for metrics.
        hologram_field = np.exp(1j * phase)
        efficiencies = []
        plane_means = []
        for k, (z, target) in enumerate(zip(self.depths_m, targets)):
            f = self.propagate(hologram_field, z, forward=True)
            plane_amps[k] = np.abs(f)
            in_target = target > 0
            total = float((np.abs(f) ** 2).sum())
            if np.any(in_target) and total > 0:
                efficiencies.append(float((np.abs(f)[in_target] ** 2).sum()) / total)
                plane_means.append(float(np.mean(np.abs(f)[in_target])))
        return self._result(phase, plane_amps, efficiencies, plane_means, iterations, task_times)

    @staticmethod
    def _result(
        phase: np.ndarray,
        plane_amps: List[np.ndarray],
        efficiencies: List[float],
        plane_means: List[float],
        iterations: int,
        task_times: Dict[str, float],
    ) -> HologramResult:
        efficiency = float(np.mean(efficiencies)) if efficiencies else 0.0
        if len(plane_means) >= 2:
            hi, lo = max(plane_means), min(plane_means)
            uniformity = 1.0 - (hi - lo) / (hi + lo + 1e-12)
        else:
            uniformity = 1.0
        return HologramResult(
            phase=phase,
            plane_amplitudes=plane_amps,
            efficiency=efficiency,
            uniformity=uniformity,
            iterations=iterations,
            task_times=dict(task_times),
        )


def focal_stack_from_frame(
    image: np.ndarray, depth: np.ndarray, depths_m: Sequence[float], resolution: int
) -> List[np.ndarray]:
    """Slice a rendered RGB-D frame into per-plane target amplitudes.

    Pixels are assigned to the nearest focal plane by depth; amplitude is
    the luminance.  This is how the adaptive display consumes the visual
    pipeline's output.
    """
    if image.ndim != 3:
        raise ValueError("expected an (H, W, 3) image")
    luminance = image @ np.array([0.2126, 0.7152, 0.0722])
    # Resize (nearest) to the SLM resolution.
    h, w = luminance.shape
    ys = (np.arange(resolution) * h // resolution).clip(0, h - 1)
    xs = (np.arange(resolution) * w // resolution).clip(0, w - 1)
    lum_r = luminance[np.ix_(ys, xs)]
    depth_r = depth[np.ix_(ys, xs)]
    # Map metric depth to focal planes on a log scale of 1/d.
    plane_edges = np.array(depths_m)
    targets = []
    assignment = np.argmin(
        np.abs(np.log(np.maximum(depth_r, 1e-3))[..., None] - np.log(plane_edges * 30.0)),
        axis=-1,
    )
    for k in range(len(depths_m)):
        target = np.where((assignment == k) & (depth_r > 0), lum_r, 0.0)
        targets.append(target)
    return targets
