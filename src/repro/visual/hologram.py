"""Computational holography: Weighted Gerchberg-Saxton ([40], [42]).

Computes the phase pattern a spatial light modulator (SLM) would display
to present multiple focal planes to the user (the *adaptive display*
component).  Propagation between the hologram plane and each depth plane
uses the angular-spectrum method (FFT + transfer function); the weighted GS
iteration drives every plane toward its target amplitude while equalizing
energy across planes.

Task accounting mirrors Table VII's hologram rows: ``hologram_to_depth``
(forward propagations), ``sum`` (accumulating plane contributions), and
``depth_to_hologram`` (backward propagations).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

TASK_NAMES = ("hologram_to_depth", "sum", "depth_to_hologram")


@dataclass(frozen=True)
class HologramResult:
    """Output of one WGS solve."""

    phase: np.ndarray                 # (N, N) SLM phase in [-pi, pi]
    plane_amplitudes: List[np.ndarray]
    efficiency: float                 # target-region energy fraction
    uniformity: float                 # 1 - (max-min)/(max+min) across planes
    iterations: int
    task_times: Dict[str, float]


@dataclass
class WeightedGerchbergSaxton:
    """Multi-plane WGS hologram solver on a square SLM."""

    resolution: int = 128
    wavelength_m: float = 520e-9
    pixel_pitch_m: float = 8e-6
    depths_m: Sequence[float] = (0.05, 0.10, 0.20)
    _transfer: Dict[float, np.ndarray] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.resolution < 16 or self.resolution & (self.resolution - 1):
            raise ValueError("resolution must be a power of two >= 16")
        if not self.depths_m:
            raise ValueError("need at least one depth plane")
        n = self.resolution
        fx = np.fft.fftfreq(n, d=self.pixel_pitch_m)
        fxx, fyy = np.meshgrid(fx, fx)
        inv_lambda2 = 1.0 / self.wavelength_m**2
        arg = inv_lambda2 - fxx**2 - fyy**2
        propagating = arg > 0
        kz = 2 * np.pi * np.sqrt(np.where(propagating, arg, 0.0))
        for z in self.depths_m:
            if z <= 0:
                raise ValueError(f"depth must be positive: {z}")
            h = np.where(propagating, np.exp(1j * kz * z), 0.0)
            self._transfer[z] = h

    def propagate(self, field_in: np.ndarray, z: float, forward: bool = True) -> np.ndarray:
        """Angular-spectrum propagation over distance ``z``."""
        h = self._transfer[z]
        if not forward:
            h = np.conj(h)
        return np.fft.ifft2(np.fft.fft2(field_in) * h)

    def solve(
        self, targets: Sequence[np.ndarray], iterations: int = 10, seed: int = 0
    ) -> HologramResult:
        """Run WGS for the per-plane target amplitude images."""
        if len(targets) != len(self.depths_m):
            raise ValueError(
                f"{len(targets)} targets for {len(self.depths_m)} depth planes"
            )
        n = self.resolution
        targets = [np.asarray(t, dtype=float) for t in targets]
        for t in targets:
            if t.shape != (n, n):
                raise ValueError(f"target shape {t.shape} != ({n}, {n})")
            if t.min() < 0:
                raise ValueError("target amplitudes must be non-negative")
        task_times: Dict[str, float] = defaultdict(float)
        rng = np.random.default_rng(seed)
        phase = rng.uniform(-np.pi, np.pi, (n, n))
        weights = [np.ones((n, n)) for _ in targets]
        # Normalize targets to unit energy so weighting is meaningful.
        targets = [t / max(np.sqrt((t**2).sum()), 1e-12) for t in targets]

        plane_amps: List[np.ndarray] = [np.zeros((n, n)) for _ in targets]
        for _iteration in range(iterations):
            hologram_field = np.exp(1j * phase)
            plane_fields = []
            t0 = time.perf_counter()
            for z in self.depths_m:
                plane_fields.append(self.propagate(hologram_field, z, forward=True))
            task_times["hologram_to_depth"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            mean_amp = np.mean(
                [float(np.mean(np.abs(f)[t > 0])) if np.any(t > 0) else 0.0
                 for f, t in zip(plane_fields, targets)]
            )
            task_times["sum"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            accumulated = np.zeros((n, n), dtype=complex)
            for k, (z, target) in enumerate(zip(self.depths_m, targets)):
                amp = np.abs(plane_fields[k])
                plane_amps[k] = amp
                # WGS weight update: boost planes that are lagging.
                in_target = target > 0
                if np.any(in_target):
                    plane_mean = float(np.mean(amp[in_target]))
                    weights[k] = weights[k] * np.where(
                        in_target, (mean_amp + 1e-12) / (amp + 1e-12), 1.0
                    ) ** 0.5 if plane_mean > 0 else weights[k]
                constrained = weights[k] * target * np.exp(1j * np.angle(plane_fields[k]))
                accumulated += self.propagate(constrained, z, forward=False)
            phase = np.angle(accumulated)
            task_times["depth_to_hologram"] += time.perf_counter() - t0

        # Final forward pass for metrics.
        hologram_field = np.exp(1j * phase)
        efficiencies = []
        plane_means = []
        for k, (z, target) in enumerate(zip(self.depths_m, targets)):
            f = self.propagate(hologram_field, z, forward=True)
            plane_amps[k] = np.abs(f)
            in_target = target > 0
            total = float((np.abs(f) ** 2).sum())
            if np.any(in_target) and total > 0:
                efficiencies.append(float((np.abs(f)[in_target] ** 2).sum()) / total)
                plane_means.append(float(np.mean(np.abs(f)[in_target])))
        efficiency = float(np.mean(efficiencies)) if efficiencies else 0.0
        if len(plane_means) >= 2:
            hi, lo = max(plane_means), min(plane_means)
            uniformity = 1.0 - (hi - lo) / (hi + lo + 1e-12)
        else:
            uniformity = 1.0
        return HologramResult(
            phase=phase,
            plane_amplitudes=plane_amps,
            efficiency=efficiency,
            uniformity=uniformity,
            iterations=iterations,
            task_times=dict(task_times),
        )


def focal_stack_from_frame(
    image: np.ndarray, depth: np.ndarray, depths_m: Sequence[float], resolution: int
) -> List[np.ndarray]:
    """Slice a rendered RGB-D frame into per-plane target amplitudes.

    Pixels are assigned to the nearest focal plane by depth; amplitude is
    the luminance.  This is how the adaptive display consumes the visual
    pipeline's output.
    """
    if image.ndim != 3:
        raise ValueError("expected an (H, W, 3) image")
    luminance = image @ np.array([0.2126, 0.7152, 0.0722])
    # Resize (nearest) to the SLM resolution.
    h, w = luminance.shape
    ys = (np.arange(resolution) * h // resolution).clip(0, h - 1)
    xs = (np.arange(resolution) * w // resolution).clip(0, w - 1)
    lum_r = luminance[np.ix_(ys, xs)]
    depth_r = depth[np.ix_(ys, xs)]
    # Map metric depth to focal planes on a log scale of 1/d.
    plane_edges = np.array(depths_m)
    targets = []
    assignment = np.argmin(
        np.abs(np.log(np.maximum(depth_r, 1e-3))[..., None] - np.log(plane_edges * 30.0)),
        axis=-1,
    )
    for k in range(len(depths_m)):
        target = np.where((assignment == k) & (depth_r > 0), lum_r, 0.0)
        targets.append(target)
    return targets
