"""Asynchronous reprojection (TimeWarp, [39] in the paper).

Corrects the application's rendered frame for the latency of rendering:
the frame was drawn from a stale pose; reprojection warps it to the fresh
pose read just before vsync.

- :func:`rotational_reproject` -- the paper's shipped variant: a pure
  rotation homography (6 matrix-vector multiplies per vertex in the real
  shader; here one 3x3 homography applied to the pixel grid).
- :func:`translational_reproject` -- positional reprojection using the
  rendered depth (the variant ILLIXR added after the paper; §II-A).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.maths.quaternion import quat_to_matrix
from repro.maths.se3 import Pose
from repro.visual.renderer import R_CAM_BODY


def bilinear_sample(image: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Sample ``image`` at float pixel ``coords`` (..., 2) = (u, v).

    Out-of-bounds samples return black -- the visible edge artifact of a
    real timewarp when the pose moved beyond the rendered field of view.
    """
    h, w = image.shape[:2]
    u = coords[..., 0]
    v = coords[..., 1]
    valid = (u >= 0) & (u <= w - 1) & (v >= 0) & (v <= h - 1)
    u0c = np.clip(np.floor(u).astype(int), 0, w - 2)
    v0c = np.clip(np.floor(v).astype(int), 0, h - 2)
    du = (u - u0c)[..., None] if image.ndim == 3 else (u - u0c)
    dv = (v - v0c)[..., None] if image.ndim == 3 else (v - v0c)
    p00 = image[v0c, u0c]
    p01 = image[v0c, u0c + 1]
    p10 = image[v0c + 1, u0c]
    p11 = image[v0c + 1, u0c + 1]
    top = p00 * (1 - du) + p01 * du
    bottom = p10 * (1 - du) + p11 * du
    out = top * (1 - dv) + bottom * dv
    mask = valid if image.ndim == 2 else valid[..., None]
    return np.where(mask, out, 0.0)


def _camera_rotation(pose: Pose) -> np.ndarray:
    """World-from-camera rotation at ``pose``."""
    return quat_to_matrix(pose.orientation) @ R_CAM_BODY.T


def rotational_reproject(
    image: np.ndarray,
    intrinsics: np.ndarray,
    render_pose: Pose,
    display_pose: Pose,
) -> np.ndarray:
    """Warp ``image`` (rendered at ``render_pose``) to ``display_pose``.

    Pure-rotation homography ``H = K R_rel K^-1``; translation between the
    poses is ignored (that is rotational TimeWarp's defining
    approximation).
    """
    k = np.asarray(intrinsics, dtype=float)
    r_render = _camera_rotation(render_pose)
    r_display = _camera_rotation(display_pose)
    r_rel = r_render.T @ r_display  # display-camera dirs -> render-camera dirs
    homography = k @ r_rel @ np.linalg.inv(k)
    h, w = image.shape[:2]
    u, v = np.meshgrid(np.arange(w, dtype=float), np.arange(h, dtype=float))
    pixels = np.stack([u, v, np.ones_like(u)], axis=-1)
    warped = pixels @ homography.T
    z = warped[..., 2]
    behind = z <= 1e-9
    z_safe = np.where(behind, 1.0, z)
    coords = warped[..., :2] / z_safe[..., None]
    coords[behind] = -1e9  # force out-of-bounds -> black
    return bilinear_sample(image, coords)


def translational_reproject(
    image: np.ndarray,
    depth: np.ndarray,
    intrinsics: np.ndarray,
    render_pose: Pose,
    display_pose: Pose,
    iterations: int = 2,
) -> np.ndarray:
    """Positional reprojection: warp with parallax using rendered depth.

    Inverse warping needs display-frame depth, which does not exist; the
    standard trick is fixed-point iteration: start from the rotational
    solution, sample the render-pose depth there, correct the source
    coordinate by the reprojection error, repeat.
    """
    if depth.shape != image.shape[:2]:
        raise ValueError(f"depth {depth.shape} does not match image {image.shape[:2]}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    k = np.asarray(intrinsics, dtype=float)
    k_inv = np.linalg.inv(k)
    r_render = _camera_rotation(render_pose)
    r_display = _camera_rotation(display_pose)
    t_render = render_pose.position
    t_display = display_pose.position

    h, w = image.shape[:2]
    u, v = np.meshgrid(np.arange(w, dtype=float), np.arange(h, dtype=float))
    target = np.stack([u, v], axis=-1)
    pixels_h = np.stack([u, v, np.ones_like(u)], axis=-1)

    # Initial guess: rotation-only source coordinates.
    r_rel = r_render.T @ r_display
    warped = pixels_h @ (k @ r_rel @ k_inv).T
    z0 = np.maximum(warped[..., 2], 1e-9)
    source = warped[..., :2] / z0[..., None]

    for _ in range(iterations):
        z_sample = bilinear_sample(depth, source)
        z_sample = np.where(z_sample > 1e-6, z_sample, 1e6)  # misses = far
        # Reconstruct the world point seen at the current source coords.
        src_h = np.concatenate([source, np.ones_like(z_sample)[..., None]], axis=-1)
        rays_render = src_h @ k_inv.T
        points_world = (rays_render * z_sample[..., None]) @ r_render.T + t_render
        # Project into the display camera.
        cam_display = (points_world - t_display) @ r_display
        z_disp = np.maximum(cam_display[..., 2], 1e-9)
        projected = (cam_display @ k.T)[..., :2] / z_disp[..., None]
        # Correct the source by the projection error.
        source = source + (target - projected)

    return bilinear_sample(image, source)


def reprojection_artifact_mask(
    intrinsics: np.ndarray, shape: Tuple[int, int], render_pose: Pose, display_pose: Pose
) -> np.ndarray:
    """Boolean mask of pixels that fall outside the rendered frame after
    rotational warping (the black-border artifact)."""
    k = np.asarray(intrinsics, dtype=float)
    r_rel = _camera_rotation(render_pose).T @ _camera_rotation(display_pose)
    homography = k @ r_rel @ np.linalg.inv(k)
    h, w = shape
    u, v = np.meshgrid(np.arange(w, dtype=float), np.arange(h, dtype=float))
    pixels = np.stack([u, v, np.ones_like(u)], axis=-1)
    warped = pixels @ homography.T
    z = warped[..., 2]
    coords = warped[..., :2] / np.where(z <= 1e-9, 1.0, z)[..., None]
    outside = (
        (z <= 1e-9)
        | (coords[..., 0] < 0)
        | (coords[..., 0] >= w)
        | (coords[..., 1] < 0)
        | (coords[..., 1] >= h)
    )
    return outside
