"""The four evaluation applications as procedural scenes (§III-C).

The paper's applications were chosen for diversity of rendering
complexity: *Sponza* (high polygon count + global illumination) is the most
graphics-intensive, then *Materials* (PBR spheres), then *Platformer*
(boxy maze with physics), then the sparse *AR Demo* (a few virtual objects
on the real world).  Our stand-ins keep that ordering: each scene is a set
of analytic primitives with per-scene shading richness, and carries the
render-cost profile the timing model uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class Sphere:
    """A shaded sphere primitive."""

    center: np.ndarray
    radius: float
    color: np.ndarray
    specular: float = 0.3
    material_id: int = 0


@dataclass(frozen=True)
class Box:
    """An axis-aligned shaded box primitive."""

    minimum: np.ndarray
    maximum: np.ndarray
    color: np.ndarray
    specular: float = 0.1


@dataclass(frozen=True)
class Scene:
    """One application's world.

    ``render_complexity`` orders the apps by graphics intensity (1.0 =
    Sponza); ``textured_room`` turns on the procedural wall texture
    (AR Demo renders sparse content on black, like optical see-through).
    """

    name: str
    title: str
    spheres: Tuple[Sphere, ...]
    boxes: Tuple[Box, ...]
    textured_room: bool
    room_half_extent: float
    room_height: float
    render_complexity: float
    light_dir: np.ndarray = field(
        default_factory=lambda: np.array([0.4, 0.3, -0.85]) / np.linalg.norm([0.4, 0.3, -0.85])
    )
    animated: bool = False


def _sponza() -> Scene:
    """Atrium-like interior: many columns (boxes) + ornaments (spheres)."""
    rng = np.random.default_rng(42)
    boxes: List[Box] = []
    for x in (-2.4, -0.8, 0.8, 2.4):
        for y in (-2.4, 2.4):
            boxes.append(
                Box(
                    minimum=np.array([x - 0.18, y - 0.18, 0.0]),
                    maximum=np.array([x + 0.18, y + 0.18, 2.6]),
                    color=np.array([0.75, 0.68, 0.55]),
                )
            )
    spheres = tuple(
        Sphere(
            center=np.array([rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(0.4, 2.0)]),
            radius=rng.uniform(0.12, 0.3),
            color=rng.uniform(0.3, 0.9, 3),
            specular=0.5,
            material_id=1,
        )
        for _ in range(8)
    )
    return Scene(
        name="sponza",
        title="Sponza",
        spheres=spheres,
        boxes=tuple(boxes),
        textured_room=True,
        room_half_extent=3.2,
        room_height=3.0,
        render_complexity=1.0,
    )


def _materials() -> Scene:
    """PBR-style material test spheres on a grid."""
    spheres = []
    materials = 0
    for x in (-1.6, -0.8, 0.0, 0.8, 1.6):
        for y in (-1.0, 0.0, 1.0):
            spheres.append(
                Sphere(
                    center=np.array([x, y, 1.2]),
                    radius=0.3,
                    color=np.array(
                        [0.4 + 0.4 * ((materials * 37) % 3) / 2.0,
                         0.3 + 0.5 * ((materials * 17) % 4) / 3.0,
                         0.5 + 0.4 * ((materials * 7) % 5) / 4.0]
                    ),
                    specular=0.2 + 0.6 * (materials % 4) / 3.0,
                    material_id=materials % 4,
                )
            )
            materials += 1
    return Scene(
        name="materials",
        title="Materials",
        spheres=tuple(spheres),
        boxes=(),
        textured_room=True,
        room_half_extent=3.0,
        room_height=2.8,
        render_complexity=0.68,
    )


def _platformer() -> Scene:
    """Maze of platforms (boxes) with a few 'enemy' spheres."""
    boxes = []
    rng = np.random.default_rng(7)
    for i in range(6):
        x, y = rng.uniform(-2.2, 2.2, 2)
        boxes.append(
            Box(
                minimum=np.array([x - 0.5, y - 0.5, 0.0]),
                maximum=np.array([x + 0.5, y + 0.5, rng.uniform(0.3, 1.0)]),
                color=np.array([0.5, 0.55, 0.6]),
            )
        )
    spheres = tuple(
        Sphere(
            center=np.array([rng.uniform(-2, 2), rng.uniform(-2, 2), 0.9]),
            radius=0.18,
            color=np.array([0.85, 0.25, 0.2]),
            specular=0.4,
        )
        for _ in range(3)
    )
    return Scene(
        name="platformer",
        title="Platformer",
        spheres=spheres,
        boxes=tuple(boxes),
        textured_room=True,
        room_half_extent=3.0,
        room_height=2.8,
        render_complexity=0.42,
        animated=True,
    )


def _ar_demo() -> Scene:
    """Sparse AR overlay: a few objects and an animated ball on 'reality'."""
    spheres = (
        Sphere(center=np.array([1.2, 0.0, 1.2]), radius=0.2, color=np.array([0.2, 0.7, 0.9]), specular=0.6),
        Sphere(center=np.array([0.8, 0.9, 1.0]), radius=0.12, color=np.array([0.9, 0.8, 0.2]), specular=0.6),
    )
    boxes = (
        Box(minimum=np.array([0.4, -0.8, 0.6]), maximum=np.array([0.8, -0.4, 1.0]), color=np.array([0.3, 0.8, 0.4])),
    )
    return Scene(
        name="ar_demo",
        title="AR Demo",
        spheres=spheres,
        boxes=boxes,
        textured_room=False,   # see-through: virtual content on black
        room_half_extent=3.5,
        room_height=3.0,
        render_complexity=0.18,
        animated=True,
    )


APPLICATIONS: Dict[str, Scene] = {
    scene.name: scene for scene in (_sponza(), _materials(), _platformer(), _ar_demo())
}

APPLICATION_ORDER = ("sponza", "materials", "platformer", "ar_demo")


def scene_by_name(name: str) -> Scene:
    """Look up an application scene by its key."""
    try:
        return APPLICATIONS[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; options: {sorted(APPLICATIONS)}") from None
