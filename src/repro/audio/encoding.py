"""The audio-encoding component: mono sources -> HOA soundfield.

Task accounting mirrors Table VII's audio-encoding rows:

- ``normalization``: INT16 -> FP32 element-wise division;
- ``encoding``: sample-to-soundfield mapping ``Y[j][i] = D x X[j]``;
- ``summation``: channel-wise accumulation across sources.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Protocol

import numpy as np

from repro.audio.ambisonics import ambisonic_channels, encode_block


class MonoSource(Protocol):
    """Anything producing int16 blocks at a fixed position."""

    position: np.ndarray

    def block(self, n: int) -> np.ndarray:
        """Next ``n`` int16 samples."""
        ...


@dataclass
class AudioEncoder:
    """Encodes a set of positioned mono sources into one HOA soundfield."""

    sources: List[MonoSource]
    order: int = 3
    block_size: int = 1024

    def __post_init__(self) -> None:
        if not self.sources:
            raise ValueError("need at least one source")
        if not 256 <= self.block_size <= 2048:
            raise ValueError(f"block size out of range: {self.block_size}")
        self.task_times: Dict[str, float] = defaultdict(float)

    @property
    def channels(self) -> int:
        """Number of HOA channels produced."""
        return ambisonic_channels(self.order)

    def encode_next_block(self, listener_position: np.ndarray | None = None) -> np.ndarray:
        """Produce the next (channels, block_size) soundfield block.

        Source directions are taken relative to ``listener_position``
        (default: origin); rotation by head orientation happens in
        playback, as in a real ambisonic pipeline.
        """
        listener = (
            np.zeros(3) if listener_position is None else np.asarray(listener_position, dtype=float)
        )
        soundfield = np.zeros((self.channels, self.block_size))
        for source in self.sources:
            raw = source.block(self.block_size)

            t0 = time.perf_counter()
            normalized = raw.astype(np.float32) / 32768.0
            self.task_times["normalization"] += time.perf_counter() - t0

            direction = np.asarray(source.position, dtype=float) - listener
            if np.linalg.norm(direction) < 1e-9:
                direction = np.array([1.0, 0.0, 0.0])

            t0 = time.perf_counter()
            encoded = encode_block(normalized, direction, self.order)
            self.task_times["encoding"] += time.perf_counter() - t0

            t0 = time.perf_counter()
            soundfield += encoded
            self.task_times["summation"] += time.perf_counter() - t0
        return soundfield

    def task_breakdown(self) -> Dict[str, float]:
        """Accumulated seconds per Table VII task."""
        return {k: self.task_times.get(k, 0.0) for k in ("normalization", "encoding", "summation")}
