"""Real spherical harmonics and higher-order ambisonic (HOA) encoding.

Channels follow the ACN ordering with N3D normalization, the convention of
libspatialaudio (the paper's audio implementation [41]).  Directions are
unit vectors in the head frame (x forward, y left, z up).

Encoding a mono source ``s`` from direction ``d`` produces the soundfield
``B[c, t] = Y_c(d) * s[t]`` -- the ``Y[j][i] = D x X[j]`` mapping of Table
VII's *encoding* row; multiple sources sum channel-wise (*summation*).
"""

from __future__ import annotations

import numpy as np


def ambisonic_channels(order: int) -> int:
    """Number of HOA channels for a given order: (order + 1)^2."""
    if order < 0:
        raise ValueError(f"order must be >= 0: {order}")
    return (order + 1) ** 2


def real_sh_matrix(order: int, directions: np.ndarray) -> np.ndarray:
    """Real SH values Y (N3D, ACN order) for unit ``directions`` (N, 3).

    Supports orders 0-3 (16 channels), the range used by HOA audio.
    Returns shape (N, (order+1)^2).
    """
    if not 0 <= order <= 3:
        raise ValueError(f"order must be in [0, 3]: {order}")
    d = np.atleast_2d(np.asarray(directions, dtype=float))
    norms = np.linalg.norm(d, axis=1)
    if np.any(norms < 1e-12):
        raise ValueError("directions must be nonzero")
    d = d / norms[:, None]
    x, y, z = d[:, 0], d[:, 1], d[:, 2]
    cols = [np.ones_like(x)]  # ACN 0: Y_0^0
    if order >= 1:
        s3 = np.sqrt(3.0)
        cols += [s3 * y, s3 * z, s3 * x]  # ACN 1..3
    if order >= 2:
        s15 = np.sqrt(15.0)
        s5 = np.sqrt(5.0)
        cols += [
            s15 * x * y,                     # ACN 4
            s15 * y * z,                     # ACN 5
            s5 / 2.0 * (3 * z * z - 1.0),    # ACN 6
            s15 * x * z,                     # ACN 7
            s15 / 2.0 * (x * x - y * y),     # ACN 8
        ]
    if order >= 3:
        s35_8 = np.sqrt(35.0 / 8.0)
        s105 = np.sqrt(105.0)
        s21_8 = np.sqrt(21.0 / 8.0)
        s7 = np.sqrt(7.0)
        cols += [
            s35_8 * y * (3 * x * x - y * y),     # ACN 9
            s105 * x * y * z,                    # ACN 10
            s21_8 * y * (5 * z * z - 1.0),       # ACN 11
            s7 / 2.0 * z * (5 * z * z - 3.0),    # ACN 12
            s21_8 * x * (5 * z * z - 1.0),       # ACN 13
            s105 / 2.0 * z * (x * x - y * y),    # ACN 14
            s35_8 * x * (x * x - 3 * y * y),     # ACN 15
        ]
    return np.stack(cols, axis=1)


def encode_block(signal: np.ndarray, direction: np.ndarray, order: int) -> np.ndarray:
    """Encode one mono block from one direction into HOA channels.

    Returns shape (channels, len(signal)).
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ValueError("signal must be mono (1-D)")
    gains = real_sh_matrix(order, np.asarray(direction, dtype=float))[0]
    return np.outer(gains, signal)


def decode_matrix(order: int, speaker_directions: np.ndarray) -> np.ndarray:
    """Pseudoinverse (mode-matching) decoder to a virtual speaker layout.

    Returns shape (n_speakers, channels): speaker signals = D @ soundfield.
    """
    y = real_sh_matrix(order, speaker_directions)  # (S, C)
    return np.linalg.pinv(y.T)


def fibonacci_directions(count: int) -> np.ndarray:
    """A near-uniform spherical point set (virtual speaker layout)."""
    if count < 4:
        raise ValueError(f"need at least 4 directions: {count}")
    indices = np.arange(count) + 0.5
    phi = np.arccos(1 - 2 * indices / count)
    theta = np.pi * (1 + 5**0.5) * indices
    return np.stack(
        [np.cos(theta) * np.sin(phi), np.sin(theta) * np.sin(phi), np.cos(phi)], axis=1
    )
