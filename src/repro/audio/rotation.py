"""Exact spherical-harmonic rotation matrices.

Rotating a soundfield by the listener's head orientation is the *rotation*
task of Table VII's audio playback.  Real SH of degree ``l`` span a
(2l+1)-dimensional rotation-invariant subspace, so the rotation operator is
block diagonal.  Each block is recovered exactly by projection: evaluate
the SH basis on a fixed, well-conditioned direction set ``D`` and solve

    R_l @ Y_l(D)^T = Y_l(rot(D))^T

in the least-squares sense -- exact (to machine precision) because both
sides live in the same (2l+1)-dimensional space.
"""

from __future__ import annotations

import numpy as np

from repro.audio.ambisonics import ambisonic_channels, fibonacci_directions, real_sh_matrix

# A fixed sample set, comfortably over-determined for order 3.
_SAMPLE_DIRECTIONS = fibonacci_directions(48)


def sh_rotation_matrix(order: int, rotation: np.ndarray) -> np.ndarray:
    """Block-diagonal SH rotation matrix for a 3x3 rotation.

    Applying the returned (C, C) matrix to an ACN/N3D soundfield rotates
    the encoded scene by ``rotation`` (world-frame rotation of sources).
    """
    rotation = np.asarray(rotation, dtype=float)
    if rotation.shape != (3, 3):
        raise ValueError(f"expected a 3x3 rotation, got {rotation.shape}")
    channels = ambisonic_channels(order)
    result = np.zeros((channels, channels))
    result[0, 0] = 1.0
    y_all = real_sh_matrix(order, _SAMPLE_DIRECTIONS)
    y_rot_all = real_sh_matrix(order, _SAMPLE_DIRECTIONS @ rotation.T)
    for degree in range(1, order + 1):
        start = degree * degree
        stop = (degree + 1) ** 2
        y = y_all[:, start:stop]         # (N, 2l+1)
        y_rot = y_rot_all[:, start:stop]
        # Solve R_l from Y_rot = Y @ R_l^T  (rows are directions).
        block_t, _res, _rank, _sv = np.linalg.lstsq(y, y_rot, rcond=None)
        result[start:stop, start:stop] = block_t.T
    return result


def rotate_soundfield(soundfield: np.ndarray, order: int, rotation: np.ndarray) -> np.ndarray:
    """Rotate a (channels, samples) soundfield block by a 3x3 rotation."""
    matrix = sh_rotation_matrix(order, rotation)
    if soundfield.shape[0] != matrix.shape[0]:
        raise ValueError(
            f"soundfield has {soundfield.shape[0]} channels, expected {matrix.shape[0]}"
        )
    return matrix @ soundfield


def zoom_soundfield(soundfield: np.ndarray, strength: float) -> np.ndarray:
    """First-order acoustic zoom along +x (the look direction).

    The classic Lund/Zotter dominance operator mixes W (ACN 0) and X
    (ACN 3): sources ahead are emphasized, sources behind attenuated.
    ``strength`` in [-1, 1]; 0 is identity.
    """
    if not -1.0 <= strength <= 1.0:
        raise ValueError(f"zoom strength out of [-1, 1]: {strength}")
    if soundfield.shape[0] < 4:
        raise ValueError("zoom needs at least first-order content (4 channels)")
    out = soundfield.copy()
    w = soundfield[0]
    x = soundfield[3]
    # N3D first-order dominance (unit gain at strength 0).
    s = strength
    out[0] = w + s / np.sqrt(3.0) * x
    out[3] = x + s * np.sqrt(3.0) * w
    norm = 1.0 / np.sqrt(1.0 + s * s)
    out[0] *= norm
    out[3] *= norm
    return out
