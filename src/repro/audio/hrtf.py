"""Synthetic head-related transfer functions and binaural decoding.

A measured HRTF set (e.g. the libspatialaudio HRTFs) is replaced by a
spherical-head model with the two dominant localization cues:

- **interaural time difference** (Woodworth's formula for a rigid sphere);
- **head shadow**: a one-pole low-pass whose cutoff falls as the source
  moves contralateral.

Binauralization decodes the HOA soundfield to a virtual speaker layout and
convolves each speaker feed with its two ear responses in the frequency
domain (the FFT -> multiply -> IFFT *binauralization* task of Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.audio.ambisonics import decode_matrix, fibonacci_directions

SPEED_OF_SOUND = 343.0  # m/s
HEAD_RADIUS = 0.0875    # m

# Ear axis: +y is the left ear in the head frame (x fwd, y left, z up).
_LEFT = np.array([0.0, 1.0, 0.0])
_RIGHT = np.array([0.0, -1.0, 0.0])


def interaural_delay(direction: np.ndarray, ear_axis: np.ndarray) -> float:
    """Woodworth ITD (seconds) of a plane wave from ``direction``."""
    direction = np.asarray(direction, dtype=float)
    direction = direction / max(np.linalg.norm(direction), 1e-12)
    cos_angle = float(np.clip(direction @ ear_axis, -1.0, 1.0))
    angle = np.arccos(cos_angle)  # 0 = straight at this ear
    if angle <= np.pi / 2:
        # Ipsilateral: direct path shortening.
        return -HEAD_RADIUS / SPEED_OF_SOUND * np.cos(angle)
    # Contralateral: creeping wave around the sphere.
    return HEAD_RADIUS / SPEED_OF_SOUND * (angle - np.pi / 2 - np.cos(angle))


def head_shadow_gain(direction: np.ndarray, ear_axis: np.ndarray, freqs: np.ndarray) -> np.ndarray:
    """Frequency-dependent magnitude of the head-shadow filter."""
    direction = np.asarray(direction, dtype=float)
    direction = direction / max(np.linalg.norm(direction), 1e-12)
    cos_angle = float(np.clip(direction @ ear_axis, -1.0, 1.0))
    # Cutoff from ~1.2 kHz (fully shadowed) to ~20 kHz (ipsilateral).
    shadow = 0.5 * (1.0 - cos_angle)  # 0 ipsi, 1 contra
    cutoff = 20000.0 * (1.0 - shadow) + 1200.0 * shadow
    gain = 1.0 / np.sqrt(1.0 + (freqs / cutoff) ** 2)
    # Broadband ILD on top of spectral shaping.
    return gain * (1.0 - 0.35 * shadow)


@dataclass
class HrtfSet:
    """Frequency-domain ear responses for a virtual speaker layout."""

    sample_rate_hz: int = 48000
    n_speakers: int = 16
    fft_size: int = 2048
    order: int = 3
    speaker_directions: np.ndarray = field(init=False)
    responses: np.ndarray = field(init=False)  # (speakers, 2 ears, bins)

    def __post_init__(self) -> None:
        if self.fft_size & (self.fft_size - 1):
            raise ValueError("fft_size must be a power of two")
        self.speaker_directions = fibonacci_directions(self.n_speakers)
        freqs = np.fft.rfftfreq(self.fft_size, d=1.0 / self.sample_rate_hz)
        responses = np.empty((self.n_speakers, 2, len(freqs)), dtype=complex)
        for s, direction in enumerate(self.speaker_directions):
            for e, ear_axis in enumerate((_LEFT, _RIGHT)):
                delay = interaural_delay(direction, ear_axis) + HEAD_RADIUS / SPEED_OF_SOUND
                gain = head_shadow_gain(direction, ear_axis, freqs)
                responses[s, e] = gain * np.exp(-2j * np.pi * freqs * delay)
        self.responses = responses
        self._decoder = decode_matrix(self.order, self.speaker_directions)

    def binauralize_block(
        self, soundfield: np.ndarray, tail: np.ndarray | None = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Render one (channels, block) soundfield block to stereo.

        Uses overlap-add: returns (stereo_block (2, block), new_tail) where
        ``tail`` carries the convolution overflow into the next block.
        """
        channels, block = soundfield.shape
        if channels != (self.order + 1) ** 2:
            raise ValueError(f"expected {(self.order + 1) ** 2} channels, got {channels}")
        if block > self.fft_size // 2:
            raise ValueError(f"block {block} too large for fft_size {self.fft_size}")
        speakers = self._decoder @ soundfield  # (S, block)
        spectra = np.fft.rfft(speakers, n=self.fft_size, axis=1)  # (S, bins)
        ears = np.einsum("sb,seb->eb", spectra, self.responses)   # (2, bins)
        rendered = np.fft.irfft(ears, n=self.fft_size, axis=1)    # (2, fft)
        out = rendered[:, :block].copy()
        if tail is not None:
            if tail.shape[0] != 2:
                raise ValueError("tail must be stereo")
            n = min(tail.shape[1], block)
            out[:, :n] += tail[:, :n]
        new_tail = rendered[:, block:].copy()
        if tail is not None and tail.shape[1] > block:
            carry = tail[:, block:]
            new_tail[:, : carry.shape[1]] += carry
        return out, new_tail
