"""The audio-playback component: HOA soundfield -> binaural stereo.

Task accounting mirrors Table VII's audio-playback rows:

- ``psychoacoustic_filter``: frequency-domain optimization filter
  (FFT -> weighting -> IFFT);
- ``rotation``: rotate the soundfield by the listener's head orientation;
- ``zoom``: acoustic zoom along the look direction;
- ``binauralization``: HRTF rendering to two ears (the dominant cost).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.audio.hrtf import HrtfSet
from repro.audio.rotation import rotate_soundfield, zoom_soundfield
from repro.maths.quaternion import quat_to_matrix
from repro.maths.se3 import Pose


@dataclass
class AudioPlayback:
    """Stateful block renderer (keeps overlap-add tails across blocks)."""

    order: int = 3
    block_size: int = 1024
    sample_rate_hz: int = 48000
    zoom_strength: float = 0.3
    hrtf: Optional[HrtfSet] = None
    _tail: Optional[np.ndarray] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if not 256 <= self.block_size <= 2048:
            raise ValueError(f"block size out of range: {self.block_size}")
        if self.hrtf is None:
            self.hrtf = HrtfSet(
                sample_rate_hz=self.sample_rate_hz,
                order=self.order,
                fft_size=max(2048, 2 * self.block_size),
            )
        self.task_times: Dict[str, float] = defaultdict(float)
        self._filter_gain = self._build_psychoacoustic_filter()

    def _build_psychoacoustic_filter(self) -> np.ndarray:
        """Loudness-contour-ish weighting applied in the frequency domain."""
        freqs = np.fft.rfftfreq(self.block_size, d=1.0 / self.sample_rate_hz)
        f = np.maximum(freqs, 20.0)
        # Gentle bass roll-off + presence boost around 3 kHz.
        gain = (f / (f + 80.0)) * (1.0 + 0.4 * np.exp(-((np.log(f / 3000.0)) ** 2)))
        return gain

    def render_block(self, soundfield: np.ndarray, head_pose: Pose) -> np.ndarray:
        """Render one (channels, block) soundfield block to stereo (2, block)."""
        expected = (self.order + 1) ** 2
        if soundfield.shape != (expected, self.block_size):
            raise ValueError(
                f"soundfield shape {soundfield.shape} != ({expected}, {self.block_size})"
            )

        t0 = time.perf_counter()
        spectra = np.fft.rfft(soundfield, axis=1)
        spectra *= self._filter_gain[None, :]
        filtered = np.fft.irfft(spectra, n=self.block_size, axis=1)
        self.task_times["psychoacoustic_filter"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        # World -> head: rotate sources by the inverse head rotation.
        rotation = quat_to_matrix(head_pose.orientation).T
        rotated = rotate_soundfield(filtered, self.order, rotation)
        self.task_times["rotation"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        zoomed = zoom_soundfield(rotated, self.zoom_strength)
        self.task_times["zoom"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        stereo, self._tail = self.hrtf.binauralize_block(zoomed, self._tail)
        self.task_times["binauralization"] += time.perf_counter() - t0
        return stereo

    def task_breakdown(self) -> Dict[str, float]:
        """Accumulated seconds per Table VII task."""
        names = ("psychoacoustic_filter", "rotation", "zoom", "binauralization")
        return {k: self.task_times.get(k, 0.0) for k in names}
