"""Audio pipeline: spatial (ambisonic) audio.

- :mod:`repro.audio.ambisonics` -- real spherical harmonics (ACN/N3D,
  order 3) and higher-order ambisonic (HOA) encoding;
- :mod:`repro.audio.rotation` -- exact per-degree SH rotation matrices
  (soundfield rotation by head pose);
- :mod:`repro.audio.hrtf` -- a synthetic head-related transfer function set
  (interaural time delay + head shadow) and binaural decoding;
- :mod:`repro.audio.encoding` -- the audio-encoding component
  (normalization, encoding, summation -- Table VII);
- :mod:`repro.audio.playback` -- the audio-playback component
  (psychoacoustic filter, rotation, zoom, binauralization -- Table VII);
- :mod:`repro.audio.sources` -- deterministic synthetic audio clips
  (the Freesound stand-ins).
"""

from repro.audio.ambisonics import ambisonic_channels, encode_block, real_sh_matrix
from repro.audio.encoding import AudioEncoder
from repro.audio.playback import AudioPlayback
from repro.audio.rotation import sh_rotation_matrix

__all__ = [
    "AudioEncoder",
    "AudioPlayback",
    "ambisonic_channels",
    "encode_block",
    "real_sh_matrix",
    "sh_rotation_matrix",
]
