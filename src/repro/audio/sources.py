"""Deterministic synthetic audio clips (the Freesound stand-ins).

The paper plays two 48 kHz clips -- a science-teacher lecture and a radio
recording [69], [70].  These generators synthesize speech-like and
music-like signals with the same roles: deterministic, band-limited, and
int16-quantized like real recordings (so the encoder's *normalization*
task has real work to do).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SpeechLikeSource:
    """Amplitude-modulated filtered noise with formant-like resonances."""

    sample_rate_hz: int = 48000
    seed: int = 0
    position: np.ndarray = field(default_factory=lambda: np.array([2.0, 1.0, 1.6]))

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._phase = 0
        self._lp_state = 0.0

    def block(self, n: int) -> np.ndarray:
        """Next ``n`` samples as int16 (like a WAV file read)."""
        t = (self._phase + np.arange(n)) / self.sample_rate_hz
        self._phase += n
        # Syllable-rate envelope (~4 Hz) with pauses.
        envelope = np.clip(np.sin(2 * np.pi * 3.7 * t) + 0.3, 0.0, 1.3)
        noise = self._rng.normal(0.0, 1.0, n)
        # Two formant-ish tones over the noise bed.
        voiced = 0.5 * np.sin(2 * np.pi * 220 * t) + 0.3 * np.sin(2 * np.pi * 540 * t + 1.0)
        raw = envelope * (0.5 * noise * 0.3 + voiced)
        # One-pole low-pass for a speech-like spectrum.
        out = np.empty(n)
        state = self._lp_state
        alpha = 0.25
        for i in range(n):
            state = state + alpha * (raw[i] - state)
            out[i] = state
        self._lp_state = state
        return np.clip(out * 20000, -32768, 32767).astype(np.int16)


@dataclass
class MusicLikeSource:
    """Chord arpeggios with a beat -- the radio-recording stand-in."""

    sample_rate_hz: int = 48000
    seed: int = 1
    position: np.ndarray = field(default_factory=lambda: np.array([-1.5, -2.0, 1.2]))

    def __post_init__(self) -> None:
        self._phase = 0
        self._notes = np.array([261.63, 329.63, 392.0, 523.25])  # C major

    def block(self, n: int) -> np.ndarray:
        """Next ``n`` samples as int16."""
        t = (self._phase + np.arange(n)) / self.sample_rate_hz
        self._phase += n
        note_index = (t * 4).astype(int) % len(self._notes)
        freq = self._notes[note_index]
        melody = np.sin(2 * np.pi * freq * t)
        beat = (np.sin(2 * np.pi * 2.0 * t) > 0.7).astype(float)
        kick = beat * np.sin(2 * np.pi * 60 * t) * np.exp(-((t * 4) % 1) * 8)
        raw = 0.6 * melody + 0.6 * kick
        return np.clip(raw * 18000, -32768, 32767).astype(np.int16)
