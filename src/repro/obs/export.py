"""Chrome trace-event export: dump a traced run for Perfetto.

:func:`chrome_trace` renders a :class:`~repro.obs.tracer.Tracer`'s spans
into the Trace Event Format consumed by ``chrome://tracing`` and
https://ui.perfetto.dev (JSON object form, ``traceEvents`` array):

- one *thread track* per span track (plugin name / supervisor lane),
  named via ``M``-phase metadata events;
- every finished span with duration becomes an ``X`` (complete) event;
  ``mark`` spans become ``i`` (instant) events;
- causal lineage becomes flow arrows (``s``/``f`` pairs): one arrow per
  parent->child trigger edge that crosses tracks, and one per
  asynchronous-read :class:`~repro.obs.tracer.SpanLink`, so a displayed
  frame visually chains back to the IMU sample that produced its pose.

Timestamps are microseconds of *simulated* time.  :func:`validate_chrome_trace`
checks the structural rules the viewers rely on and is used by the CI
gate and the test suite.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.tracer import Span, Tracer

_PID = 1


def _us(t: float) -> float:
    return t * 1e6


def chrome_trace(tracer: Tracer, metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Render all finished spans as a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = []
    tracks = sorted({span.track for span in tracer.spans})
    tids = {track: i + 1 for i, track in enumerate(tracks)}

    events.append(
        {"ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
         "args": {"name": "repro (simulated time)"}}
    )
    for track, tid in tids.items():
        events.append(
            {"ph": "M", "name": "thread_name", "pid": _PID, "tid": tid,
             "args": {"name": track}}
        )
        events.append(
            {"ph": "M", "name": "thread_sort_index", "pid": _PID, "tid": tid,
             "args": {"sort_index": tid}}
        )

    for span in tracer.spans:
        if span.end is None:
            continue
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            **{k: _jsonable(v) for k, v in span.attributes.items()},
        }
        tid = tids[span.track]
        if span.kind == "mark":
            events.append(
                {"ph": "i", "name": span.name, "cat": span.kind, "s": "t",
                 "ts": _us(span.start), "pid": _PID, "tid": tid, "args": args}
            )
        else:
            events.append(
                {"ph": "X", "name": span.name, "cat": span.kind,
                 "ts": _us(span.start), "dur": _us(span.end - span.start),
                 "pid": _PID, "tid": tid, "args": args}
            )

    events.extend(_flow_events(tracer, tids))

    payload: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", **(metadata or {})},
    }
    return payload


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _flow_events(tracer: Tracer, tids: Dict[str, int]) -> List[Dict[str, Any]]:
    """Flow arrows for trigger edges and async-read links.

    Arrow identity: one id per (producer span, consumer span) pair.  The
    ``s`` step is emitted at the producer's end (the publish moment for
    trigger edges; the linked event's publish time for reads) and the
    ``f`` step at the consumer's start, with ``bp: "e"`` so the arrow
    binds to the enclosing slice.
    """
    flows: List[Dict[str, Any]] = []
    next_id = 1

    def arrow(producer: Span, consumer: Span, at_producer: float, cat: str) -> None:
        nonlocal next_id
        start_ts = _us(min(at_producer, producer.end if producer.end is not None else at_producer))
        end_ts = _us(consumer.start)
        if end_ts < start_ts:
            start_ts = end_ts
        flows.append(
            {"ph": "s", "id": next_id, "name": "lineage", "cat": cat,
             "ts": start_ts, "pid": _PID, "tid": tids[producer.track]}
        )
        flows.append(
            {"ph": "f", "bp": "e", "id": next_id, "name": "lineage", "cat": cat,
             "ts": end_ts, "pid": _PID, "tid": tids[consumer.track]}
        )
        next_id += 1

    for span in tracer.spans:
        if span.end is None or span.kind != "invocation":
            continue
        if span.parent_id is not None:
            parent = tracer.get(span.parent_id)
            if parent is not None and parent.end is not None and parent.track != span.track:
                at = span.attributes.get("trigger_publish_time", parent.end)
                arrow(parent, span, float(at), "trigger")
        for link in span.links:
            if link.context is None:
                continue
            producer = tracer.get(link.context.span_id)
            if producer is not None and producer.end is not None:
                arrow(producer, span, link.publish_time, "read")
    return flows


def save_chrome_trace(tracer: Tracer, path: str, metadata: Optional[Dict[str, Any]] = None) -> None:
    """Write :func:`chrome_trace` output to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, metadata), handle)


def validate_chrome_trace(payload: Any) -> List[str]:
    """Structural validation of a trace-event JSON object.

    Returns a list of problems (empty means the trace is loadable by
    Perfetto / chrome://tracing).  Checks the rules the viewers actually
    enforce: required per-phase fields, non-negative timestamps and
    durations, and that every flow ``s`` step has a matching ``f`` step.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    flow_starts: Dict[Any, int] = {}
    flow_ends: Dict[Any, int] = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in {"X", "B", "E", "i", "I", "M", "s", "t", "f", "C"}:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur, got {dur!r}")
        if ph in {"s", "t", "f"}:
            if "id" not in event:
                problems.append(f"{where}: flow event missing id")
            elif ph == "s":
                flow_starts[event["id"]] = flow_starts.get(event["id"], 0) + 1
            elif ph == "f":
                flow_ends[event["id"]] = flow_ends.get(event["id"], 0) + 1
    for flow_id, n in flow_starts.items():
        if flow_ends.get(flow_id, 0) != n:
            problems.append(f"flow id {flow_id!r}: {n} start(s), {flow_ends.get(flow_id, 0)} finish(es)")
    for flow_id in flow_ends:
        if flow_id not in flow_starts:
            problems.append(f"flow id {flow_id!r}: finish without start")
    return problems
