"""Trace-context identity: what gets stamped onto switchboard events.

A :class:`TraceContext` names one span inside one trace.  The runtime
stamps the *publishing* invocation's context onto every
:class:`~repro.core.switchboard.StampedEvent` at ``put`` time, so any
consumer -- synchronous (trigger) or asynchronous (``get_latest``) --
can attach itself to the producer's lineage.  Identifiers are small
integers allocated by a per-run :class:`~repro.obs.tracer.Tracer`
counter: the simulation is deterministic and single-process, so random
128-bit ids would only make traces harder to diff across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TraceContext:
    """Coordinates of one span: which trace it belongs to and who made it.

    ``trace_id`` groups every span descended from one root cause (one
    sensor sample, typically); ``span_id`` is unique across the run;
    ``parent_id`` is the creating span, or None for a trace root.
    """

    trace_id: int
    span_id: int
    parent_id: Optional[int] = None

    def child_of(self) -> "TraceContext":
        """The context a child span created under this one should carry
        (same trace, this span as parent; the child's own id is assigned
        by the tracer)."""
        return TraceContext(self.trace_id, -1, self.span_id)
