"""A small labeled-series metrics registry (counters, gauges, histograms).

The naming conventions follow the Prometheus style the ROADMAP's
production north-star implies: ``subsystem_quantity_unit`` snake_case
names (``scheduler_deadline_misses_total``, ``mtp_seconds``), with
low-cardinality labels (plugin and topic names -- never timestamps or
ids).  Histograms use *fixed* bucket boundaries chosen at registration,
so observation is O(#buckets) worst-case and O(log #buckets) in
practice, and online percentile estimates never require retaining the
raw samples.

Everything is plain Python with no background machinery: metrics are
updated inline by the observability hooks and read once at the end of a
run via :meth:`MetricsRegistry.snapshot`.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key) if key else ""


class Counter:
    """A monotonically increasing count, per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._series.values())

    def series(self) -> Dict[str, float]:
        return {_label_str(k): v for k, v in sorted(self._series.items())}


class Gauge:
    """A point-in-time value, per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, float] = {}
        self._max: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        self._series[key] = value
        previous = self._max.get(key)
        if previous is None or value > previous:
            self._max[key] = value

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def high_water(self, **labels: object) -> float:
        """The maximum value ever set (queue-depth style gauges care)."""
        return self._max.get(_label_key(labels), 0.0)

    def series(self) -> Dict[str, float]:
        return {_label_str(k): v for k, v in sorted(self._series.items())}

    def high_water_series(self) -> Dict[str, float]:
        return {_label_str(k): v for k, v in sorted(self._max.items())}


class _HistogramSeries:
    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


class Histogram:
    """A fixed-bucket histogram with online quantile estimation.

    ``buckets`` are inclusive upper bounds, strictly increasing; values
    above the last bound land in an overflow bucket.  Quantiles are
    estimated by linear interpolation inside the containing bucket (the
    standard Prometheus ``histogram_quantile`` scheme), with the exact
    observed min/max used to tighten the first and last buckets.
    """

    def __init__(self, name: str, buckets: Sequence[float], help: str = "") -> None:
        bounds = list(buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def _get(self, labels: Mapping[str, object]) -> _HistogramSeries:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        return series

    def observe(self, value: float, **labels: object) -> None:
        series = self._get(labels)
        series.counts[bisect_left(self.buckets, value)] += 1
        series.count += 1
        series.sum += value
        if value < series.min:
            series.min = value
        if value > series.max:
            series.max = value

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def mean(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum / series.count if series and series.count else math.nan

    def quantile(self, q: float, **labels: object) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) for one label set."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return math.nan
        rank = q * series.count
        cumulative = 0
        for i, bucket_count in enumerate(series.counts):
            if bucket_count == 0:
                continue
            lo = self.buckets[i - 1] if i > 0 else min(series.min, self.buckets[0])
            hi = self.buckets[i] if i < len(self.buckets) else series.max
            lo = max(lo, series.min)
            hi = min(hi, series.max)
            if hi < lo:
                lo = hi
            if cumulative + bucket_count >= rank:
                inside = max(rank - cumulative, 0.0)
                return lo + (hi - lo) * (inside / bucket_count)
            cumulative += bucket_count
        return series.max

    def snapshot_series(self) -> Dict[str, Dict[str, object]]:
        out: Dict[str, Dict[str, object]] = {}
        for key, series in sorted(self._series.items()):
            entry: Dict[str, object] = {
                "count": series.count,
                "sum": series.sum,
            }
            if series.count:
                entry.update(
                    min=series.min,
                    max=series.max,
                    mean=series.sum / series.count,
                    p50=self.quantile(0.50, **dict(key)),
                    p95=self.quantile(0.95, **dict(key)),
                    p99=self.quantile(0.99, **dict(key)),
                )
            out[_label_str(key)] = entry
        return out


class MetricsRegistry:
    """Name -> metric, with get-or-create registration."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name)
            metric = self._counters[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name)
            metric = self._gauges[name] = Gauge(name, help)
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, help: str = ""
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            if buckets is None:
                raise ValueError(f"first registration of histogram {name!r} needs buckets")
            self._check_free(name)
            metric = self._histograms[name] = Histogram(name, buckets, help)
        return metric

    def _check_free(self, name: str) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if name in table:
                raise ValueError(f"metric {name!r} already registered with another type")

    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> Dict[str, object]:
        """One JSON-serializable dump of every series."""
        return {
            "counters": {n: c.series() for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"last": g.series(), "high_water": g.high_water_series()}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: h.snapshot_series() for n, h in sorted(self._histograms.items())
            },
        }
