"""Critical-path MTP attribution from span trees alone.

The paper's §III-E computes motion-to-photon latency *online* inside the
reprojection component.  With causal tracing the same number -- and its
decomposition -- is recoverable offline from the trace: for every
displayed frame (a finished ``timewarp`` invocation span that reached a
vsync), walk

    timewarp span --async-read link--> fast_pose event
                  --producer span----> integrator invocation
                  --trigger parent---> imu invocation (the sensor root)

and decompose

    mtp = t_imu_age + t_reprojection + t_swap

with ``t_imu_age`` the age of the linked pose's IMU sample when warp
work began, ``t_reprojection`` the invocation span's own duration, and
``t_swap`` the wait from completion to the vsync.  Per-frame values
match :mod:`repro.metrics.mtp` to float precision (the test suite pins
1e-6 s), which is the point: Table IV is reproducible from traces alone,
and unlike the online metric each frame also *names* its slowest edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.tracer import Span, SpanLink, Tracer

SEGMENTS = ("imu_age", "reprojection", "swap")


@dataclass(frozen=True)
class FrameCriticalPath:
    """One displayed frame's latency decomposition, derived from spans."""

    frame_time: float            # vsync the frame was released at
    trace_id: int
    span_id: int
    imu_age: float
    reprojection: float
    swap: float
    slowest: str                 # the segment that dominates this frame
    imu_time: Optional[float]    # originating IMU sample timestamp
    linked_to_imu: bool          # lineage walk reached the imu track

    @property
    def total(self) -> float:
        return self.imu_age + self.reprojection + self.swap

    @property
    def total_ms(self) -> float:
        return self.total * 1e3


def _pose_link(span: Span, pose_topic: str) -> Optional[SpanLink]:
    """The *freshest* pose read of the invocation (the one warp used)."""
    links = [l for l in span.links if l.topic == pose_topic]
    if not links:
        return None
    return max(links, key=lambda l: (l.publish_time, l.sequence))


def _reaches_track(tracer: Tracer, link: SpanLink, track: str) -> bool:
    """Does the link's producer chain include a span on ``track``?"""
    if link.context is None:
        return False
    producer = tracer.get(link.context.span_id)
    if producer is None:
        return False
    if producer.track == track:
        return True
    return any(s.track == track for s in tracer.ancestry(producer))


def critical_paths(
    tracer: Tracer,
    timewarp_track: str = "timewarp",
    pose_topic: str = "fast_pose",
    imu_track: str = "imu",
) -> List[FrameCriticalPath]:
    """Decompose every displayed frame in the trace."""
    frames: List[FrameCriticalPath] = []
    for span in tracer.spans:
        if span.kind != "invocation" or span.track != timewarp_track:
            continue
        if span.end is None or "swap_time" not in span.attributes:
            continue
        if span.attributes.get("killed") or span.attributes.get("skipped"):
            continue
        link = _pose_link(span, pose_topic)
        iteration_at = float(span.attributes.get("iteration_at", span.start))
        if link is not None:
            imu_age = max(iteration_at - link.effective_data_time, 0.0)
            imu_time: Optional[float] = link.effective_data_time
            linked = _reaches_track(tracer, link, imu_track)
        else:
            imu_age, imu_time, linked = 0.0, None, False
        reprojection = span.end - span.start
        swap = max(float(span.attributes["swap_time"]) - span.end, 0.0)
        parts = {"imu_age": imu_age, "reprojection": reprojection, "swap": swap}
        frames.append(
            FrameCriticalPath(
                frame_time=float(span.attributes["swap_time"]),
                trace_id=span.trace_id,
                span_id=span.span_id,
                imu_age=imu_age,
                reprojection=reprojection,
                swap=swap,
                slowest=max(parts, key=parts.__getitem__),
                imu_time=imu_time,
                linked_to_imu=linked,
            )
        )
    frames.sort(key=lambda f: f.frame_time)
    return frames


def lineage_fraction(frames: Sequence[FrameCriticalPath]) -> float:
    """Fraction of displayed frames whose lineage reaches an IMU sample."""
    if not frames:
        return 0.0
    return sum(f.linked_to_imu for f in frames) / len(frames)


def decomposition_summary(frames: Sequence[FrameCriticalPath]) -> Dict[str, object]:
    """Table IV from traces alone, plus per-segment attribution."""
    if not frames:
        return {"count": 0}
    totals = sorted(f.total_ms for f in frames)
    n = len(totals)
    mean = sum(totals) / n
    std = math.sqrt(sum((t - mean) ** 2 for t in totals) / n)
    segment_means = {
        seg: sum(getattr(f, seg) for f in frames) / n * 1e3 for seg in SEGMENTS
    }
    slowest_counts = {seg: sum(1 for f in frames if f.slowest == seg) for seg in SEGMENTS}
    return {
        "count": n,
        "mean_ms": mean,
        "std_ms": std,
        "p99_ms": totals[min(int(0.99 * n), n - 1)],
        "max_ms": totals[-1],
        "segment_mean_ms": segment_means,
        "slowest_edge_counts": slowest_counts,
        "slowest_edge": max(slowest_counts, key=slowest_counts.__getitem__),
        "linked_fraction": lineage_fraction(frames),
    }


def render_report(frames: Sequence[FrameCriticalPath], limit: int = 12) -> str:
    """A plain-text critical-path report (the analysis CLI's payload)."""
    summary = decomposition_summary(frames)
    if not summary.get("count"):
        return "critical path: no displayed frames in trace"
    lines = [
        "Critical-path MTP attribution (from trace spans)",
        f"  frames: {summary['count']}   linked to IMU: {summary['linked_fraction']:.1%}",
        "  mtp mean {mean_ms:6.2f} ms   std {std_ms:5.2f}   p99 {p99_ms:6.2f}   max {max_ms:6.2f}".format(**summary),
        "  segment means: "
        + "   ".join(f"{s} {summary['segment_mean_ms'][s]:.2f} ms" for s in SEGMENTS),
        "  slowest edge per frame: "
        + "   ".join(f"{s}: {summary['slowest_edge_counts'][s]}" for s in SEGMENTS)
        + f"   (dominant: {summary['slowest_edge']})",
        "",
        f"  {'frame_t':>9s} {'total':>8s} {'imu_age':>8s} {'reproj':>8s} {'swap':>8s}  slowest",
    ]
    shown = list(frames)[:limit]
    for f in shown:
        lines.append(
            f"  {f.frame_time:9.4f} {f.total_ms:8.3f} {f.imu_age * 1e3:8.3f} "
            f"{f.reprojection * 1e3:8.3f} {f.swap * 1e3:8.3f}  {f.slowest}"
        )
    if len(frames) > limit:
        lines.append(f"  ... {len(frames) - limit} more frames")
    return "\n".join(lines)
