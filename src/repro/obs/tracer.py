"""Causal span tracing on the simulated clock.

A :class:`Span` is one timed unit of work -- a plugin invocation, a
resource phase inside it, or a ``@profiled`` kernel call nested within.
Spans form trees via ``parent_id`` (synchronous causality: the trigger
event that spawned an invocation) and DAGs via :class:`SpanLink`
(asynchronous causality: a ``get_latest`` read of a topic mid-iteration).
Together they let :mod:`repro.obs.critical_path` walk a displayed frame
back to the IMU sample that produced its pose.

The tracer is deliberately unaware of wall time: span timestamps come
from the engine clock it is given, so traces are deterministic across
machines and comparable across seeds.  The only wall-clock quantities in
a trace are the ``wall_s`` attributes on ``kernel`` spans recorded by
:mod:`repro.perf.profile`, which measure *host* cost of real kernels at
a simulated-time location.

Because the DES engine is single-threaded and ``plugin.iteration`` runs
synchronously between yields, a plain activation stack is sufficient for
"current span" bookkeeping; the scheduler activates an invocation's span
only around its synchronous sections (the iteration call and the output
publishes), never across a ``yield``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.context import TraceContext


@dataclass(frozen=True)
class SpanLink:
    """An asynchronous-read edge: the consuming span saw this event."""

    topic: str
    sequence: int
    publish_time: float
    data_time: Optional[float]
    context: Optional[TraceContext]

    @property
    def effective_data_time(self) -> float:
        """The linked datum's own timestamp (mirrors ``StampedEvent``)."""
        return self.publish_time if self.data_time is None else self.data_time


@dataclass
class Span:
    """One timed unit of work on the simulated clock."""

    name: str
    track: str                    # display lane: plugin name or subsystem
    kind: str                     # invocation | phase | kernel | mark
    start: float
    trace_id: int
    span_id: int
    parent_id: Optional[int] = None
    end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    links: List[SpanLink] = field(default_factory=list)

    @property
    def context(self) -> TraceContext:
        """This span's coordinates, as stamped onto published events."""
        return TraceContext(self.trace_id, self.span_id, self.parent_id)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated-time duration (0.0 while unfinished)."""
        return (self.end - self.start) if self.end is not None else 0.0


class Tracer:
    """Allocates, activates, and stores spans for one run."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._stack: List[Span] = []
        self._next_span = 1
        self._next_trace = 1

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Bind the simulated clock (done when attaching to an engine)."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------

    def start_span(
        self,
        name: str,
        track: str,
        kind: str = "phase",
        parent: Optional[TraceContext] = None,
        start: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span.  Parentage, in priority order: the explicit
        ``parent`` context, else the currently active span, else a fresh
        trace root."""
        if parent is None and self._stack:
            parent = self._stack[-1].context
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name=name,
            track=track,
            kind=kind,
            start=self.now if start is None else start,
            trace_id=trace_id,
            span_id=self._next_span,
            parent_id=parent_id,
            attributes=dict(attributes or {}),
        )
        self._next_span += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def end_span(self, span: Span, end: Optional[float] = None) -> Span:
        """Close a span (idempotent only in the sense that later calls
        overwrite the end time; spans are not reusable)."""
        span.end = self.now if end is None else end
        return span

    @contextmanager
    def activate(self, span: Span) -> Iterator[Span]:
        """Make ``span`` the current span for the duration of the block.

        Only valid around *synchronous* code: never hold an activation
        across a DES ``yield``.
        """
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    @contextmanager
    def span(
        self,
        name: str,
        track: str,
        kind: str = "phase",
        parent: Optional[TraceContext] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Span]:
        """Open, activate, and close a span around a synchronous block."""
        opened = self.start_span(name, track, kind=kind, parent=parent, attributes=attributes)
        with self.activate(opened):
            try:
                yield opened
            finally:
                self.end_span(opened)

    # ------------------------------------------------------------------
    # Current-span conveniences
    # ------------------------------------------------------------------

    def current(self) -> Optional[Span]:
        """The innermost active span, or None outside any activation."""
        return self._stack[-1] if self._stack else None

    def annotate(self, **attributes: Any) -> None:
        """Set attributes on the current span (no-op when none active)."""
        span = self.current()
        if span is not None:
            span.attributes.update(attributes)

    def link(self, link: SpanLink) -> None:
        """Attach an async-read edge to the current span (no-op if none)."""
        span = self.current()
        if span is not None:
            span.links.append(link)

    def mark(self, name: str, track: str, attributes: Optional[Dict[str, Any]] = None) -> Span:
        """A zero-duration instant span (supervision events, drops)."""
        span = self.start_span(name, track, kind="mark", attributes=attributes)
        span.end = span.start
        return span

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        """The span with this id, or None."""
        return self._by_id.get(span_id)

    def by_track(self, track: str) -> List[Span]:
        """All spans on one track, in creation order."""
        return [s for s in self.spans if s.track == track]

    def finished(self) -> List[Span]:
        """All closed spans, in creation order."""
        return [s for s in self.spans if s.end is not None]

    def ancestry(self, span: Span) -> List[Span]:
        """The parent chain from ``span`` (exclusive) up to its trace root."""
        chain: List[Span] = []
        current = span
        while current.parent_id is not None:
            parent = self._by_id.get(current.parent_id)
            if parent is None:
                break
            chain.append(parent)
            current = parent
        return chain
