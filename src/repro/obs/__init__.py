"""Unified observability: causal tracing, metrics, critical-path MTP.

Three previously disconnected telemetry islands -- the §III-E invocation
records (:mod:`repro.core.records`), the wall-clock kernel profiler
(:mod:`repro.perf.profile`), and the rosbag-style event recorder
(:mod:`repro.analysis.trace`) -- meet here:

- :mod:`repro.obs.tracer` -- causal spans on the simulated clock, with
  trace contexts propagated through every switchboard event;
- :mod:`repro.obs.metrics` -- a labeled counters/gauges/histograms
  registry wired into the scheduler, switchboard, and supervisor;
- :mod:`repro.obs.export` -- Chrome trace-event JSON (Perfetto-loadable)
  with flow arrows along event lineage;
- :mod:`repro.obs.critical_path` -- per-frame MTP decomposition walked
  from span trees alone.

Opt in with ``build_runtime(..., observability=True)``; with it off,
every hook in the core is a single ``None``-check (the same
zero-overhead discipline as :mod:`repro.resilience`).
"""

from repro.obs.context import TraceContext
from repro.obs.critical_path import (
    FrameCriticalPath,
    critical_paths,
    decomposition_summary,
    lineage_fraction,
    render_report,
)
from repro.obs.export import chrome_trace, save_chrome_trace, validate_chrome_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observability import MTP_BUCKETS_S, SYS_TOPIC, Observability
from repro.obs.tracer import Span, SpanLink, Tracer

__all__ = [
    "Counter",
    "FrameCriticalPath",
    "Gauge",
    "Histogram",
    "MTP_BUCKETS_S",
    "MetricsRegistry",
    "Observability",
    "SYS_TOPIC",
    "Span",
    "SpanLink",
    "TraceContext",
    "Tracer",
    "chrome_trace",
    "critical_paths",
    "decomposition_summary",
    "lineage_fraction",
    "render_report",
    "save_chrome_trace",
    "validate_chrome_trace",
]
