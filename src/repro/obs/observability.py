"""The unified observability facade: one object the runtime wires in.

An :class:`Observability` instance owns a :class:`~repro.obs.tracer.Tracer`
and a :class:`~repro.obs.metrics.MetricsRegistry` and implements the hook
protocols the core exposes:

- the **switchboard observer** (``publish_context`` / ``on_publish`` /
  ``on_read`` / ``on_injector_drop``), which stamps trace contexts onto
  events at ``put`` and turns reads into lineage links;
- the **scheduler hooks** (``begin_invocation`` / ``note_attempt`` /
  ``end_invocation`` / ``on_scheduler_drop``), which wrap every plugin
  invocation in a span and feed the scheduler metrics;
- a subscriber on the ``sys/observability`` topic, which converts
  supervisor lifecycle events (crash, retry, quarantine, dead-letter,
  degraded) into instant spans and counters so chaos runs are visible in
  exported traces.

Every hook site in the core is a ``None``-check: with no Observability
attached, the runtime pays one attribute load and a branch -- the same
zero-overhead discipline as the resilience layer.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.context import TraceContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, SpanLink, Tracer

#: Topic supervisors route lifecycle events to (see repro.resilience).
SYS_TOPIC = "sys/observability"

#: MTP histogram bounds (seconds): 1 ms .. 100 ms, log-ish spacing that
#: brackets the 5 ms AR and 20 ms VR targets of Table I.
MTP_BUCKETS_S = (
    0.001, 0.002, 0.003, 0.005, 0.0075, 0.010, 0.0125, 0.015, 0.0175,
    0.020, 0.025, 0.030, 0.040, 0.050, 0.075, 0.100,
)


class Observability:
    """Tracer + metrics registry + the hook protocol implementations."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.enabled = True
        self._engine = None
        # Pre-registered instruments (hot-path hooks must not pay the
        # registry lookup on every call).
        m = self.metrics
        self._publishes = m.counter(
            "switchboard_publishes_total", "events delivered per topic"
        )
        self._injector_drops = m.counter(
            "switchboard_drops_total", "publishes suppressed by fault injection"
        )
        self._dead_letters = m.counter(
            "switchboard_dead_letters_total", "poison events routed to dead_letter"
        )
        self._queue_depth = m.gauge(
            "switchboard_queue_depth", "unread events on the deepest sync reader"
        )
        self._invocations = m.counter(
            "scheduler_invocations_total", "completed plugin invocations"
        )
        self._sched_drops = m.counter(
            "scheduler_drops_total", "ticks skipped because the plugin was busy"
        )
        self._deadline_misses = m.counter(
            "scheduler_deadline_misses_total", "invocations finishing past deadline"
        )
        self._kills = m.counter(
            "scheduler_kills_total", "invocations reaped by the watchdog"
        )
        self._supervisor_events = m.counter(
            "supervisor_events_total", "lifecycle events by kind"
        )
        self._mtp = m.histogram(
            "mtp_seconds", MTP_BUCKETS_S, "motion-to-photon latency per displayed frame"
        )
        self._mtp_segments = m.histogram(
            "mtp_segment_seconds", MTP_BUCKETS_S, "per-segment MTP decomposition"
        )

    # ------------------------------------------------------------------
    # Runtime wiring
    # ------------------------------------------------------------------

    def attach(self, engine, switchboard) -> None:
        """Bind to a run: clock, switchboard observer, sys-topic taps."""
        self._engine = engine
        self.tracer.set_clock(lambda: engine.now)
        switchboard.install_observer(self)
        switchboard.topic(SYS_TOPIC).subscribe_callback(self._on_sys_event)
        switchboard.topic("dead_letter").subscribe_callback(self._on_dead_letter)
        # Nest @profiled kernel calls as kernel spans inside whichever
        # invocation span is active when they fire (no-op while profiling
        # itself is disabled, which is the default).
        from repro.perf import profile

        profile.set_tracer(self.tracer)

    # ------------------------------------------------------------------
    # Switchboard observer protocol
    # ------------------------------------------------------------------

    def publish_context(self, topic_name: str) -> Optional[TraceContext]:
        """The trace context to stamp onto an event being published now:
        the publishing invocation's span, if one is active."""
        span = self.tracer.current()
        return span.context if span is not None else None

    def on_publish(self, topic, event) -> None:
        """Metrics for one delivered event (called from ``deliver``)."""
        self._publishes.inc(topic=topic.name)
        queues = topic._queues
        if queues:
            self._queue_depth.set(
                float(max(len(q) for q in queues)), topic=topic.name
            )

    def on_read(self, topic_name: str, event) -> None:
        """An asynchronous read observed inside an active span becomes a
        lineage link on that span."""
        span = self.tracer.current()
        if span is not None:
            span.links.append(
                SpanLink(
                    topic=topic_name,
                    sequence=event.sequence,
                    publish_time=event.publish_time,
                    data_time=event.data_time,
                    context=event.trace,
                )
            )

    def on_injector_drop(self, topic_name: str, kind: str) -> None:
        self._injector_drops.inc(topic=topic_name, kind=kind)

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------

    def begin_invocation(
        self, plugin, start: float, trigger_event, index: int
    ) -> Span:
        """Open the span for one plugin invocation.

        A triggered invocation continues the trigger event's trace (the
        synchronous dependence of Fig. 2); a periodic one roots a fresh
        trace -- sensor ticks are where lineage begins.
        """
        parent = getattr(trigger_event, "trace", None) if trigger_event is not None else None
        attributes: Dict[str, Any] = {
            "component": plugin.component,
            "pipeline": plugin.pipeline,
            "index": index,
        }
        if trigger_event is not None:
            attributes["trigger_publish_time"] = trigger_event.publish_time
        return self.tracer.start_span(
            f"{plugin.name}#{index}",
            track=plugin.name,
            kind="invocation",
            parent=parent,
            start=start,
            attributes=attributes,
        )

    def note_attempt(self, span: Span, now: float, attempt: int) -> None:
        """Record when iteration work actually began (retries move it)."""
        span.attributes["iteration_at"] = now
        span.attributes["attempts"] = attempt + 1

    def on_attempt_error(self, span: Span, now: float, exc: BaseException) -> None:
        span.attributes["error"] = repr(exc)
        self.tracer.mark(
            "crash", track=span.track, attributes={"error": repr(exc), "at": now}
        )

    def end_invocation(
        self,
        span: Span,
        end: float,
        cpu_time: float = 0.0,
        gpu_time: float = 0.0,
        swap_time: Optional[float] = None,
        missed_deadline: bool = False,
        killed: bool = False,
        skipped: bool = False,
    ) -> None:
        """Close an invocation span and update the scheduler metrics."""
        span.attributes["cpu_time"] = cpu_time
        span.attributes["gpu_time"] = gpu_time
        if skipped:
            span.attributes["skipped"] = True
        if killed:
            span.attributes["killed"] = True
            self._kills.inc(plugin=span.track)
        if missed_deadline:
            span.attributes["missed_deadline"] = True
            self._deadline_misses.inc(plugin=span.track)
        if swap_time is not None:
            span.attributes["swap_time"] = swap_time
            if swap_time > end:
                swap = self.tracer.start_span(
                    "swap",
                    track=span.track,
                    kind="phase",
                    parent=span.context,
                    start=end,
                )
                swap.end = swap_time
        self.tracer.end_span(span, end=end)
        if not killed and not skipped:
            self._invocations.inc(plugin=span.track)

    def on_scheduler_drop(self, plugin_name: str, scheduled_at: float) -> None:
        self._sched_drops.inc(plugin=plugin_name)

    # ------------------------------------------------------------------
    # Plugin-facing conveniences
    # ------------------------------------------------------------------

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the current invocation span."""
        self.tracer.annotate(**attributes)

    def record_mtp(self, sample) -> None:
        """Feed one MtpSample into the online latency histogram."""
        self._mtp.observe(sample.total)
        for segment, value in (
            ("imu_age", sample.imu_age),
            ("reprojection", sample.reprojection_time),
            ("swap", sample.swap_wait),
        ):
            self._mtp_segments.observe(value, segment=segment)

    def mtp_percentiles(self) -> Dict[str, float]:
        """Online p50/p95/p99 of the MTP histogram, in milliseconds."""
        return {
            "p50_ms": self._mtp.quantile(0.50) * 1e3,
            "p95_ms": self._mtp.quantile(0.95) * 1e3,
            "p99_ms": self._mtp.quantile(0.99) * 1e3,
        }

    # ------------------------------------------------------------------
    # sys/observability + dead-letter taps
    # ------------------------------------------------------------------

    def _on_sys_event(self, event) -> None:
        notice = event.data
        kind = getattr(notice, "kind", "event")
        plugin = getattr(notice, "plugin", "unknown")
        self._supervisor_events.inc(kind=kind, plugin=plugin)
        self.tracer.mark(
            kind,
            track=f"supervisor/{plugin}",
            attributes={"detail": getattr(notice, "detail", ""), "at": event.publish_time},
        )

    def _on_dead_letter(self, event) -> None:
        self._dead_letters.inc()

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """JSON-serializable snapshot for ``RuntimeResult.summary``."""
        return {
            "spans": len(self.tracer.spans),
            "traces": self.tracer._next_trace - 1,
            "mtp": self.mtp_percentiles(),
            "metrics": self.metrics.snapshot(),
        }
