"""Eye tracking: CNN pupil segmentation (the RITnet stand-in).

RITnet is a small encoder-decoder segmenting eye images in real time.
This module implements a compact fully convolutional network *from scratch
in numpy* -- im2col convolutions, ReLU, sigmoid head -- trained online with
SGD on the synthetic eye-image generator, and evaluated by pupil IoU and
gaze error.

Task accounting mirrors the paper's §IV-B2 eye-tracking profile:
``convolution`` (74 % in the paper), ``batch_copy`` (19 %), and
``activation``/``misc`` (the rest).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.sensors.eye import EyeImageGenerator, EyeSample


def _im2col(x: np.ndarray, kernel: int) -> np.ndarray:
    """(N, C, H, W) -> (N, H, W, C*k*k) patches with 'same' zero padding."""
    n, c, h, w = x.shape
    pad = kernel // 2
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Gather shifted views; stack along a new patch axis.
    cols = np.empty((n, h, w, c * kernel * kernel), dtype=x.dtype)
    idx = 0
    for dy in range(kernel):
        for dx in range(kernel):
            cols[..., idx * c : (idx + 1) * c] = np.moveaxis(
                padded[:, :, dy : dy + h, dx : dx + w], 1, -1
            )
            idx += 1
    return cols


@dataclass
class ConvLayer:
    """A 2-D convolution with bias, 'same' padding, stride 1."""

    weight: np.ndarray  # (out_c, in_c * k * k)
    bias: np.ndarray    # (out_c,)
    kernel: int

    @staticmethod
    def create(in_c: int, out_c: int, kernel: int, rng: np.random.Generator) -> "ConvLayer":
        """He-initialized layer."""
        fan_in = in_c * kernel * kernel
        weight = rng.normal(0.0, np.sqrt(2.0 / fan_in), (out_c, fan_in))
        return ConvLayer(weight=weight, bias=np.zeros(out_c), kernel=kernel)

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Returns (output (N, out_c, H, W), cached patches for backward)."""
        cols = _im2col(x, self.kernel)  # (N, H, W, C*k*k)
        out = cols @ self.weight.T + self.bias
        return np.moveaxis(out, -1, 1), cols

    def backward(
        self, grad_out: np.ndarray, cols: np.ndarray, x_shape: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns (grad_x, grad_weight, grad_bias)."""
        n, out_c, h, w = grad_out.shape
        g = np.moveaxis(grad_out, 1, -1).reshape(-1, out_c)  # (NHW, out_c)
        grad_w = g.T @ cols.reshape(-1, cols.shape[-1])
        grad_b = g.sum(axis=0)
        grad_cols = (g @ self.weight).reshape(n, h, w, -1)
        # col2im: scatter-add the patch gradients back.
        in_c = x_shape[1]
        pad = self.kernel // 2
        grad_padded = np.zeros((n, in_c, h + 2 * pad, w + 2 * pad))
        idx = 0
        for dy in range(self.kernel):
            for dx in range(self.kernel):
                grad_padded[:, :, dy : dy + h, dx : dx + w] += np.moveaxis(
                    grad_cols[..., idx * in_c : (idx + 1) * in_c], -1, 1
                )
                idx += 1
        grad_x = grad_padded[:, :, pad : pad + h, pad : pad + w]
        return grad_x, grad_w, grad_b


@dataclass(frozen=True)
class EyeTrackingResult:
    """Segmentation output for one stereo pair of eye images."""

    masks: np.ndarray        # (N, H, W) bool predicted pupil
    gaze: np.ndarray         # (N, 2) estimated gaze from mask centroid
    probabilities: np.ndarray


class EyeTracker:
    """Three-layer FCN: conv3x3(1->8) . conv3x3(8->8) . conv1x1(8->1)."""

    def __init__(self, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.layers: List[ConvLayer] = [
            ConvLayer.create(1, 8, 3, rng),
            ConvLayer.create(8, 8, 3, rng),
            ConvLayer.create(8, 1, 1, rng),
        ]
        self.task_times: Dict[str, float] = defaultdict(float)
        self.trained = False

    # ------------------------------------------------------------------

    def _forward(self, batch: np.ndarray, record_tasks: bool = False):
        """Forward pass; returns (probabilities, caches for backward)."""
        x = batch
        caches = []
        for i, layer in enumerate(self.layers):
            t0 = time.perf_counter()
            out, cols = layer.forward(x)
            if record_tasks:
                self.task_times["convolution"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            if i < len(self.layers) - 1:
                activated = np.maximum(out, 0.0)
            else:
                activated = 1.0 / (1.0 + np.exp(-out))
            if record_tasks:
                self.task_times["activation"] += time.perf_counter() - t0
            caches.append((x.shape, cols, out))
            x = activated
        return x[:, 0], caches  # (N, H, W) probabilities

    def predict(self, images: np.ndarray) -> EyeTrackingResult:
        """Segment a batch of (N, H, W) images (batch of 2 = one per eye)."""
        images = np.asarray(images, dtype=float)
        if images.ndim == 2:
            images = images[None]
        t0 = time.perf_counter()
        batch = images[:, None].copy()  # host->device batch copy stand-in
        self.task_times["batch_copy"] += time.perf_counter() - t0
        probs, _ = self._forward(batch, record_tasks=True)
        t0 = time.perf_counter()
        masks = probs > 0.5
        gaze = np.zeros((len(masks), 2))
        h, w = masks.shape[1:]
        for i, mask in enumerate(masks):
            ys, xs = np.nonzero(mask)
            if len(xs) > 0:
                gaze[i, 0] = (xs.mean() - w / 2) / (w * 0.22)
                gaze[i, 1] = (ys.mean() - h / 2) / (h * 0.22)
        self.task_times["misc"] += time.perf_counter() - t0
        return EyeTrackingResult(masks=masks, gaze=gaze, probabilities=probs)

    # ------------------------------------------------------------------

    def train(
        self,
        generator: EyeImageGenerator,
        steps: int = 120,
        batch_size: int = 8,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
    ) -> List[float]:
        """Online SGD training against the synthetic generator.

        Returns the per-step BCE losses (should be decreasing).
        """
        velocity = [
            (np.zeros_like(layer.weight), np.zeros_like(layer.bias)) for layer in self.layers
        ]
        losses: List[float] = []
        for _step in range(steps):
            samples = generator.batch(batch_size)
            batch = np.stack([s.image for s in samples])[:, None].astype(float)
            target = np.stack([s.mask for s in samples]).astype(float)
            probs, caches = self._forward(batch)
            eps = 1e-7
            probs_c = np.clip(probs, eps, 1 - eps)
            # Class-weighted BCE (the pupil is a small fraction of pixels).
            pos_weight = 8.0
            loss = -np.mean(
                pos_weight * target * np.log(probs_c) + (1 - target) * np.log(1 - probs_c)
            )
            losses.append(float(loss))
            n_pix = probs.size
            grad = (probs_c - target) * (pos_weight * target + (1 - target)) / n_pix
            grad = grad[:, None]  # (N, 1, H, W), already through sigmoid
            for i in reversed(range(len(self.layers))):
                x_shape, cols, pre_activation = caches[i]
                if i < len(self.layers) - 1:
                    grad = grad * (pre_activation > 0)
                grad, grad_w, grad_b = self.layers[i].backward(grad, cols, x_shape)
                vw, vb = velocity[i]
                vw *= momentum
                vw -= learning_rate * grad_w
                vb *= momentum
                vb -= learning_rate * grad_b
                self.layers[i].weight += vw
                self.layers[i].bias += vb
        self.trained = True
        return losses

    # ------------------------------------------------------------------

    def evaluate(self, samples: List[EyeSample]) -> Dict[str, float]:
        """Mean pupil IoU and gaze error over labelled samples."""
        ious = []
        gaze_errors = []
        for sample in samples:
            result = self.predict(sample.image)
            predicted = result.masks[0]
            intersection = np.logical_and(predicted, sample.mask).sum()
            union = np.logical_or(predicted, sample.mask).sum()
            ious.append(intersection / union if union > 0 else 1.0)
            gaze_errors.append(float(np.linalg.norm(result.gaze[0] - sample.gaze)))
        return {
            "mean_iou": float(np.mean(ious)),
            "mean_gaze_error": float(np.mean(gaze_errors)),
        }

    def task_breakdown(self) -> Dict[str, float]:
        """Accumulated seconds per task (paper: conv 74 %, copies 19 %)."""
        names = ("convolution", "batch_copy", "activation", "misc")
        return {k: self.task_times.get(k, 0.0) for k in names}

    def weight_bytes(self) -> int:
        """Model size in bytes (the paper notes RITnet is ~1 MB)."""
        return sum(layer.weight.nbytes + layer.bias.nbytes for layer in self.layers)
