"""RK4 IMU integrator: the high-rate half of the perception pipeline.

VIO produces precise poses at camera rate (15 Hz); the integrator propagates
the most recent VIO state through every IMU sample (500 Hz) so the visual
pipeline always has a fresh pose (Fig. 2 of the paper: the integrator has a
synchronous dependence on the IMU and an asynchronous one on VIO).

This is the RK4 scheme of OpenVINS' propagator: zero-order hold on the
angular velocity and specific force over each sample interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.maths.quaternion import quat_multiply, quat_normalize, quat_rotate
from repro.maths.se3 import Pose
from repro.sensors.imu import GRAVITY_W, ImuSample


@dataclass(frozen=True)
class IntegratorState:
    """Full kinematic state the integrator carries between samples."""

    timestamp: float
    orientation: np.ndarray              # unit quaternion, body-to-world
    position: np.ndarray                 # world (m)
    velocity: np.ndarray                 # world (m/s)
    gyro_bias: np.ndarray = field(default_factory=lambda: np.zeros(3))
    accel_bias: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def pose(self) -> Pose:
        """The pose portion of the state."""
        return Pose(self.position, self.orientation, timestamp=self.timestamp)


def _quat_derivative(q: np.ndarray, omega: np.ndarray) -> np.ndarray:
    """dq/dt = 0.5 * q  (x)  [0, omega]."""
    return 0.5 * quat_multiply(q, np.concatenate(([0.0], omega)))


class Rk4Integrator:
    """Integrates IMU samples forward from the latest VIO anchor."""

    def __init__(self, state: IntegratorState) -> None:
        self.state = state

    def reset(self, state: IntegratorState) -> None:
        """Re-anchor on a fresh VIO estimate.

        The integrator keeps its own propagated time: if the VIO estimate is
        *older* than the current state (VIO latency), the caller should
        re-propagate cached IMU samples after resetting.
        """
        self.state = state

    def step(self, sample: ImuSample) -> IntegratorState:
        """Advance the state to ``sample.timestamp`` using RK4."""
        dt = sample.timestamp - self.state.timestamp
        if dt < 0:
            raise ValueError(
                f"IMU sample is older than state: {sample.timestamp} < {self.state.timestamp}"
            )
        if dt == 0.0:
            return self.state
        omega = sample.gyro - self.state.gyro_bias
        accel = sample.accel - self.state.accel_bias
        q0 = self.state.orientation
        p0 = self.state.position
        v0 = self.state.velocity

        def accel_world(q: np.ndarray) -> np.ndarray:
            return quat_rotate(quat_normalize(q), accel) + GRAVITY_W

        # RK4 with zero-order hold on omega and accel.
        k1_q = _quat_derivative(q0, omega)
        k1_v = accel_world(q0)
        k1_p = v0

        q_half_1 = q0 + 0.5 * dt * k1_q
        k2_q = _quat_derivative(q_half_1, omega)
        k2_v = accel_world(q_half_1)
        k2_p = v0 + 0.5 * dt * k1_v

        q_half_2 = q0 + 0.5 * dt * k2_q
        k3_q = _quat_derivative(q_half_2, omega)
        k3_v = accel_world(q_half_2)
        k3_p = v0 + 0.5 * dt * k2_v

        q_full = q0 + dt * k3_q
        k4_q = _quat_derivative(q_full, omega)
        k4_v = accel_world(q_full)
        k4_p = v0 + dt * k3_v

        q_new = quat_normalize(q0 + dt / 6.0 * (k1_q + 2 * k2_q + 2 * k3_q + k4_q))
        v_new = v0 + dt / 6.0 * (k1_v + 2 * k2_v + 2 * k3_v + k4_v)
        p_new = p0 + dt / 6.0 * (k1_p + 2 * k2_p + 2 * k3_p + k4_p)
        self.state = replace(
            self.state,
            timestamp=sample.timestamp,
            orientation=q_new,
            position=p_new,
            velocity=v_new,
        )
        return self.state


class ComplementaryIntegrator:
    """Alternative implementation (the GTSAM slot of Table II).

    A first-order (Euler) integrator with an exponential-map attitude
    update.  Cheaper and less accurate than RK4; exists to demonstrate the
    runtime's interchangeable-component design.
    """

    def __init__(self, state: IntegratorState) -> None:
        self.state = state

    def reset(self, state: IntegratorState) -> None:
        """Re-anchor on a fresh VIO estimate."""
        self.state = state

    def step(self, sample: ImuSample) -> IntegratorState:
        """Advance to ``sample.timestamp`` with a first-order update."""
        from repro.maths.quaternion import quat_exp

        dt = sample.timestamp - self.state.timestamp
        if dt < 0:
            raise ValueError("IMU sample is older than state")
        if dt == 0.0:
            return self.state
        omega = sample.gyro - self.state.gyro_bias
        accel = sample.accel - self.state.accel_bias
        q_new = quat_normalize(
            quat_multiply(self.state.orientation, quat_exp(omega * dt))
        )
        accel_w = quat_rotate(self.state.orientation, accel) + GRAVITY_W
        v_new = self.state.velocity + accel_w * dt
        p_new = self.state.position + self.state.velocity * dt + 0.5 * accel_w * dt * dt
        self.state = replace(
            self.state,
            timestamp=sample.timestamp,
            orientation=q_new,
            position=p_new,
            velocity=v_new,
        )
        return self.state
