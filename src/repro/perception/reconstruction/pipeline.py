"""The scene-reconstruction component pipeline (Table VI stage structure).

Per frame:

1. **camera processing** -- bilateral-style smoothing, invalid rejection;
2. **image processing** -- vertex/normal map generation;
3. **pose estimation** -- point-to-plane ICP against the model prediction;
4. **surfel prediction** -- raycast the volume from the estimated pose;
5. **map fusion** -- integrate the depth frame into the TSDF.

The first frame bootstraps the volume at the given pose.  The pipeline's
per-frame time grows with map size and spikes when large re-integrations
happen -- the behaviour §IV-B1 reports for ElasticFusion.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.maths.se3 import Pose
from repro.perception.reconstruction.icp import IcpResult, icp_point_to_plane
from repro.perception.reconstruction.keyframes import KeyframeDatabase
from repro.perception.reconstruction.raycast import RaycastResult, raycast
from repro.perception.reconstruction.tsdf import TsdfVolume
from repro.sensors.depth import DepthCamera

TASK_NAMES = (
    "camera_processing",
    "image_processing",
    "pose_estimation",
    "surfel_prediction",
    "map_fusion",
)


@dataclass(frozen=True)
class ReconstructionFrameResult:
    """Per-frame output of the pipeline."""

    pose: Pose
    icp: Optional[IcpResult]
    voxels_updated: int
    occupied_fraction: float
    frame_time_s: float
    loop_closure: bool = False


class ReconstructionPipeline:
    """Frame-to-model dense SLAM over a TSDF volume."""

    def __init__(
        self,
        camera: DepthCamera,
        volume: Optional[TsdfVolume] = None,
        bilateral_sigma_px: float = 1.0,
        min_valid_depth_m: float = 0.15,
        max_valid_depth_m: float = 8.0,
        enable_loop_closure: bool = True,
    ) -> None:
        self.camera = camera
        self.volume = volume or TsdfVolume()
        self.bilateral_sigma_px = bilateral_sigma_px
        self.min_valid_depth_m = min_valid_depth_m
        self.max_valid_depth_m = max_valid_depth_m
        self.enable_loop_closure = enable_loop_closure
        self.keyframes = KeyframeDatabase()
        self.loop_closures = 0
        self.task_times: Dict[str, float] = defaultdict(float)
        self.frame_times: List[float] = []
        self._model: Optional[RaycastResult] = None
        self._model_pose: Optional[Pose] = None

    def process_frame(self, depth: np.ndarray, pose_guess: Pose) -> ReconstructionFrameResult:
        """Track against the model and fuse one depth frame."""
        frame_start = time.perf_counter()

        t0 = time.perf_counter()
        filtered = self._camera_processing(depth)
        self.task_times["camera_processing"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        # Vertex/normal maps are computed inside ICP and raycast; this stage
        # models the standalone pre-computation of the current frame's maps.
        _vertex_map = self.camera._rays_cam * filtered[..., None]
        _normals = self._normals_from_depth(filtered)
        self.task_times["image_processing"] += time.perf_counter() - t0

        icp_result: Optional[IcpResult] = None
        estimated = pose_guess
        if self._model is not None and self._model_pose is not None:
            t0 = time.perf_counter()
            icp_result = icp_point_to_plane(
                filtered, self.camera, pose_guess, self._model, self._model_pose
            )
            estimated = icp_result.pose
            self.task_times["pose_estimation"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        voxels = self.volume.integrate(filtered, estimated, self.camera)
        # Loop closure (§IV-B1): a keyframe match triggers the global
        # consistency pass -- realign against the matched view and
        # re-integrate the stored keyframes.  This is the order-of-
        # magnitude execution-time spike the paper observes.
        loop_closed = False
        if self.enable_loop_closure:
            match, _stored = self.keyframes.observe(filtered, estimated)
            if match is not None:
                loop_closed = True
                self.loop_closures += 1
                match_view = raycast(self.volume, match.pose, self.camera)
                realigned = icp_point_to_plane(
                    filtered, self.camera, estimated, match_view, match.pose
                )
                estimated = realigned.pose
                for keyframe in self.keyframes.keyframes:
                    self.volume.integrate(keyframe.depth, keyframe.pose, self.camera)
                voxels += self.volume.integrate(filtered, estimated, self.camera)
        self.task_times["map_fusion"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        self._model = raycast(self.volume, estimated, self.camera)
        self._model_pose = estimated
        self.task_times["surfel_prediction"] += time.perf_counter() - t0

        frame_time = time.perf_counter() - frame_start
        self.frame_times.append(frame_time)
        return ReconstructionFrameResult(
            pose=estimated,
            icp=icp_result,
            voxels_updated=voxels,
            occupied_fraction=self.volume.occupied_fraction,
            frame_time_s=frame_time,
            loop_closure=loop_closed,
        )

    # ------------------------------------------------------------------

    def _camera_processing(self, depth: np.ndarray) -> np.ndarray:
        """Edge-preserving smoothing + invalid-depth rejection."""
        valid = (depth > self.min_valid_depth_m) & (depth < self.max_valid_depth_m)
        cleaned = np.where(valid, depth, 0.0)
        if self.bilateral_sigma_px > 0:
            # Normalized-convolution approximation of the bilateral filter:
            # smooth only across valid pixels so holes do not bleed.
            weights = gaussian_filter(valid.astype(float), self.bilateral_sigma_px)
            smoothed = gaussian_filter(cleaned, self.bilateral_sigma_px)
            with np.errstate(invalid="ignore", divide="ignore"):
                blended = np.where(weights > 0.3, smoothed / np.maximum(weights, 1e-9), 0.0)
            # Keep edges: revert pixels where smoothing moved depth a lot.
            edge = np.abs(blended - cleaned) > 0.05 * np.maximum(cleaned, 0.3)
            cleaned = np.where(valid & ~edge, blended, cleaned)
        return cleaned

    def _normals_from_depth(self, depth: np.ndarray) -> np.ndarray:
        """Cross-product normals from the camera-frame vertex map."""
        vertex = self.camera._rays_cam * depth[..., None]
        dx = np.diff(vertex, axis=1, append=vertex[:, -1:])
        dy = np.diff(vertex, axis=0, append=vertex[-1:])
        normals = np.cross(dx, dy)
        norm = np.linalg.norm(normals, axis=-1, keepdims=True)
        return normals / np.maximum(norm, 1e-9)

    def task_breakdown(self) -> Dict[str, float]:
        """Accumulated seconds per Table VI stage."""
        return {k: self.task_times.get(k, 0.0) for k in TASK_NAMES}
