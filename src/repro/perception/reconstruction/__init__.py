"""Dense scene reconstruction (the ElasticFusion/KinectFusion stand-in).

A volumetric TSDF pipeline with the same stage structure the paper's
Table VI measures for scene reconstruction:

- **camera processing**: bilateral filtering + invalid-depth rejection;
- **image processing**: vertex/normal map generation;
- **pose estimation**: point-to-plane ICP against the model prediction;
- **surfel prediction**: raycasting the volume from the current pose;
- **map fusion**: integrating the new depth frame into the TSDF.
"""

from repro.perception.reconstruction.pipeline import ReconstructionPipeline
from repro.perception.reconstruction.tsdf import TsdfVolume

__all__ = ["ReconstructionPipeline", "TsdfVolume"]
