"""Keyframe database and loop closure (the ElasticFusion behaviour of
§IV-B1).

ElasticFusion detects revisited places with a fern-encoded keyframe
database; a match triggers a global-consistency pass over the map.  The
paper observes exactly this in the execution profile: "Loop closure
attempts result in execution time spikes of 100's of ms, an order of
magnitude more than its average per-frame execution time."

This module reproduces the mechanism: keyframes store a coarse,
normalized depth signature (the fern-code stand-in) plus the full depth
frame; when a new frame's signature matches an old, non-adjacent keyframe,
the pipeline re-integrates the stored keyframes (the expensive global
pass) after realigning against the matched view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.maths.se3 import Pose


@dataclass(frozen=True)
class Keyframe:
    """One stored view: pose, full depth, coarse signature."""

    index: int
    pose: Pose
    depth: np.ndarray
    signature: np.ndarray


REFERENCE_DEPTH_M = 5.0


def depth_signature(depth: np.ndarray, grid: int = 8) -> np.ndarray:
    """A coarse depth descriptor (the fern-code stand-in).

    Block-averages the depth image onto a ``grid x grid`` patch, expressed
    in units of a fixed reference depth.  Deliberately *not* scale-
    normalized: indoors, absolute depth is what disambiguates rotations of
    a near-symmetric room (per-view scale normalization aliases a square
    room's 90-degree rotations onto each other).
    """
    if grid < 2:
        raise ValueError("grid must be >= 2")
    h, w = depth.shape
    ys = np.linspace(0, h, grid + 1, dtype=int)
    xs = np.linspace(0, w, grid + 1, dtype=int)
    patch = np.zeros((grid, grid))
    for i in range(grid):
        for j in range(grid):
            block = depth[ys[i] : ys[i + 1], xs[j] : xs[j + 1]]
            valid = block[block > 0]
            patch[i, j] = valid.mean() if len(valid) else 0.0
    return patch / REFERENCE_DEPTH_M


@dataclass
class KeyframeDatabase:
    """Stores keyframes and answers "have I been here before?"."""

    every_n_frames: int = 5
    min_separation: int = 15          # don't match temporally adjacent views
    match_threshold: float = 0.06     # mean absolute signature difference
    max_keyframes: int = 64
    cooldown: int = 10                # frames to suppress after a closure
    keyframes: List[Keyframe] = field(default_factory=list)
    _frame_count: int = 0
    _last_match: int = -10**9

    def observe(
        self, depth: np.ndarray, pose: Pose
    ) -> Tuple[Optional[Keyframe], bool]:
        """Register one frame; returns (matched keyframe or None, stored?).

        A match means the current view resembles a keyframe recorded at
        least ``min_separation`` frames ago -- a loop-closure candidate.
        """
        self._frame_count += 1
        signature = depth_signature(depth)
        match: Optional[Keyframe] = None
        if self._frame_count - self._last_match > self.cooldown:
            best = self.match_threshold
            for keyframe in self.keyframes:
                if self._frame_count - keyframe.index < self.min_separation:
                    continue
                distance = float(np.abs(signature - keyframe.signature).mean())
                if distance < best:
                    best = distance
                    match = keyframe
            if match is not None:
                self._last_match = self._frame_count
        stored = False
        if self._frame_count % self.every_n_frames == 0 and len(self.keyframes) < self.max_keyframes:
            self.keyframes.append(
                Keyframe(
                    index=self._frame_count,
                    pose=pose,
                    depth=depth.copy(),
                    signature=signature,
                )
            )
            stored = True
        return match, stored
