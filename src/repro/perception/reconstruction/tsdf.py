"""Truncated signed distance function (TSDF) volume.

The map representation of KinectFusion: a regular voxel grid storing a
truncated signed distance to the nearest surface plus an integration
weight.  Depth frames are fused by projective association: every voxel
projects into the camera, compares its depth to the measured depth, and
blends the truncated difference into its stored value.

Two fusion paths coexist (selected by the ``accelerated`` flag):

- the **reference** path projects *all* ``N^3`` voxel centers into the
  camera every frame and carries a dozen full-grid temporaries through the
  update;
- the **accelerated** path pre-chunks the grid into cubic voxel blocks at
  construction and frustum-culls whole blocks against the camera before
  projecting: a block whose bounding sphere lies behind the near plane or
  outside any of the four image-edge planes cannot contain a voxel that
  projects into the depth image, so only the surviving blocks (typically
  ~10% of the volume for a 70-degree FOV camera inside the workspace) are
  gathered and projected.  The per-voxel arithmetic on surviving voxels is
  identical to the reference, so the fused grid is **bit-exact** — the
  parity tests assert array equality, and ``benchmarks/perf_harness.py``
  measures the speedup (>= 2x required on the 96^3 acceptance config).

The grid itself stays float32 end-to-end; the culled path sizes every
per-frame temporary to the surviving-voxel count instead of the full grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.maths.quaternion import quat_to_matrix
from repro.maths.se3 import Pose
from repro.perf import profiled
from repro.sensors.depth import DepthCamera


@dataclass
class TsdfVolume:
    """A cubic voxel grid over the reconstruction workspace."""

    resolution: int = 96
    extent_m: float = 8.0          # cube edge length
    origin: np.ndarray = field(default_factory=lambda: np.array([-4.0, -4.0, -1.0]))
    truncation_m: float = 0.15
    max_weight: float = 64.0
    accelerated: bool = True
    block_edge: int = 8            # voxels per cull-block edge

    def __post_init__(self) -> None:
        if self.resolution < 8:
            raise ValueError(f"resolution too small: {self.resolution}")
        if self.truncation_m <= 0:
            raise ValueError("truncation must be positive")
        if self.block_edge < 2:
            raise ValueError(f"block edge too small: {self.block_edge}")
        n = self.resolution
        self.voxel_size = self.extent_m / n
        self.tsdf = np.ones((n, n, n), dtype=np.float32)
        self.weight = np.zeros((n, n, n), dtype=np.float32)
        idx = (np.arange(n) + 0.5) * self.voxel_size
        gx, gy, gz = np.meshgrid(idx, idx, idx, indexing="ij")
        self._centers = (
            np.stack([gx, gy, gz], axis=-1).reshape(-1, 3) + self.origin
        )
        self._build_blocks()

    def _build_blocks(self) -> None:
        """Pre-chunk the grid into cubic blocks for frustum culling.

        Stores a block-major permutation of the flat voxel indices plus a
        bounding sphere (center, radius over the *voxel centers*) and voxel
        count per block.
        """
        n, edge = self.resolution, self.block_edge
        n_blocks = -(-n // edge)  # ceil division; edge blocks may be smaller
        grid_index = np.arange(n**3, dtype=np.int64).reshape(n, n, n)
        centers_grid = self._centers.reshape(n, n, n, 3)
        perm_parts = []
        box_centers = []
        radii = []
        sizes = []
        for bi in range(n_blocks):
            i0, i1 = bi * edge, min((bi + 1) * edge, n)
            for bj in range(n_blocks):
                j0, j1 = bj * edge, min((bj + 1) * edge, n)
                for bk in range(n_blocks):
                    k0, k1 = bk * edge, min((bk + 1) * edge, n)
                    perm_parts.append(grid_index[i0:i1, j0:j1, k0:k1].ravel())
                    block = centers_grid[i0:i1, j0:j1, k0:k1].reshape(-1, 3)
                    low, high = block.min(axis=0), block.max(axis=0)
                    center = 0.5 * (low + high)
                    box_centers.append(center)
                    radii.append(float(np.linalg.norm(high - center)))
                    sizes.append(len(block))
        self._block_perm = np.concatenate(perm_parts)
        self._block_centers = np.array(box_centers)
        self._block_radii = np.array(radii)
        self._block_sizes = np.array(sizes)

    @property
    def occupied_fraction(self) -> float:
        """Fraction of voxels that have received any observation."""
        return float((self.weight > 0).mean())

    @profiled("tsdf.integrate")
    def integrate(self, depth: np.ndarray, pose: Pose, camera: DepthCamera) -> int:
        """Fuse one depth frame taken from ``pose``; returns voxels updated."""
        if self.accelerated:
            return self._integrate_culled(depth, pose, camera)
        return self._integrate_reference(depth, pose, camera)

    # ------------------------------------------------------------------
    # Accelerated path: frustum-cull voxel blocks, then project survivors.
    # ------------------------------------------------------------------

    def _camera_pose_to_extrinsics(
        self, pose: Pose, camera: DepthCamera
    ) -> Tuple[np.ndarray, np.ndarray]:
        r_wb = quat_to_matrix(pose.orientation)
        r_cw = camera._r_cam_body @ r_wb.T
        t = -r_cw @ pose.position
        return r_cw, t

    def _visible_voxels(self, pose: Pose, camera: DepthCamera) -> np.ndarray:
        """Flat indices of voxels whose block may project into the image.

        The cull is conservative: a block is kept unless its bounding
        sphere lies entirely behind the near plane or outside one of the
        four image-edge planes (with one pixel of slack), so no voxel the
        reference path would fuse is ever dropped.
        """
        r_cw, t = self._camera_pose_to_extrinsics(pose, camera)
        block_cam = self._block_centers @ r_cw.T + t
        radii = self._block_radii
        keep = block_cam[:, 2] + radii > 1e-3
        for normal in (
            (camera.fx, 0.0, camera.cx + 1.0),
            (-camera.fx, 0.0, camera.width + 0.5 - camera.cx),
            (0.0, camera.fy, camera.cy + 1.0),
            (0.0, -camera.fy, camera.height + 0.5 - camera.cy),
        ):
            plane = np.asarray(normal)
            plane = plane / np.linalg.norm(plane)
            keep &= block_cam @ plane > -radii
        return self._block_perm[np.repeat(keep, self._block_sizes)]

    def _integrate_culled(self, depth: np.ndarray, pose: Pose, camera: DepthCamera) -> int:
        selected = self._visible_voxels(pose, camera)
        if len(selected) == 0:
            return 0
        r_cw, t = self._camera_pose_to_extrinsics(pose, camera)
        cam = self._centers[selected] @ r_cw.T + t
        z = cam[:, 2]
        in_front = z > 1e-3
        u = np.full(len(z), -1.0)
        v = np.full(len(z), -1.0)
        zs = np.where(in_front, z, 1.0)
        u[in_front] = (camera.fx * cam[in_front, 0] / zs[in_front]) + camera.cx
        v[in_front] = (camera.fy * cam[in_front, 1] / zs[in_front]) + camera.cy
        ui = np.round(u).astype(int)
        vi = np.round(v).astype(int)
        in_image = (
            in_front
            & (ui >= 0)
            & (ui < camera.width)
            & (vi >= 0)
            & (vi < camera.height)
        )
        measured = np.zeros(len(z))
        measured[in_image] = depth[vi[in_image], ui[in_image]]
        valid = in_image & (measured > 1e-3)
        sdf = measured - z
        # Only fuse voxels in front of or just behind the surface.
        fuse = valid & (sdf > -self.truncation_m)
        tsdf_new = np.clip(sdf / self.truncation_m, -1.0, 1.0)

        flat_tsdf = self.tsdf.reshape(-1)
        flat_weight = self.weight.reshape(-1)
        fused_idx = selected[fuse]
        w_old = flat_weight[fused_idx]
        w_new = np.minimum(w_old + 1.0, self.max_weight)
        flat_tsdf[fused_idx] = (
            flat_tsdf[fused_idx] * w_old + tsdf_new[fuse]
        ) / np.maximum(w_new, 1.0)
        flat_weight[fused_idx] = w_new
        return int(fuse.sum())

    # ------------------------------------------------------------------
    # Reference path: project the full grid (kept for parity/benchmarks).
    # ------------------------------------------------------------------

    def _integrate_reference(self, depth: np.ndarray, pose: Pose, camera: DepthCamera) -> int:
        r_wb = quat_to_matrix(pose.orientation)
        r_cw = camera._r_cam_body @ r_wb.T
        t = -r_cw @ pose.position
        cam = self._centers @ r_cw.T + t
        z = cam[:, 2]
        in_front = z > 1e-3
        u = np.full(len(z), -1.0)
        v = np.full(len(z), -1.0)
        zs = np.where(in_front, z, 1.0)
        u[in_front] = (camera.fx * cam[in_front, 0] / zs[in_front]) + camera.cx
        v[in_front] = (camera.fy * cam[in_front, 1] / zs[in_front]) + camera.cy
        ui = np.round(u).astype(int)
        vi = np.round(v).astype(int)
        in_image = (
            in_front
            & (ui >= 0)
            & (ui < camera.width)
            & (vi >= 0)
            & (vi < camera.height)
        )
        measured = np.zeros(len(z))
        measured[in_image] = depth[vi[in_image], ui[in_image]]
        valid = in_image & (measured > 1e-3)
        sdf = measured - z
        # Only fuse voxels in front of or just behind the surface.
        fuse = valid & (sdf > -self.truncation_m)
        tsdf_new = np.clip(sdf / self.truncation_m, -1.0, 1.0)

        flat_tsdf = self.tsdf.reshape(-1)
        flat_weight = self.weight.reshape(-1)
        w_old = flat_weight[fuse]
        w_new = np.minimum(w_old + 1.0, self.max_weight)
        flat_tsdf[fuse] = (flat_tsdf[fuse] * w_old + tsdf_new[fuse]) / np.maximum(w_new, 1.0)
        flat_weight[fuse] = w_new
        return int(fuse.sum())

    # ------------------------------------------------------------------

    def world_to_voxel(self, points: np.ndarray) -> np.ndarray:
        """World coordinates -> continuous voxel indices."""
        return (np.asarray(points, dtype=float) - self.origin) / self.voxel_size - 0.5

    def sample(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Trilinear TSDF interpolation at world ``points`` (N, 3).

        Returns (values, valid) where invalid points (outside the grid or
        unobserved) carry value 1.0.
        """
        n = self.resolution
        v = self.world_to_voxel(points)
        v0 = np.floor(v).astype(int)
        frac = v - v0
        valid = np.all((v0 >= 0) & (v0 < n - 1), axis=1)
        v0c = np.clip(v0, 0, n - 2)
        result = np.zeros(len(v))
        weight_seen = np.ones(len(v), dtype=bool)
        for dx in (0, 1):
            for dy in (0, 1):
                for dz in (0, 1):
                    w = (
                        (frac[:, 0] if dx else 1 - frac[:, 0])
                        * (frac[:, 1] if dy else 1 - frac[:, 1])
                        * (frac[:, 2] if dz else 1 - frac[:, 2])
                    )
                    ix, iy, iz = v0c[:, 0] + dx, v0c[:, 1] + dy, v0c[:, 2] + dz
                    result += w * self.tsdf[ix, iy, iz]
                    weight_seen &= self.weight[ix, iy, iz] > 0
        valid &= weight_seen
        return np.where(valid, result, 1.0), valid

    def gradient(self, points: np.ndarray) -> np.ndarray:
        """Central-difference TSDF gradient (surface normal direction)."""
        h = self.voxel_size
        grad = np.zeros((len(points), 3))
        for axis in range(3):
            offset = np.zeros(3)
            offset[axis] = h
            plus, _ = self.sample(points + offset)
            minus, _ = self.sample(points - offset)
            grad[:, axis] = (plus - minus) / (2 * h)
        return grad
