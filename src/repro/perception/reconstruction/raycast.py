"""Volume raycasting: predict the model's depth/normals from a pose.

KinectFusion's *surfel prediction* stage: march camera rays through the
TSDF until the signed distance crosses zero, then refine the crossing by
linear interpolation.  The predicted vertex/normal maps are what ICP aligns
each new frame against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.maths.se3 import Pose
from repro.perception.reconstruction.tsdf import TsdfVolume
from repro.sensors.depth import DepthCamera


@dataclass(frozen=True)
class RaycastResult:
    """Predicted model view from a pose."""

    depth: np.ndarray     # (H, W) metres along camera z, 0 = no surface
    vertices: np.ndarray  # (H, W, 3) world-frame surface points
    normals: np.ndarray   # (H, W, 3) world-frame unit normals
    valid: np.ndarray     # (H, W) bool


def raycast(
    volume: TsdfVolume,
    pose: Pose,
    camera: DepthCamera,
    step_fraction: float = 0.5,
    max_distance: float = 9.0,
    start_distance: float = 0.3,
) -> RaycastResult:
    """March all camera rays through the volume simultaneously.

    Uniform steps of ``step_fraction * truncation`` guarantee no surface
    thinner than the truncation band is skipped; the zero crossing is then
    refined by linear interpolation between the last two samples.
    """
    if not 0.05 <= step_fraction <= 1.0:
        raise ValueError(f"step_fraction out of range: {step_fraction}")
    rays_cam = camera._rays_cam.reshape(-1, 3)
    elongation = np.linalg.norm(rays_cam, axis=1)  # metric dist per unit z
    directions = camera.ray_directions_world(pose).reshape(-1, 3)
    unit_dirs = directions / np.linalg.norm(directions, axis=1, keepdims=True)
    origin = pose.position
    n_rays = len(unit_dirs)
    step = volume.truncation_m * step_fraction

    t = np.full(n_rays, start_distance)
    prev_value = np.ones(n_rays)
    hit_t = np.zeros(n_rays)
    found = np.zeros(n_rays, dtype=bool)
    max_steps = int((max_distance - start_distance) / step) + 1
    for _ in range(max_steps):
        pending = ~found & (t <= max_distance)
        if not np.any(pending):
            break
        idx = np.flatnonzero(pending)
        points = origin + unit_dirs[idx] * t[idx, None]
        values, valid = volume.sample(points)
        pv = prev_value[idx]
        crossed = valid & (pv > 0) & (values <= 0)
        hit_idx = idx[crossed]
        if len(hit_idx) > 0:
            frac = pv[crossed] / np.maximum(pv[crossed] - values[crossed], 1e-9)
            hit_t[hit_idx] = (t[hit_idx] - step) + frac * step
            found[hit_idx] = True
        prev_value[idx] = values
        t[idx] += step

    h, w = camera.height, camera.width
    depth = np.zeros(n_rays)
    vertices = np.zeros((n_rays, 3))
    normals = np.zeros((n_rays, 3))
    if np.any(found):
        points = origin + unit_dirs[found] * hit_t[found, None]
        vertices[found] = points
        grad = volume.gradient(points)
        norm = np.linalg.norm(grad, axis=1, keepdims=True)
        normals[found] = grad / np.maximum(norm, 1e-9)
        depth[found] = hit_t[found] / elongation[found]
    return RaycastResult(
        depth=depth.reshape(h, w),
        vertices=vertices.reshape(h, w, 3),
        normals=normals.reshape(h, w, 3),
        valid=found.reshape(h, w),
    )
