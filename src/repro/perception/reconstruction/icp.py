"""Point-to-plane ICP pose estimation against the model prediction.

KinectFusion's tracking stage: align the new frame's vertex map to the
raycast model via projective data association, minimizing the
point-to-plane error with small-angle Gauss-Newton steps on SE(3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.maths.quaternion import matrix_to_quat, quat_to_matrix
from repro.maths.se3 import Pose, so3_exp, so3_log
from repro.perception.reconstruction.raycast import RaycastResult
from repro.sensors.depth import DepthCamera


@dataclass(frozen=True)
class IcpResult:
    """Outcome of one frame-to-model alignment."""

    pose: Pose
    iterations: int
    mean_residual_m: float
    inlier_fraction: float
    converged: bool


def vertex_map_from_depth(depth: np.ndarray, camera: DepthCamera) -> np.ndarray:
    """Camera-frame vertex map (H, W, 3) from a depth image."""
    return camera._rays_cam * depth[..., None]


def icp_point_to_plane(
    depth: np.ndarray,
    camera: DepthCamera,
    initial_pose: Pose,
    model: RaycastResult,
    model_pose: Pose,
    iterations: int = 8,
    max_correspondence_m: float = 0.25,
    convergence_m: float = 1e-4,
    rotation_prior_weight: float = 0.5,
    translation_prior_weight: float = 0.15,
) -> IcpResult:
    """Align ``depth`` (taken near ``initial_pose``) to the ``model`` view.

    ``model`` was raycast from ``model_pose``; data association projects
    the current frame's points into that view.

    The prior weights (per correspondence) pull the solution toward
    ``initial_pose``: the guess comes from the IMU-aided odometry prior, so
    its *rotation* is trustworthy -- regularizing rotation suppresses the
    in-plane ambiguity of point-to-plane ICP on planar scenes and the
    correlated surface bias of a coarse TSDF.
    """
    vertices_cam = vertex_map_from_depth(depth, camera)
    # Frame normals (camera frame) for normal-agreement gating.
    dx = np.diff(vertices_cam, axis=1, append=vertices_cam[:, -1:])
    dy = np.diff(vertices_cam, axis=0, append=vertices_cam[-1:])
    frame_normals_cam = np.cross(dx, dy).reshape(-1, 3)
    fn_norm = np.linalg.norm(frame_normals_cam, axis=1, keepdims=True)
    frame_normals_cam = frame_normals_cam / np.maximum(fn_norm, 1e-9)
    vertices_cam = vertices_cam.reshape(-1, 3)
    frame_valid = depth.reshape(-1) > 1e-3

    r_cb = camera._r_cam_body
    # Model camera for projective association.
    r_model = quat_to_matrix(model_pose.orientation)
    r_cw_model = r_cb @ r_model.T
    t_model = -r_cw_model @ model_pose.position

    rotation = quat_to_matrix(initial_pose.orientation)
    translation = initial_pose.position.copy()
    model_vertices = model.vertices.reshape(-1, 3)
    model_normals = model.normals.reshape(-1, 3)
    model_valid = model.valid.reshape(-1)

    mean_residual = np.inf
    inlier_fraction = 0.0
    converged = False
    iteration = 0
    for iteration in range(1, iterations + 1):
        # Current frame points -> world (current estimate).
        points_world = (vertices_cam @ r_cb) @ rotation.T + translation
        # Project into the model view for association.
        cam = points_world @ r_cw_model.T + t_model
        z = cam[:, 2]
        ok = frame_valid & (z > 1e-3)
        u = np.round(camera.fx * cam[:, 0] / np.where(ok, z, 1.0) + camera.cx).astype(int)
        v = np.round(camera.fy * cam[:, 1] / np.where(ok, z, 1.0) + camera.cy).astype(int)
        ok &= (u >= 0) & (u < camera.width) & (v >= 0) & (v < camera.height)
        flat = np.where(ok, v * camera.width + u, 0)
        ok &= model_valid[flat]
        q = model_vertices[flat]
        n = model_normals[flat]
        residual = np.einsum("ij,ij->i", points_world - q, n)
        ok &= np.abs(residual) < max_correspondence_m
        # Normal-agreement gating: frame and model normals must align
        # (rejects edge pixels and gross mis-associations).
        frame_normals_world = (frame_normals_cam @ r_cb) @ rotation.T
        agreement = np.abs(np.einsum("ij,ij->i", frame_normals_world, n))
        ok &= agreement > 0.7
        count = int(ok.sum())
        if count < 30:
            break
        p = points_world[ok]
        nn = n[ok]
        r = residual[ok]
        # Huber weights temper the TSDF's correlated surface bias.
        huber_delta = 0.02
        sqrt_w = np.sqrt(
            np.where(np.abs(r) <= huber_delta, 1.0, huber_delta / np.abs(r))
        )
        # Linearize about the point centroid: decouples rotation from
        # translation (rotating about the world origin has huge lever arms
        # that stall damped Gauss-Newton).
        centroid = p.mean(axis=0)
        j = np.hstack([np.cross(p - centroid, nn), nn]) * sqrt_w[:, None]
        r_w = r * sqrt_w
        a = j.T @ j
        b = -j.T @ r_w
        # Prior toward the initial pose (see docstring): penalize the
        # accumulated deviation so it cannot drift across iterations.
        r_guess = quat_to_matrix(initial_pose.orientation)
        rot_dev = so3_log(rotation @ r_guess.T)
        trans_dev = translation - initial_pose.position
        a[:3, :3] += rotation_prior_weight * count * np.eye(3)
        b[:3] += -rotation_prior_weight * count * rot_dev
        a[3:, 3:] += translation_prior_weight * count * np.eye(3)
        b[3:] += -translation_prior_weight * count * trans_dev
        try:
            # Levenberg-style damping keeps sliding directions (planar
            # scenes under-constrain the solve) from exploding the step.
            damping = 1e-4 * np.trace(a) / 6.0 + 1e-9
            twist = np.linalg.solve(a + damping * np.eye(6), b)
        except np.linalg.LinAlgError:
            break
        step_norm = np.linalg.norm(twist)
        if step_norm > 0.3:
            twist = twist * (0.3 / step_norm)
        omega, vel = twist[:3], twist[3:]
        delta_r = so3_exp(omega)
        rotation = delta_r @ rotation
        translation = delta_r @ (translation - centroid) + centroid + vel
        mean_residual = float(np.abs(r).mean())
        inlier_fraction = count / max(int(frame_valid.sum()), 1)
        if np.linalg.norm(twist) < convergence_m:
            converged = True
            break

    pose = Pose(
        position=translation,
        orientation=matrix_to_quat(rotation),
        timestamp=initial_pose.timestamp,
    )
    return IcpResult(
        pose=pose,
        iterations=iteration,
        mean_residual_m=mean_residual if np.isfinite(mean_residual) else 0.0,
        inlier_fraction=inlier_fraction,
        converged=converged,
    )
