"""Surface extraction from the TSDF: surfel cloud export.

ElasticFusion's map is a surfel cloud; this module exports the equivalent
from our TSDF volume by locating zero crossings of the signed distance
along the three axes and refining each by linear interpolation.  Each
surfel carries a position, a normal (TSDF gradient), and a confidence
(integration weight).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perception.reconstruction.tsdf import TsdfVolume


@dataclass(frozen=True)
class SurfelCloud:
    """An extracted surface: positions, normals, confidences."""

    positions: np.ndarray    # (N, 3) world metres
    normals: np.ndarray      # (N, 3) unit vectors
    confidences: np.ndarray  # (N,) integration weights

    def __len__(self) -> int:
        return len(self.positions)

    def surface_area_estimate(self, voxel_size: float) -> float:
        """Crude area estimate: one voxel-face patch per surfel."""
        return len(self.positions) * voxel_size * voxel_size

    def save_ply(self, path: str) -> None:
        """Write an ASCII PLY point cloud (openable in MeshLab etc.)."""
        with open(path, "w") as handle:
            handle.write("ply\nformat ascii 1.0\n")
            handle.write(f"element vertex {len(self.positions)}\n")
            for axis in ("x", "y", "z"):
                handle.write(f"property float {axis}\n")
            for axis in ("nx", "ny", "nz"):
                handle.write(f"property float {axis}\n")
            handle.write("property float confidence\nend_header\n")
            for p, n, c in zip(self.positions, self.normals, self.confidences):
                handle.write(
                    f"{p[0]:.4f} {p[1]:.4f} {p[2]:.4f} "
                    f"{n[0]:.3f} {n[1]:.3f} {n[2]:.3f} {c:.1f}\n"
                )


def extract_surfels(
    volume: TsdfVolume, min_weight: float = 1.0, max_surfels: int = 200_000
) -> SurfelCloud:
    """Extract the zero-crossing surface of a TSDF volume.

    For every pair of axis-adjacent observed voxels whose TSDF values
    change sign, emit one surfel at the linearly interpolated crossing.
    """
    if min_weight <= 0:
        raise ValueError("min_weight must be positive")
    tsdf = volume.tsdf
    weight = volume.weight
    observed = weight >= min_weight
    positions = []
    n = volume.resolution

    for axis in range(3):
        # Values of voxel i and its +axis neighbour.
        sl_lo = [slice(0, n - 1) if a == axis else slice(None) for a in range(3)]
        sl_hi = [slice(1, n) if a == axis else slice(None) for a in range(3)]
        v0 = tsdf[tuple(sl_lo)]
        v1 = tsdf[tuple(sl_hi)]
        ok = observed[tuple(sl_lo)] & observed[tuple(sl_hi)] & (np.sign(v0) != np.sign(v1)) & (
            np.abs(v0 - v1) > 1e-9
        )
        idx = np.argwhere(ok)
        if len(idx) == 0:
            continue
        frac = v0[ok] / (v0[ok] - v1[ok])
        base = idx.astype(float)
        base[:, axis] += frac
        # Voxel index -> world: centers at (i + 0.5) * voxel + origin.
        points = (base + 0.5) * volume.voxel_size + volume.origin
        positions.append(points)

    if not positions:
        return SurfelCloud(
            positions=np.zeros((0, 3)), normals=np.zeros((0, 3)), confidences=np.zeros(0)
        )
    points = np.vstack(positions)
    if len(points) > max_surfels:
        stride = len(points) // max_surfels + 1
        points = points[::stride]
    gradients = volume.gradient(points)
    norms = np.linalg.norm(gradients, axis=1, keepdims=True)
    # Drop surfels whose gradient is degenerate (crossings at the edge of
    # the observed region sample into unobserved neighbours).
    keep = norms[:, 0] > 1e-6
    points = points[keep]
    gradients = gradients[keep]
    norms = norms[keep]
    normals = gradients / norms
    # Confidence: integration weight at the surfel.
    voxel = np.clip(
        np.round(volume.world_to_voxel(points)).astype(int), 0, volume.resolution - 1
    )
    confidences = weight[voxel[:, 0], voxel[:, 1], voxel[:, 2]]
    return SurfelCloud(positions=points, normals=normals, confidences=confidences)


def surface_error_vs_scene(
    cloud: SurfelCloud, camera, samples: int = 2000, seed: int = 0
) -> float:
    """Mean distance from surfels to the analytic scene surface.

    Uses the depth camera's geometry: for each sampled surfel, measure the
    signed distance to the nearest room wall / primitive by analytic
    distance functions.  A quality number for the reconstruction benches.
    """
    if len(cloud) == 0:
        return float("nan")
    rng = np.random.default_rng(seed)
    take = rng.choice(len(cloud), size=min(samples, len(cloud)), replace=False)
    points = cloud.positions[take]
    scene = camera.scene
    h = scene.room_half_extent
    # Distance to the room shell (inside the box).
    wall_distance = np.min(
        np.stack(
            [
                h - np.abs(points[:, 0]),
                h - np.abs(points[:, 1]),
                points[:, 2] - 0.0,
                scene.room_height - points[:, 2],
            ]
        ),
        axis=0,
    )
    distance = np.abs(wall_distance)
    for sphere in scene.spheres:
        d = np.abs(np.linalg.norm(points - sphere.center, axis=1) - sphere.radius)
        distance = np.minimum(distance, d)
    for box in scene.boxes:
        center = (box.minimum + box.maximum) / 2
        half = (box.maximum - box.minimum) / 2
        q = np.abs(points - center) - half
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=1)
        inside = np.minimum(np.max(q, axis=1), 0.0)
        distance = np.minimum(distance, np.abs(outside + inside))
    return float(np.mean(distance))
