"""Perception pipeline components.

Translates the user's physical motion into poses and models of the world
(§II-A of the paper):

- :mod:`repro.perception.vio` -- MSCKF visual-inertial odometry
  (the OpenVINS stand-in): low-frequency, precise head poses;
- :mod:`repro.perception.integrator` -- RK4 IMU integration: high-frequency
  pose estimates between VIO updates;
- :mod:`repro.perception.eye_tracking` -- CNN pupil segmentation
  (the RITnet stand-in);
- :mod:`repro.perception.reconstruction` -- TSDF dense scene reconstruction
  (the ElasticFusion/KinectFusion stand-in).
"""

from repro.perception.integrator import IntegratorState, Rk4Integrator
from repro.perception.vio.msckf import Msckf, MsckfConfig, VioEstimate

__all__ = [
    "IntegratorState",
    "Msckf",
    "MsckfConfig",
    "Rk4Integrator",
    "VioEstimate",
]
