"""IMU propagation of the MSCKF: RK4 mean + linearized covariance.

Error-state dynamics for the local-perturbation convention
``R = R_hat @ Exp(theta)``::

    theta_dot = -[omega]x theta - d_bg - n_g
    p_dot     = d_v
    v_dot     = -R_hat [a]x theta - R_hat d_ba - R_hat n_a
    bg_dot    = n_wg
    ba_dot    = n_wa

The transition matrix is discretized to second order per IMU sample
(dt ~ 2 ms), which is plenty accurate at these rates.
"""

from __future__ import annotations

import numpy as np

from repro.maths.quaternion import quat_to_matrix
from repro.maths.se3 import skew
from repro.perception.integrator import IntegratorState, Rk4Integrator
from repro.perception.vio.state import IMU_DIM, VioState
from repro.sensors.imu import ImuNoise, ImuSample


def propagate(state: VioState, sample: ImuSample, noise: ImuNoise) -> None:
    """Propagate mean and covariance through one IMU sample, in place."""
    dt = sample.timestamp - state.timestamp
    if dt < 0:
        raise ValueError(f"IMU sample predates state: {sample.timestamp} < {state.timestamp}")
    if dt == 0.0:
        return
    omega = sample.gyro - state.gyro_bias
    accel = sample.accel - state.accel_bias
    rotation = quat_to_matrix(state.orientation)

    # --- Covariance (uses the pre-propagation linearization point) -------
    f = np.zeros((IMU_DIM, IMU_DIM))
    f[0:3, 0:3] = -skew(omega)
    f[0:3, 9:12] = -np.eye(3)
    f[3:6, 6:9] = np.eye(3)
    f[6:9, 0:3] = -rotation @ skew(accel)
    f[6:9, 12:15] = -rotation
    phi = np.eye(IMU_DIM) + f * dt + 0.5 * (f @ f) * dt * dt

    g = np.zeros((IMU_DIM, 12))
    g[0:3, 0:3] = -np.eye(3)
    g[6:9, 3:6] = -rotation
    g[9:12, 6:9] = np.eye(3)
    g[12:15, 9:12] = np.eye(3)
    qc = np.diag(
        [noise.gyro_noise_density**2] * 3
        + [noise.accel_noise_density**2] * 3
        + [noise.gyro_bias_walk**2] * 3
        + [noise.accel_bias_walk**2] * 3
    )
    qd = g @ qc @ g.T * dt

    dim = state.dim
    p_ii = state.covariance[:IMU_DIM, :IMU_DIM]
    p_ic = state.covariance[:IMU_DIM, IMU_DIM:]
    state.covariance[:IMU_DIM, :IMU_DIM] = phi @ p_ii @ phi.T + qd
    if dim > IMU_DIM:
        new_cross = phi @ p_ic
        state.covariance[:IMU_DIM, IMU_DIM:] = new_cross
        state.covariance[IMU_DIM:, :IMU_DIM] = new_cross.T
    state.symmetrize()

    # --- Mean (RK4, same scheme as the standalone integrator) -----------
    integrator = Rk4Integrator(
        IntegratorState(
            timestamp=state.timestamp,
            orientation=state.orientation,
            position=state.position,
            velocity=state.velocity,
            gyro_bias=state.gyro_bias,
            accel_bias=state.accel_bias,
        )
    )
    result = integrator.step(sample)
    state.timestamp = result.timestamp
    state.orientation = result.orientation
    state.position = result.position
    state.velocity = result.velocity
