"""EKF measurement machinery: Jacobians, nullspace projection, gating,
the Kalman update, and delayed SLAM-landmark initialization.

These are the linear-algebra kernels Table VI of the paper attributes to
the *MSCKF update* and *SLAM update* tasks (SVD/QR, Gauss-Newton residuals,
Jacobians, nullspace projection, chi-squared check, Cholesky solves).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np
from scipy.stats import chi2 as chi2_dist

from repro.maths.quaternion import quat_to_matrix
from repro.maths.se3 import skew
from repro.perception.vio.state import LANDMARK_DIM, VioState
from repro.perception.vio.tracker import Track
from repro.sensors.camera import CameraIntrinsics


@lru_cache(maxsize=512)
def chi2_threshold(dof: int, confidence: float = 0.95) -> float:
    """Cached inverse chi-squared CDF for gating."""
    if dof < 1:
        raise ValueError(f"dof must be >= 1: {dof}")
    return float(chi2_dist.ppf(confidence, dof))


def feature_jacobians(
    state: VioState,
    track: Track,
    feature_position: np.ndarray,
    intrinsics: CameraIntrinsics,
    baseline_m: float,
    r_cam_body: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Stack residuals and Jacobians for one feature over its clone window.

    Returns ``(r, H_x, H_f)`` with 4 rows per clone (stereo u, v for both
    eyes), or None if no clone in the current window observed the feature.
    """
    rows_r: List[float] = []
    rows_hx: List[np.ndarray] = []
    rows_hf: List[np.ndarray] = []
    dim = state.dim
    window = {clone.clone_id: clone for clone in state.clones}
    for clone_id, (uv_left, uv_right) in sorted(track.observations.items()):
        clone = window.get(clone_id)
        if clone is None:
            continue
        r_wb = quat_to_matrix(clone.orientation)
        y = r_wb.T @ (feature_position - clone.position)  # body frame
        p_base = r_cam_body @ y
        offset = state.clone_offset(clone_id)
        d_theta = r_cam_body @ skew(y)
        d_pos = -r_cam_body @ r_wb.T
        d_feat = r_cam_body @ r_wb.T
        for eye_offset, uv in ((0.0, uv_left), (baseline_m, uv_right)):
            p_cam = p_base.copy()
            p_cam[0] -= eye_offset
            z = p_cam[2]
            if z < 0.05:
                return None
            u_hat = intrinsics.fx * p_cam[0] / z + intrinsics.cx
            v_hat = intrinsics.fy * p_cam[1] / z + intrinsics.cy
            j_proj = np.array(
                [
                    [intrinsics.fx / z, 0.0, -intrinsics.fx * p_cam[0] / z**2],
                    [0.0, intrinsics.fy / z, -intrinsics.fy * p_cam[1] / z**2],
                ]
            )
            h_row = np.zeros((2, dim))
            h_row[:, offset : offset + 3] = j_proj @ d_theta
            h_row[:, offset + 3 : offset + 6] = j_proj @ d_pos
            rows_hx.append(h_row)
            rows_hf.append(j_proj @ d_feat)
            rows_r.extend([uv[0] - u_hat, uv[1] - v_hat])
    if not rows_r:
        return None
    return (np.asarray(rows_r), np.vstack(rows_hx), np.vstack(rows_hf))


def nullspace_project(
    residual: np.ndarray, h_x: np.ndarray, h_f: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Project the measurement onto the left nullspace of ``h_f``.

    This removes the feature error from the system (the defining MSCKF
    step), leaving constraints purely on the clone poses.
    """
    m = h_f.shape[0]
    if m <= LANDMARK_DIM:
        return None
    q_full, _ = np.linalg.qr(h_f, mode="complete")
    nullspace = q_full[:, LANDMARK_DIM:]
    return nullspace.T @ residual, nullspace.T @ h_x


def chi2_gate(
    residual: np.ndarray, h: np.ndarray, covariance: np.ndarray, pixel_sigma: float
) -> bool:
    """Mahalanobis gating: True if the measurement is statistically sane."""
    s = h @ covariance @ h.T + pixel_sigma**2 * np.eye(len(residual))
    try:
        solved = np.linalg.solve(s, residual)
    except np.linalg.LinAlgError:
        return False
    gamma = float(residual @ solved)
    return gamma < chi2_threshold(len(residual))


def compress_measurements(
    residual: np.ndarray, h: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Thin-QR measurement compression when rows exceed the state dim.

    An orthogonal transform preserves the isotropic measurement noise, so
    the compressed system is statistically equivalent.
    """
    if h.shape[0] <= h.shape[1]:
        return residual, h
    q, r_mat = np.linalg.qr(h, mode="reduced")
    return q.T @ residual, r_mat


def ekf_update(
    state: VioState, residual: np.ndarray, h: np.ndarray, pixel_sigma: float
) -> None:
    """Joseph-form EKF update, applied to the state in place."""
    if h.shape != (len(residual), state.dim):
        raise ValueError(f"H shape {h.shape} inconsistent with r ({len(residual)},) and dim {state.dim}")
    residual, h = compress_measurements(residual, h)
    p = state.covariance
    r_noise = pixel_sigma**2 * np.eye(len(residual))
    s = h @ p @ h.T + r_noise
    try:
        k = np.linalg.solve(s.T, (p @ h.T).T).T  # K = P H^T S^-1
    except np.linalg.LinAlgError:
        return
    delta = k @ residual
    i_kh = np.eye(state.dim) - k @ h
    state.covariance = i_kh @ p @ i_kh.T + k @ r_noise @ k.T
    state.inject(delta)
    state.symmetrize()


def initialize_landmark(
    state: VioState,
    feature_id: int,
    position: np.ndarray,
    residual: np.ndarray,
    h_x: np.ndarray,
    h_f: np.ndarray,
    pixel_sigma: float,
) -> bool:
    """Delayed initialization of an EKF-SLAM landmark.

    QR-split ``h_f = [Q_f Q_n] [R_f; 0]``: the ``Q_f`` rows determine the
    landmark (giving its covariance and cross-covariance consistently);
    the ``Q_n`` rows are a feature-free MSCKF update applied first.
    Returns False (and adds nothing) if the geometry is degenerate.
    """
    m = h_f.shape[0]
    if m < LANDMARK_DIM:
        return False
    q_full, r_full = np.linalg.qr(h_f, mode="complete")
    r_f = r_full[:LANDMARK_DIM, :]
    if np.min(np.abs(np.diag(r_f))) < 1e-6:
        return False
    q_f = q_full[:, :LANDMARK_DIM]
    q_n = q_full[:, LANDMARK_DIM:]

    # MSCKF-style update from the nullspace rows (uses the pre-init state).
    if q_n.shape[1] > 0:
        r_null = q_n.T @ residual
        h_null = q_n.T @ h_x
        if chi2_gate(r_null, h_null, state.covariance, pixel_sigma):
            ekf_update(state, r_null, h_null, pixel_sigma)

    # Landmark block: f_err = R_f^-1 (Q_f^T r - Q_f^T H_x dx - noise).
    p = state.covariance
    old_dim = state.dim
    rf_inv = np.linalg.inv(r_f)
    h_proj = q_f.T @ h_x                       # (3, old_dim)
    p_xf = -p @ h_proj.T @ rf_inv.T            # (old_dim, 3)
    p_ff = rf_inv @ (h_proj @ p @ h_proj.T + pixel_sigma**2 * np.eye(LANDMARK_DIM)) @ rf_inv.T
    mean_correction = rf_inv @ (q_f.T @ residual)

    new_cov = np.zeros((old_dim + LANDMARK_DIM, old_dim + LANDMARK_DIM))
    new_cov[:old_dim, :old_dim] = p
    new_cov[:old_dim, old_dim:] = p_xf
    new_cov[old_dim:, :old_dim] = p_xf.T
    new_cov[old_dim:, old_dim:] = p_ff
    state.covariance = new_cov
    state.landmarks[feature_id] = np.asarray(position, dtype=float) + mean_correction
    state.symmetrize()
    return True


def landmark_jacobians(
    state: VioState,
    feature_id: int,
    clone_id: int,
    uv_left: np.ndarray,
    uv_right: np.ndarray,
    intrinsics: CameraIntrinsics,
    baseline_m: float,
    r_cam_body: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Residual + Jacobian for one SLAM landmark seen from one clone."""
    feature_position = state.landmarks[feature_id]
    window = {clone.clone_id: clone for clone in state.clones}
    clone = window.get(clone_id)
    if clone is None:
        return None
    r_wb = quat_to_matrix(clone.orientation)
    y = r_wb.T @ (feature_position - clone.position)
    p_base = r_cam_body @ y
    clone_offset = state.clone_offset(clone_id)
    feat_offset = state.landmark_offset(feature_id)
    d_theta = r_cam_body @ skew(y)
    d_pos = -r_cam_body @ r_wb.T
    d_feat = r_cam_body @ r_wb.T
    rows_r: List[float] = []
    rows_h: List[np.ndarray] = []
    for eye_offset, uv in ((0.0, uv_left), (baseline_m, uv_right)):
        p_cam = p_base.copy()
        p_cam[0] -= eye_offset
        z = p_cam[2]
        if z < 0.05:
            return None
        u_hat = intrinsics.fx * p_cam[0] / z + intrinsics.cx
        v_hat = intrinsics.fy * p_cam[1] / z + intrinsics.cy
        j_proj = np.array(
            [
                [intrinsics.fx / z, 0.0, -intrinsics.fx * p_cam[0] / z**2],
                [0.0, intrinsics.fy / z, -intrinsics.fy * p_cam[1] / z**2],
            ]
        )
        h_row = np.zeros((2, state.dim))
        h_row[:, clone_offset : clone_offset + 3] = j_proj @ d_theta
        h_row[:, clone_offset + 3 : clone_offset + 6] = j_proj @ d_pos
        h_row[:, feat_offset : feat_offset + 3] = j_proj @ d_feat
        rows_h.append(h_row)
        rows_r.extend([uv[0] - u_hat, uv[1] - v_hat])
    return np.asarray(rows_r), np.vstack(rows_h)
