"""EKF-SLAM visual-inertial odometry: the alternative implementation slot.

Table II lists two interchangeable VIO implementations (OpenVINS*,
Kimera-VIO).  This module fills the second slot with a structurally
different filter: **no clone window and no nullspace projection** --
every tracked feature becomes a SLAM landmark in the state, updated
directly on every observation (classic EKF-SLAM with delayed landmark
initialization).

Compared to the MSCKF this trades:

- memory/compute: state grows with the landmark budget, updates are
  O(landmarks^2) instead of O(window^2);
- accuracy: landmarks persist, so loopy trajectories drift less, but
  linearization errors accumulate in long-lived landmarks.

It reuses the MSCKF's propagation, triangulation, and update machinery --
which is exactly why the runtime treats the two as drop-in alternatives.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, List, Optional

import numpy as np

from repro.maths.se3 import Pose
from repro.perception.vio.msckf import MsckfConfig, VioEstimate
from repro.perception.vio.state import VioState
from repro.perception.vio.tracker import FeatureTracker
from repro.perception.vio.triangulation import CloneObservation, triangulate
from repro.perception.vio.update import (
    chi2_gate,
    ekf_update,
    feature_jacobians,
    initialize_landmark,
    landmark_jacobians,
)
from repro.perception.vio import propagation
from repro.sensors.camera import CameraFrame, CameraIntrinsics
from repro.sensors.imu import ImuSample

TASK_NAMES = (
    "feature_detection",
    "feature_matching",
    "landmark_initialization",
    "slam_update",
    "map_management",
    "other",
)


class EkfSlamVio:
    """Stereo EKF-SLAM odometry (the Kimera-VIO slot of Table II).

    Exposes the same ``process_imu`` / ``process_frame`` / ``estimate``
    interface as :class:`~repro.perception.vio.msckf.Msckf`, so either can
    back the VIO plugin.
    """

    def __init__(
        self,
        config: MsckfConfig,
        intrinsics: CameraIntrinsics,
        baseline_m: float,
        initial_pose: Pose,
        initial_velocity: Optional[np.ndarray] = None,
        init_track_length: int = 3,
    ) -> None:
        self.config = config
        self.intrinsics = intrinsics
        self.baseline_m = baseline_m
        self.init_track_length = init_track_length
        self.r_cam_body = np.array([[0.0, -1.0, 0.0], [0.0, 0.0, -1.0], [1.0, 0.0, 0.0]])
        self.state = VioState(
            timestamp=initial_pose.timestamp,
            orientation=initial_pose.orientation.copy(),
            position=initial_pose.position.copy(),
            velocity=(
                np.zeros(3) if initial_velocity is None else np.asarray(initial_velocity, dtype=float)
            ),
        )
        self.tracker = FeatureTracker(config.max_features)
        self.task_times: Dict[str, float] = defaultdict(float)
        self._landmark_last_seen: Dict[int, int] = {}
        # Track observations die with the per-frame transient clone, so
        # track maturity is counted separately.
        self._track_age: Dict[int, int] = {}
        self._frame_count = 0

    @contextmanager
    def _timed(self, task: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.task_times[task] += time.perf_counter() - start

    def task_breakdown(self) -> Dict[str, float]:
        """Accumulated seconds per task."""
        return {name: self.task_times.get(name, 0.0) for name in TASK_NAMES}

    # ------------------------------------------------------------------

    def process_imu(self, sample: ImuSample) -> None:
        """Propagate the filter through one IMU sample."""
        with self._timed("other"):
            propagation.propagate(self.state, sample, self.config.noise)

    def process_frame(self, frame: CameraFrame) -> VioEstimate:
        """One visual update: SLAM updates + delayed initializations."""
        state = self.state
        config = self.config
        self._frame_count += 1

        # A single transient clone anchors this frame's observations
        # (EKF-SLAM needs the current camera pose in the error state).
        with self._timed("other"):
            clone = state.augment_clone()

        with self._timed("feature_matching"):
            _, lost = self.tracker.match(frame, clone.clone_id)
            for track in lost:
                self._track_age.pop(track.feature_id, None)
            for feature_id in self.tracker.active:
                self._track_age[feature_id] = self._track_age.get(feature_id, 0) + 1

        with self._timed("feature_detection"):
            self.tracker.detect(frame, clone.clone_id, exclude=set(state.landmarks))
            for feature_id in self.tracker.active:
                self._track_age.setdefault(feature_id, 1)

        # SLAM update: every in-state landmark observed this frame.
        with self._timed("slam_update"):
            stacked_r: List[np.ndarray] = []
            stacked_h: List[np.ndarray] = []
            for feature_id in state.landmark_ids():
                observation = frame.observations.get(feature_id)
                if observation is None:
                    continue
                u_l, v_l, u_r, v_r = observation
                jac = landmark_jacobians(
                    state, feature_id, clone.clone_id,
                    np.array([u_l, v_l]), np.array([u_r, v_r]),
                    self.intrinsics, self.baseline_m, self.r_cam_body,
                )
                if jac is None:
                    continue
                residual, h = jac
                if not chi2_gate(residual, h, state.covariance, config.pixel_sigma):
                    continue
                stacked_r.append(residual)
                stacked_h.append(h)
                self._landmark_last_seen[feature_id] = self._frame_count
            if stacked_r:
                ekf_update(
                    state, np.concatenate(stacked_r), np.vstack(stacked_h), config.pixel_sigma
                )

        # Delayed initialization: tracks long enough to triangulate become
        # landmarks (up to the budget).
        with self._timed("landmark_initialization"):
            budget = config.max_slam_landmarks * 3  # EKF-SLAM carries more
            candidates = [
                feature_id
                for feature_id in list(self.tracker.active)
                if self._track_age.get(feature_id, 0) >= self.init_track_length
                and feature_id in frame.observations
            ]
            for feature_id in candidates:
                if len(state.landmarks) >= budget:
                    break
                track = self.tracker.pop(feature_id)
                result = self._triangulate(track)
                if result is None or result.mean_reprojection_px > config.max_triangulation_error_px:
                    continue
                jac = feature_jacobians(
                    state, track, result.position, self.intrinsics, self.baseline_m, self.r_cam_body
                )
                if jac is None:
                    continue
                residual, h_x, h_f = jac
                if initialize_landmark(
                    state, feature_id, result.position, residual, h_x, h_f, config.pixel_sigma
                ):
                    self._landmark_last_seen[feature_id] = self._frame_count
                self._track_age.pop(feature_id, None)

        # Map management: retire stale landmarks, drop the transient clone.
        with self._timed("map_management"):
            for feature_id in list(state.landmarks):
                if self._frame_count - self._landmark_last_seen.get(feature_id, 0) > config.slam_stale_frames:
                    state.remove_landmark(feature_id)
                    self._landmark_last_seen.pop(feature_id, None)
            state.marginalize_clone(clone.clone_id)
            self.tracker.drop_clone(clone.clone_id)

        return self.estimate()

    # ------------------------------------------------------------------

    def _triangulate(self, track):
        window = {c.clone_id: c for c in self.state.clones}
        observations = [
            CloneObservation(
                orientation=window[cid].orientation,
                position=window[cid].position,
                uv_left=uv_l,
                uv_right=uv_r,
            )
            for cid, (uv_l, uv_r) in sorted(track.observations.items())
            if cid in window
        ]
        # Transient clones vanish each frame, so usually only the newest
        # observation survives -- stereo triangulation handles it.
        if not observations:
            return None
        return triangulate(
            observations, self.intrinsics, self.baseline_m, self.r_cam_body,
            pixel_sigma=self.config.pixel_sigma,
        )

    def estimate(self) -> VioEstimate:
        """Snapshot the current filter output (same type as the MSCKF)."""
        state = self.state
        position_var = np.diag(state.covariance)[3:6]
        return VioEstimate(
            timestamp=state.timestamp,
            pose=state.pose(),
            velocity=state.velocity.copy(),
            gyro_bias=state.gyro_bias.copy(),
            accel_bias=state.accel_bias.copy(),
            position_sigma=float(np.sqrt(np.maximum(position_var, 0.0).sum())),
            tracked_features=len(self.tracker.active),
            slam_landmarks=len(state.landmarks),
        )
