"""Feature triangulation: linear initialization + Gauss-Newton refinement.

Given a feature's stereo observations from several cloned camera poses,
recover its world position.  The linear stage intersects back-projected
rays in a least-squares sense; Gauss-Newton then minimizes stereo
reprojection error (the SVD / Gauss-Newton / Jacobian work the paper's
Table VI attributes to *feature initialization*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.maths.quaternion import quat_to_matrix
from repro.sensors.camera import CameraIntrinsics


@dataclass(frozen=True)
class CloneObservation:
    """One stereo observation of a feature from one cloned pose."""

    orientation: np.ndarray  # clone body-to-world quaternion
    position: np.ndarray     # clone position (world)
    uv_left: np.ndarray      # (2,) pixels
    uv_right: np.ndarray     # (2,) pixels


@dataclass(frozen=True)
class TriangulationResult:
    """A triangulated feature position and its fit quality."""

    position: np.ndarray        # world (3,)
    mean_reprojection_px: float
    converged: bool
    jtj: np.ndarray             # Gauss-Newton normal matrix (3, 3)


def _camera_pose(
    orientation: np.ndarray, position: np.ndarray, r_cam_body: np.ndarray, eye_offset: float
) -> Tuple[np.ndarray, np.ndarray]:
    """(R_cw, t) such that p_cam = R_cw @ p_world + t for this eye."""
    r_wb = quat_to_matrix(orientation)
    r_cw = r_cam_body @ r_wb.T
    t = -r_cw @ position
    t[0] -= eye_offset
    return r_cw, t


def triangulate(
    observations: List[CloneObservation],
    intrinsics: CameraIntrinsics,
    baseline_m: float,
    r_cam_body: np.ndarray,
    max_iterations: int = 5,
    pixel_sigma: float = 1.0,
) -> Optional[TriangulationResult]:
    """Triangulate from >=1 stereo observation; None if degenerate."""
    if not observations:
        return None
    rows_a: List[np.ndarray] = []
    rows_b: List[float] = []
    cams: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for obs in observations:
        for eye_offset, uv in ((0.0, obs.uv_left), (baseline_m, obs.uv_right)):
            r_cw, t = _camera_pose(obs.orientation, obs.position, r_cam_body, eye_offset)
            x = (uv[0] - intrinsics.cx) / intrinsics.fx
            y = (uv[1] - intrinsics.cy) / intrinsics.fy
            # Linear DLT rows: x * (r3 p + t3) = r1 p + t1, etc.
            rows_a.append(x * r_cw[2] - r_cw[0])
            rows_b.append(t[0] - x * t[2])
            rows_a.append(y * r_cw[2] - r_cw[1])
            rows_b.append(t[1] - y * t[2])
            cams.append((r_cw, t, np.asarray(uv, dtype=float)))
    a = np.vstack(rows_a)
    b = np.asarray(rows_b)
    solution, _residuals, rank, _sv = np.linalg.lstsq(a, b, rcond=None)
    if rank < 3:
        return None
    point = solution

    # Gauss-Newton refinement on reprojection error.
    converged = False
    jtj = np.eye(3)
    for _ in range(max_iterations):
        residuals = []
        jacobians = []
        for r_cw, t, uv in cams:
            p_cam = r_cw @ point + t
            if p_cam[2] < 0.05:
                return None
            z = p_cam[2]
            u_hat = intrinsics.fx * p_cam[0] / z + intrinsics.cx
            v_hat = intrinsics.fy * p_cam[1] / z + intrinsics.cy
            residuals.append([uv[0] - u_hat, uv[1] - v_hat])
            j_proj = np.array(
                [
                    [intrinsics.fx / z, 0.0, -intrinsics.fx * p_cam[0] / z**2],
                    [0.0, intrinsics.fy / z, -intrinsics.fy * p_cam[1] / z**2],
                ]
            )
            jacobians.append(j_proj @ r_cw)
        r = np.concatenate(residuals)
        j = np.vstack(jacobians)
        jtj = j.T @ j
        try:
            delta = np.linalg.solve(jtj + 1e-9 * np.eye(3), j.T @ r)
        except np.linalg.LinAlgError:
            return None
        point = point + delta
        if np.linalg.norm(delta) < 1e-6:
            converged = True
            break

    # Final reprojection error.
    errors = []
    for r_cw, t, uv in cams:
        p_cam = r_cw @ point + t
        if p_cam[2] < 0.05:
            return None
        u_hat = intrinsics.fx * p_cam[0] / p_cam[2] + intrinsics.cx
        v_hat = intrinsics.fy * p_cam[1] / p_cam[2] + intrinsics.cy
        errors.append(np.hypot(uv[0] - u_hat, uv[1] - v_hat))
    mean_error = float(np.mean(errors))
    if not np.all(np.isfinite(point)):
        return None
    return TriangulationResult(
        position=point,
        mean_reprojection_px=mean_error,
        converged=converged,
        jtj=jtj / max(pixel_sigma**2, 1e-12),
    )
