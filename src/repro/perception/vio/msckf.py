"""The top-level MSCKF filter (OpenVINS stand-in).

Orchestrates propagation, stochastic cloning, tracking, triangulation,
MSCKF and SLAM updates, and marginalization -- and *times each task* with
``time.perf_counter`` so the Table VI task breakdown can be measured
directly from this implementation.

Task names follow the paper's Table VI rows:
``feature_detection``, ``feature_matching``, ``feature_initialization``,
``msckf_update``, ``slam_update``, ``marginalization``, ``other``.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.maths.se3 import Pose
from repro.perception.vio.state import VioState
from repro.perception.vio.tracker import FeatureTracker, Track
from repro.perception.vio.triangulation import CloneObservation, triangulate
from repro.perception.vio.update import (
    chi2_gate,
    ekf_update,
    feature_jacobians,
    initialize_landmark,
    landmark_jacobians,
    nullspace_project,
)
from repro.perception.vio import propagation
from repro.sensors.camera import CameraFrame, CameraIntrinsics
from repro.sensors.imu import ImuNoise, ImuSample

TASK_NAMES = (
    "feature_detection",
    "feature_matching",
    "feature_initialization",
    "msckf_update",
    "slam_update",
    "marginalization",
    "other",
)


@dataclass(frozen=True)
class MsckfConfig:
    """Filter tuning knobs.

    The two presets realize the §V.E accuracy/performance trade-off the
    paper describes ("number of tracked points, SLAM features, etc."):
    ``standard`` tracks fewer points, ``high_accuracy`` roughly doubles
    the visual workload for lower drift.
    """

    max_clones: int = 11
    max_features: int = 40
    max_slam_landmarks: int = 8
    slam_promotion_length: int = 8
    slam_stale_frames: int = 10
    min_update_track_length: int = 2
    max_msckf_features_per_update: int = 20
    max_triangulation_error_px: float = 4.0
    pixel_sigma: float = 1.0
    noise: ImuNoise = field(default_factory=ImuNoise)

    def __post_init__(self) -> None:
        if self.max_clones < 3:
            raise ValueError(f"max_clones must be >= 3: {self.max_clones}")
        if self.slam_promotion_length > self.max_clones:
            raise ValueError("slam_promotion_length cannot exceed max_clones")

    @staticmethod
    def standard() -> "MsckfConfig":
        """The paper's lower-accuracy / cheaper setting."""
        return MsckfConfig(max_features=24, max_slam_landmarks=6)

    @staticmethod
    def high_accuracy() -> "MsckfConfig":
        """The paper's higher-accuracy / ~1.5x-cost setting."""
        return MsckfConfig(max_features=40, max_slam_landmarks=10, max_msckf_features_per_update=28)


@dataclass(frozen=True)
class VioEstimate:
    """The filter output published on the slow-pose stream."""

    timestamp: float
    pose: Pose
    velocity: np.ndarray
    gyro_bias: np.ndarray
    accel_bias: np.ndarray
    position_sigma: float
    tracked_features: int
    slam_landmarks: int


class Msckf:
    """Stereo MSCKF visual-inertial odometry."""

    def __init__(
        self,
        config: MsckfConfig,
        intrinsics: CameraIntrinsics,
        baseline_m: float,
        initial_pose: Pose,
        initial_velocity: Optional[np.ndarray] = None,
    ) -> None:
        self.config = config
        self.intrinsics = intrinsics
        self.baseline_m = baseline_m
        # Body (x fwd, y left, z up) -> camera (x right, y down, z fwd);
        # must match the sensor rig's convention.
        self.r_cam_body = np.array([[0.0, -1.0, 0.0], [0.0, 0.0, -1.0], [1.0, 0.0, 0.0]])
        self.state = VioState(
            timestamp=initial_pose.timestamp,
            orientation=initial_pose.orientation.copy(),
            position=initial_pose.position.copy(),
            velocity=np.zeros(3) if initial_velocity is None else np.asarray(initial_velocity, dtype=float),
        )
        self.tracker = FeatureTracker(config.max_features)
        self.task_times: Dict[str, float] = defaultdict(float)
        self._slam_last_seen: Dict[int, int] = {}
        self._retired_slam_ids: set[int] = set()
        self._frame_count = 0

    # ------------------------------------------------------------------

    @contextmanager
    def _timed(self, task: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.task_times[task] += time.perf_counter() - start

    def task_breakdown(self) -> Dict[str, float]:
        """Accumulated seconds per task (Table VI measurement)."""
        return {name: self.task_times.get(name, 0.0) for name in TASK_NAMES}

    # ------------------------------------------------------------------

    def process_imu(self, sample: ImuSample) -> None:
        """Propagate the filter through one IMU sample."""
        with self._timed("other"):
            propagation.propagate(self.state, sample, self.config.noise)

    def process_frame(self, frame: CameraFrame) -> VioEstimate:
        """Run one full visual update; returns the new estimate."""
        state = self.state
        config = self.config
        self._frame_count += 1

        with self._timed("other"):
            clone = state.augment_clone()

        with self._timed("feature_matching"):
            _, lost_tracks = self.tracker.match(frame, clone.clone_id)

        with self._timed("feature_detection"):
            excluded = set(state.landmarks) | self._retired_slam_ids
            self.tracker.detect(frame, clone.clone_id, exclude=excluded)

        # Select tracks to spend on the MSCKF update: retired tracks plus
        # tracks whose window is saturated.
        update_candidates: List[Track] = [
            t for t in lost_tracks if t.length >= config.min_update_track_length
        ]
        saturated = [
            feature_id
            for feature_id, track in self.tracker.active.items()
            if track.length >= config.max_clones
        ]
        for feature_id in saturated:
            update_candidates.append(self.tracker.pop(feature_id))
        update_candidates = update_candidates[: config.max_msckf_features_per_update]

        # SLAM promotion candidates: long, still-active tracks.
        promotions: List[Track] = []
        if len(state.landmarks) < config.max_slam_landmarks:
            for feature_id, track in list(self.tracker.active.items()):
                if track.length >= config.slam_promotion_length:
                    promotions.append(self.tracker.pop(feature_id))
                    if len(state.landmarks) + len(promotions) >= config.max_slam_landmarks:
                        break

        # Triangulate both candidate sets (feature initialization).
        with self._timed("feature_initialization"):
            triangulated = {}
            for track in update_candidates + promotions:
                result = self._triangulate_track(track)
                if result is not None and result.mean_reprojection_px <= config.max_triangulation_error_px:
                    triangulated[track.feature_id] = result

        # MSCKF update: stack nullspace-projected constraints.
        with self._timed("msckf_update"):
            stacked_r: List[np.ndarray] = []
            stacked_h: List[np.ndarray] = []
            for track in update_candidates:
                result = triangulated.get(track.feature_id)
                if result is None:
                    continue
                jac = feature_jacobians(
                    state, track, result.position, self.intrinsics, self.baseline_m, self.r_cam_body
                )
                if jac is None:
                    continue
                residual, h_x, h_f = jac
                projected = nullspace_project(residual, h_x, h_f)
                if projected is None:
                    continue
                r0, h0 = projected
                if not chi2_gate(r0, h0, state.covariance, config.pixel_sigma):
                    continue
                stacked_r.append(r0)
                stacked_h.append(h0)
            if stacked_r:
                ekf_update(state, np.concatenate(stacked_r), np.vstack(stacked_h), config.pixel_sigma)

        # SLAM: delayed initialization of promoted tracks, then updates of
        # existing landmarks observed this frame.
        with self._timed("feature_initialization"):
            for track in promotions:
                result = triangulated.get(track.feature_id)
                if result is None:
                    self._retired_slam_ids.add(track.feature_id)
                    continue
                jac = feature_jacobians(
                    state, track, result.position, self.intrinsics, self.baseline_m, self.r_cam_body
                )
                if jac is None:
                    self._retired_slam_ids.add(track.feature_id)
                    continue
                residual, h_x, h_f = jac
                if initialize_landmark(
                    state, track.feature_id, result.position, residual, h_x, h_f, config.pixel_sigma
                ):
                    self._slam_last_seen[track.feature_id] = self._frame_count
                else:
                    self._retired_slam_ids.add(track.feature_id)

        with self._timed("slam_update"):
            slam_r: List[np.ndarray] = []
            slam_h: List[np.ndarray] = []
            for feature_id in state.landmark_ids():
                obs = frame.observations.get(feature_id)
                if obs is None:
                    continue
                u_l, v_l, u_r, v_r = obs
                jac = landmark_jacobians(
                    state,
                    feature_id,
                    clone.clone_id,
                    np.array([u_l, v_l]),
                    np.array([u_r, v_r]),
                    self.intrinsics,
                    self.baseline_m,
                    self.r_cam_body,
                )
                if jac is None:
                    continue
                residual, h = jac
                if not chi2_gate(residual, h, state.covariance, config.pixel_sigma):
                    continue
                slam_r.append(residual)
                slam_h.append(h)
                self._slam_last_seen[feature_id] = self._frame_count
            if slam_r:
                ekf_update(state, np.concatenate(slam_r), np.vstack(slam_h), config.pixel_sigma)

        # Marginalization: bound the clone window, prune stale landmarks.
        with self._timed("marginalization"):
            while len(state.clones) > config.max_clones:
                oldest = state.clones[0].clone_id
                state.marginalize_clone(oldest)
                self.tracker.drop_clone(oldest)
            for feature_id in list(state.landmarks):
                last_seen = self._slam_last_seen.get(feature_id, 0)
                if self._frame_count - last_seen > config.slam_stale_frames:
                    state.remove_landmark(feature_id)
                    self._slam_last_seen.pop(feature_id, None)
                    self._retired_slam_ids.add(feature_id)

        return self.estimate()

    # ------------------------------------------------------------------

    def _triangulate_track(self, track: Track):
        window = {c.clone_id: c for c in self.state.clones}
        observations = [
            CloneObservation(
                orientation=window[clone_id].orientation,
                position=window[clone_id].position,
                uv_left=uv_l,
                uv_right=uv_r,
            )
            for clone_id, (uv_l, uv_r) in sorted(track.observations.items())
            if clone_id in window
        ]
        if not observations:
            return None
        return triangulate(
            observations,
            self.intrinsics,
            self.baseline_m,
            self.r_cam_body,
            pixel_sigma=self.config.pixel_sigma,
        )

    def estimate(self) -> VioEstimate:
        """Snapshot the current filter output."""
        state = self.state
        position_var = np.diag(state.covariance)[3:6]
        return VioEstimate(
            timestamp=state.timestamp,
            pose=state.pose(),
            velocity=state.velocity.copy(),
            gyro_bias=state.gyro_bias.copy(),
            accel_bias=state.accel_bias.copy(),
            position_sigma=float(np.sqrt(np.maximum(position_var, 0.0).sum())),
            tracked_features=len(self.tracker.active),
            slam_landmarks=len(state.landmarks),
        )
