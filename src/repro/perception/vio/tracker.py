"""Feature tracking front-end.

A real front-end (KLT over FAST corners in OpenVINS) detects features and
matches them across frames.  Our synthetic camera already associates
observations by landmark id, so the tracker's job is bookkeeping with the
same semantics: maintain a budget of active tracks, extend tracks that
re-appear (*feature matching*), adopt new ids when below budget (*feature
detection*), and retire tracks that vanish (these feed the MSCKF update).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.sensors.camera import CameraFrame


@dataclass
class Track:
    """Observation history of one feature across the clone window.

    ``observations`` maps clone_id -> (uv_left, uv_right).
    """

    feature_id: int
    observations: Dict[int, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Number of clones this feature was observed from."""
        return len(self.observations)

    def add(self, clone_id: int, uv_left: np.ndarray, uv_right: np.ndarray) -> None:
        """Record the observation made at ``clone_id``."""
        self.observations[clone_id] = (
            np.asarray(uv_left, dtype=float),
            np.asarray(uv_right, dtype=float),
        )

    def drop_clone(self, clone_id: int) -> None:
        """Forget the observation from a marginalized clone."""
        self.observations.pop(clone_id, None)


@dataclass
class TrackerReport:
    """What one frame did to the track table."""

    matched: int
    detected: int
    lost: List[Track]


class FeatureTracker:
    """Budgeted track table over the synthetic camera's feature ids."""

    def __init__(self, max_features: int) -> None:
        if max_features < 4:
            raise ValueError(f"max_features must be >= 4: {max_features}")
        self.max_features = max_features
        self.active: Dict[int, Track] = {}

    def match(self, frame: CameraFrame, clone_id: int) -> Tuple[int, List[Track]]:
        """Extend active tracks that re-appear; retire those that vanished.

        Returns (number matched, retired tracks).  Retired tracks feed the
        MSCKF update.
        """
        seen = frame.observations
        matched = 0
        lost: List[Track] = []
        for feature_id in list(self.active):
            if feature_id in seen:
                u_l, v_l, u_r, v_r = seen[feature_id]
                self.active[feature_id].add(clone_id, np.array([u_l, v_l]), np.array([u_r, v_r]))
                matched += 1
            else:
                lost.append(self.active.pop(feature_id))
        return matched, lost

    def detect(
        self, frame: CameraFrame, clone_id: int, exclude: set[int] = frozenset()
    ) -> int:
        """Adopt new feature ids up to the budget; returns the count adopted.

        ``exclude`` holds ids owned elsewhere (e.g. promoted SLAM
        landmarks) that must not be re-adopted as short tracks.
        """
        detected = 0
        for feature_id, (u_l, v_l, u_r, v_r) in frame.observations.items():
            if len(self.active) >= self.max_features:
                break
            if feature_id in self.active or feature_id in exclude:
                continue
            track = Track(feature_id)
            track.add(clone_id, np.array([u_l, v_l]), np.array([u_r, v_r]))
            self.active[feature_id] = track
            detected += 1
        return detected

    def process_frame(self, frame: CameraFrame, clone_id: int) -> TrackerReport:
        """Match then detect in one call (convenience wrapper)."""
        matched, lost = self.match(frame, clone_id)
        detected = self.detect(frame, clone_id)
        return TrackerReport(matched=matched, detected=detected, lost=lost)

    def pop(self, feature_id: int) -> Track:
        """Remove and return an active track (e.g. when spent on an update)."""
        return self.active.pop(feature_id)

    def drop_clone(self, clone_id: int) -> None:
        """Forget a marginalized clone's observations in every track."""
        for track in self.active.values():
            track.drop_clone(clone_id)
