"""MSCKF visual-inertial odometry (the OpenVINS stand-in).

A stereo multi-state-constraint Kalman filter with:

- RK4 mean propagation and first-order covariance propagation on the
  15-dimensional IMU error state;
- a sliding window of cloned camera poses (stochastic cloning);
- MSCKF nullspace-projected updates from mature feature tracks;
- EKF-SLAM landmarks for long-lived features (delayed initialization);
- chi-squared gating and marginalization of old clones.

The top-level :class:`repro.perception.vio.msckf.Msckf` times each of the
algorithmic tasks the paper's Table VI names (feature detection, matching,
initialization, MSCKF update, SLAM update, marginalization) so the task
breakdown can be measured from this implementation.
"""

from repro.perception.vio.msckf import Msckf, MsckfConfig, VioEstimate
from repro.perception.vio.state import VioState

__all__ = ["Msckf", "MsckfConfig", "VioEstimate", "VioState"]
