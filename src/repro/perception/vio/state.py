"""MSCKF filter state: IMU state + clone window + SLAM landmarks.

Error-state ordering (all errors are minimal local perturbations):

====================  =========  ==========================================
block                 dimension  meaning
====================  =========  ==========================================
theta                 3          attitude error, R = R_hat @ Exp(theta)
p                     3          position error (world)
v                     3          velocity error (world)
bg                    3          gyro bias error
ba                    3          accel bias error
clone_i (theta, p)    6 each     sliding-window camera poses
landmark_j            3 each     EKF-SLAM feature positions (world)
====================  =========  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.maths.quaternion import quat_exp, quat_multiply, quat_normalize
from repro.maths.se3 import Pose

IMU_DIM = 15
CLONE_DIM = 6
LANDMARK_DIM = 3


@dataclass
class CloneState:
    """One cloned camera pose in the sliding window."""

    clone_id: int
    timestamp: float
    orientation: np.ndarray  # body-to-world quaternion at clone time
    position: np.ndarray


@dataclass
class VioState:
    """Mean + covariance of the full filter state."""

    timestamp: float
    orientation: np.ndarray
    position: np.ndarray
    velocity: np.ndarray
    gyro_bias: np.ndarray = field(default_factory=lambda: np.zeros(3))
    accel_bias: np.ndarray = field(default_factory=lambda: np.zeros(3))
    clones: List[CloneState] = field(default_factory=list)
    landmarks: Dict[int, np.ndarray] = field(default_factory=dict)  # id -> (3,)
    covariance: np.ndarray = field(
        default_factory=lambda: np.diag(
            [1e-4] * 3 + [1e-6] * 3 + [1e-4] * 3 + [1e-6] * 3 + [1e-4] * 3
        )
    )
    _next_clone_id: int = 0

    @property
    def dim(self) -> int:
        """Current error-state dimension."""
        return IMU_DIM + CLONE_DIM * len(self.clones) + LANDMARK_DIM * len(self.landmarks)

    def clone_index(self, clone_id: int) -> int:
        """Position of a clone in the window (raises if marginalized)."""
        for i, clone in enumerate(self.clones):
            if clone.clone_id == clone_id:
                return i
        raise KeyError(f"clone {clone_id} not in window")

    def clone_offset(self, clone_id: int) -> int:
        """Error-state column offset of a clone's block."""
        return IMU_DIM + CLONE_DIM * self.clone_index(clone_id)

    def landmark_offset(self, feature_id: int) -> int:
        """Error-state column offset of a landmark's block.

        Landmarks are ordered by insertion (dict order), so a newly
        appended landmark always occupies the final block.
        """
        ids = list(self.landmarks)
        try:
            k = ids.index(feature_id)
        except ValueError:
            raise KeyError(f"landmark {feature_id} not in state") from None
        return IMU_DIM + CLONE_DIM * len(self.clones) + LANDMARK_DIM * k

    def landmark_ids(self) -> List[int]:
        """SLAM landmark ids in state (insertion) order."""
        return list(self.landmarks)

    def pose(self) -> Pose:
        """Current IMU pose estimate."""
        return Pose(self.position, self.orientation, timestamp=self.timestamp)

    # ------------------------------------------------------------------
    # State-size changes
    # ------------------------------------------------------------------

    def augment_clone(self) -> CloneState:
        """Stochastic cloning: append the current pose to the window."""
        clone = CloneState(
            clone_id=self._next_clone_id,
            timestamp=self.timestamp,
            orientation=self.orientation.copy(),
            position=self.position.copy(),
        )
        self._next_clone_id += 1
        # Insert rows/cols before the landmark block.
        insert_at = IMU_DIM + CLONE_DIM * len(self.clones)
        old_dim = self.dim
        jacobian = np.zeros((CLONE_DIM, old_dim))
        jacobian[0:3, 0:3] = np.eye(3)   # clone theta copies IMU theta
        jacobian[3:6, 3:6] = np.eye(3)   # clone p copies IMU p
        new_dim = old_dim + CLONE_DIM
        cov = np.zeros((new_dim, new_dim))
        # Build index mapping: old indices, with the clone block spliced in.
        old_to_new = list(range(insert_at)) + list(range(insert_at + CLONE_DIM, new_dim))
        cov[np.ix_(old_to_new, old_to_new)] = self.covariance
        cross = jacobian @ self.covariance
        cov[insert_at : insert_at + CLONE_DIM, old_to_new] = cross
        cov[old_to_new, insert_at : insert_at + CLONE_DIM] = cross.T
        cov[insert_at : insert_at + CLONE_DIM, insert_at : insert_at + CLONE_DIM] = (
            jacobian @ self.covariance @ jacobian.T
        )
        self.covariance = cov
        self.clones.append(clone)
        return clone

    def marginalize_clone(self, clone_id: int) -> None:
        """Drop a clone: delete its rows/columns from the covariance."""
        index = self.clone_index(clone_id)
        offset = IMU_DIM + CLONE_DIM * index
        keep = [i for i in range(self.dim) if not offset <= i < offset + CLONE_DIM]
        self.covariance = self.covariance[np.ix_(keep, keep)]
        del self.clones[index]

    def remove_landmark(self, feature_id: int) -> None:
        """Drop a SLAM landmark from the state."""
        offset = self.landmark_offset(feature_id)
        keep = [i for i in range(self.dim) if not offset <= i < offset + LANDMARK_DIM]
        self.covariance = self.covariance[np.ix_(keep, keep)]
        del self.landmarks[feature_id]

    # ------------------------------------------------------------------
    # Error injection
    # ------------------------------------------------------------------

    def inject(self, delta: np.ndarray) -> None:
        """Apply an error-state correction to the mean."""
        delta = np.asarray(delta, dtype=float)
        if delta.shape != (self.dim,):
            raise ValueError(f"delta has wrong shape {delta.shape}, expected ({self.dim},)")
        self.orientation = quat_normalize(
            quat_multiply(self.orientation, quat_exp(delta[0:3]))
        )
        self.position = self.position + delta[3:6]
        self.velocity = self.velocity + delta[6:9]
        self.gyro_bias = self.gyro_bias + delta[9:12]
        self.accel_bias = self.accel_bias + delta[12:15]
        for i, clone in enumerate(self.clones):
            offset = IMU_DIM + CLONE_DIM * i
            clone.orientation = quat_normalize(
                quat_multiply(clone.orientation, quat_exp(delta[offset : offset + 3]))
            )
            clone.position = clone.position + delta[offset + 3 : offset + 6]
        base = IMU_DIM + CLONE_DIM * len(self.clones)
        for k, feature_id in enumerate(self.landmark_ids()):
            offset = base + LANDMARK_DIM * k
            self.landmarks[feature_id] = (
                self.landmarks[feature_id] + delta[offset : offset + 3]
            )

    def symmetrize(self) -> None:
        """Enforce covariance symmetry (numerical hygiene after updates)."""
        self.covariance = 0.5 * (self.covariance + self.covariance.T)
