"""Regenerate every table and figure in one command.

The equivalent of the paper artifact's ``results/analysis/main.py``::

    python -m repro.analysis            # full runs (a few minutes)
    python -m repro.analysis --quick    # short runs (~1 minute)
    python -m repro.analysis --out results

Writes one text file per table/figure under the output directory and
prints each as it completes.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.analysis import report
from repro.analysis.experiments import run_matrix, vio_accuracy_ablation
from repro.analysis.standalone import (
    characterize_audio,
    characterize_eye_tracking,
    characterize_hologram,
    characterize_reconstruction,
    characterize_reprojection,
    characterize_vio,
)
from repro.metrics.qoe import evaluate_image_quality


def _write(out_dir: str, name: str, text: str) -> None:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n=== {name} ===")
    print(text)


def main(argv=None) -> int:
    """Entry point: regenerate the full evaluation."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="short runs")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    duration = 3.0 if args.quick else 10.0
    started = time.perf_counter()

    _write(args.out, "table1_requirements", report.render_table1())
    _write(args.out, "table2_components", report.render_table2())
    _write(args.out, "table3_parameters", report.render_table3())

    print(f"\nRunning the integrated grid ({duration:g}s per cell)...")
    runs = run_matrix(duration_s=duration, fidelity="full", seed=args.seed)
    metrics_dir = os.path.join(args.out, "metrics")
    os.makedirs(metrics_dir, exist_ok=True)
    for run in runs:
        run.result.save_metrics(
            os.path.join(metrics_dir, f"metrics-{run.platform.key}-{run.app_name}.json")
        )
    _write(args.out, "fig3_framerates", report.render_fig3(runs))
    platformer = [r for r in runs if r.app_name == "platformer"]
    desktop_platformer = next(r for r in platformer if r.platform.key == "desktop")
    _write(args.out, "fig4_timeseries", report.render_fig4(desktop_platformer))
    _write(args.out, "fig5_cpu_breakdown", report.render_fig5(runs))
    _write(args.out, "fig6_power", report.render_fig6(runs))
    _write(args.out, "fig7_mtp_platformer", report.render_fig7(platformer))
    _write(args.out, "fig8_microarchitecture", report.render_fig8())
    _write(args.out, "table4_mtp", report.render_table4(runs))

    print("\nReplaying image quality offline (Table V)...")
    sponza = [r for r in runs if r.app_name == "sponza"]
    quality = {
        r.platform.key: evaluate_image_quality(
            r.result, max_frames=8 if args.quick else 20
        )
        for r in sorted(sponza, key=lambda r: r.platform.cpu_scale)
    }
    _write(args.out, "table5_image_quality", report.render_table5(quality))

    print("\nCharacterizing standalone components (Tables VI-VII)...")
    _write(
        args.out,
        "table6_vio_tasks",
        report.render_task_breakdown(
            characterize_vio(duration_s=5.0 if args.quick else 15.0)
        ),
    )
    _write(
        args.out,
        "table6_reconstruction_tasks",
        report.render_task_breakdown(
            characterize_reconstruction(frames=10 if args.quick else 30)
        ),
    )
    _write(
        args.out,
        "table7_reprojection_tasks",
        report.render_task_breakdown(
            characterize_reprojection(frames=8 if args.quick else 24)
        ),
    )
    _write(
        args.out,
        "table7_hologram_tasks",
        report.render_task_breakdown(
            characterize_hologram(iterations=4 if args.quick else 8)
        ),
    )
    audio = characterize_audio(blocks=24 if args.quick else 96)
    _write(
        args.out,
        "table7_audio_tasks",
        report.render_task_breakdown(audio["audio_encoding"])
        + "\n\n"
        + report.render_task_breakdown(audio["audio_playback"]),
    )
    _write(
        args.out,
        "table7_eye_tracking_tasks",
        report.render_task_breakdown(
            characterize_eye_tracking(
                train_steps=30 if args.quick else 100,
                eval_samples=8 if args.quick else 24,
            )
        ),
    )

    _write(args.out, "shared_primitives", report.render_shared_primitives())

    print("\nRunning the §V.E ablation...")
    standard, high = vio_accuracy_ablation(duration_s=8.0 if args.quick else 20.0)
    _write(args.out, "ablation_vio_params", report.render_ablation(standard, high))

    elapsed = time.perf_counter() - started
    print(f"\nAll reports regenerated in {elapsed:.0f}s -> {args.out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
