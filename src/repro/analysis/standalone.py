"""Standalone component characterization (§IV-B, "ILLIXR v1").

Each component runs by itself on its component-specific dataset stand-in
(Vicon Room for VIO, dyson_lab-like depth for reconstruction, OpenEDS-like
eye images, VR-Museum-like rendered frames for reprojection/hologram,
48 kHz clips for audio) and reports its per-task time breakdown -- the
measured equivalents of Tables VI and VII.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass
class TaskBreakdown:
    """Per-task share of one component's standalone run."""

    component: str
    task_seconds: Dict[str, float]
    frames: int
    mean_frame_ms: float
    extras: Dict[str, float]

    def shares(self) -> Dict[str, float]:
        """Fraction of total per task (a Table VI/VII 'Time' column)."""
        total = sum(self.task_seconds.values())
        if total == 0:
            return {k: 0.0 for k in self.task_seconds}
        return {k: v / total for k, v in self.task_seconds.items()}


def characterize_vio(duration_s: float = 15.0, seed: int = 1, quality: str = "standard") -> TaskBreakdown:
    """VIO on the Vicon-Room-like dataset (Table VI, upper half)."""
    from repro.perception.vio.msckf import Msckf, MsckfConfig
    from repro.sensors.dataset import make_vicon_room_dataset

    dataset = make_vicon_room_dataset(duration=duration_s, seed=seed)
    config = MsckfConfig.high_accuracy() if quality == "high" else MsckfConfig.standard()
    vio = Msckf(
        config,
        dataset.camera.intrinsics,
        dataset.camera.baseline_m,
        dataset.ground_truth(0.0),
        initial_velocity=dataset.trajectory.sample(0.0).velocity,
    )
    t_last = 0.0
    frame_times: List[float] = []
    errors: List[float] = []
    for frame in dataset.camera_frames:
        for sample in dataset.imu_between(t_last, frame.timestamp):
            vio.process_imu(sample)
        t_last = frame.timestamp
        t0 = time.perf_counter()
        estimate = vio.process_frame(frame)
        frame_times.append(time.perf_counter() - t0)
        errors.append(estimate.pose.translation_error(dataset.ground_truth(frame.timestamp)))
    return TaskBreakdown(
        component="vio",
        task_seconds=vio.task_breakdown(),
        frames=len(frame_times),
        mean_frame_ms=float(np.mean(frame_times)) * 1e3,
        extras={
            "ate_cm": float(np.mean(errors)) * 100.0,
            "frame_time_cov": float(np.std(frame_times) / max(np.mean(frame_times), 1e-12)),
        },
    )


def characterize_reconstruction(frames: int = 30, seed: int = 3) -> TaskBreakdown:
    """Scene reconstruction on the dyson_lab-like depth sequence."""
    from repro.maths.se3 import Pose
    from repro.perception.reconstruction.pipeline import ReconstructionPipeline
    from repro.sensors.depth import DepthCamera, DepthScene
    from repro.sensors.trajectory import lab_walk_trajectory

    scene = DepthScene.default(seed=seed)
    camera = DepthCamera(scene, width=80, height=60, seed=seed)
    trajectory = lab_walk_trajectory(duration=frames * 0.3 + 2.0, seed=seed)
    pipeline = ReconstructionPipeline(camera)
    rng = np.random.default_rng(seed)
    errors: List[float] = []
    for i in range(frames):
        t = i * 0.3
        sample = trajectory.sample(t)
        truth = Pose(sample.position, sample.orientation, timestamp=t)
        depth = camera.render(truth)
        guess = Pose(truth.position + rng.normal(0.0, 0.03, 3), truth.orientation, timestamp=t)
        result = pipeline.process_frame(depth, guess)
        errors.append(result.pose.translation_error(truth))
    return TaskBreakdown(
        component="scene_reconstruction",
        task_seconds=pipeline.task_breakdown(),
        frames=frames,
        mean_frame_ms=float(np.mean(pipeline.frame_times)) * 1e3,
        extras={
            "pose_error_cm": float(np.mean(errors[3:])) * 100.0,
            "occupied_fraction": pipeline.volume.occupied_fraction,
            "frame_time_growth": float(
                np.mean(pipeline.frame_times[-5:]) / max(np.mean(pipeline.frame_times[:5]), 1e-12)
            ),
        },
    )


def characterize_eye_tracking(
    train_steps: int = 100, eval_samples: int = 24, seed: int = 0
) -> TaskBreakdown:
    """Eye tracking on the OpenEDS-like generator."""
    from repro.perception.eye_tracking import EyeTracker
    from repro.sensors.eye import EyeImageGenerator

    tracker = EyeTracker(seed=seed)
    tracker.train(EyeImageGenerator(seed=seed), steps=train_steps)
    generator = EyeImageGenerator(seed=seed + 1000)
    samples = generator.batch(eval_samples)
    frame_times: List[float] = []
    for i in range(0, len(samples) - 1, 2):
        pair = np.stack([samples[i].image, samples[i + 1].image])
        t0 = time.perf_counter()
        tracker.predict(pair)  # batch of two: one image per eye
        frame_times.append(time.perf_counter() - t0)
    quality = tracker.evaluate(samples)
    return TaskBreakdown(
        component="eye_tracking",
        task_seconds=tracker.task_breakdown(),
        frames=len(frame_times),
        mean_frame_ms=float(np.mean(frame_times)) * 1e3,
        extras={
            "mean_iou": quality["mean_iou"],
            "mean_gaze_error": quality["mean_gaze_error"],
            "weight_kb": tracker.weight_bytes() / 1024.0,
        },
    )


def characterize_reprojection(frames: int = 24, seed: int = 0) -> TaskBreakdown:
    """Reprojection on VR-Museum-like rendered frames (Table VII rows).

    Stage accounting mirrors Table VII: ``fbo`` (target management),
    ``opengl_state`` (per-eye warp setup: homography/mesh computation --
    the driver-call stand-in), ``reprojection`` (the actual resampling).
    """
    from repro.maths.quaternion import quat_from_axis_angle, quat_multiply
    from repro.maths.se3 import Pose
    from repro.visual.distortion import apply_lens_correction, mesh_warp_coordinates
    from repro.visual.renderer import RenderCamera, Renderer
    from repro.visual.reprojection import rotational_reproject
    from repro.visual.scenes import scene_by_name

    camera = RenderCamera(width=192, height=108)
    renderer = Renderer(scene_by_name("sponza"), camera)
    k = camera.intrinsic_matrix()
    rng = np.random.default_rng(seed)
    tasks = {"fbo": 0.0, "opengl_state": 0.0, "reprojection": 0.0}
    frame_times: List[float] = []
    pose = Pose(np.array([0.0, 0.0, 1.7]))
    rendered = renderer.render(pose)
    for _ in range(frames):
        start = time.perf_counter()
        t0 = time.perf_counter()
        target = np.zeros_like(rendered.image)  # framebuffer bind + clear
        tasks["fbo"] += time.perf_counter() - t0
        delta = quat_from_axis_angle(rng.normal(0, 1, 3), rng.uniform(0.005, 0.04))
        display_pose = Pose(
            pose.position + rng.normal(0, 0.01, 3),
            quat_multiply(delta, pose.orientation),
        )
        t0 = time.perf_counter()
        # Per-eye warp setup: distortion meshes (the state/driver work).
        mesh_warp_coordinates(camera.width, camera.height, -0.12, -0.04, mesh_step=16)
        mesh_warp_coordinates(camera.width, camera.height, -0.12, -0.04, mesh_step=16)
        tasks["opengl_state"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        warped = rotational_reproject(rendered.image, k, pose, display_pose)
        target[:] = apply_lens_correction(warped)
        tasks["reprojection"] += time.perf_counter() - t0
        frame_times.append(time.perf_counter() - start)
    return TaskBreakdown(
        component="timewarp",
        task_seconds=tasks,
        frames=frames,
        mean_frame_ms=float(np.mean(frame_times)) * 1e3,
        extras={},
    )


def characterize_hologram(iterations: int = 8, resolution: int = 128, seed: int = 0) -> TaskBreakdown:
    """Hologram generation on a rendered focal stack (Table VII rows)."""
    from repro.maths.se3 import Pose
    from repro.visual.hologram import WeightedGerchbergSaxton, focal_stack_from_frame
    from repro.visual.renderer import RenderCamera, Renderer
    from repro.visual.scenes import scene_by_name

    camera = RenderCamera(width=resolution, height=resolution)
    renderer = Renderer(scene_by_name("sponza"), camera)
    frame = renderer.render(Pose(np.array([0.0, 0.0, 1.7])))
    solver = WeightedGerchbergSaxton(resolution=resolution)
    targets = focal_stack_from_frame(frame.image, frame.depth, solver.depths_m, resolution)
    t0 = time.perf_counter()
    result = solver.solve(targets, iterations=iterations, seed=seed)
    total = time.perf_counter() - t0
    return TaskBreakdown(
        component="hologram",
        task_seconds=result.task_times,
        frames=1,
        mean_frame_ms=total * 1e3,
        extras={"efficiency": result.efficiency, "uniformity": result.uniformity},
    )


def characterize_audio(blocks: int = 96, seed: int = 0) -> Dict[str, TaskBreakdown]:
    """Audio encoding and playback on the Freesound-like clips."""
    from repro.audio.encoding import AudioEncoder
    from repro.audio.playback import AudioPlayback
    from repro.audio.sources import MusicLikeSource, SpeechLikeSource
    from repro.maths.quaternion import quat_from_axis_angle
    from repro.maths.se3 import Pose

    encoder = AudioEncoder([SpeechLikeSource(seed=seed), MusicLikeSource(seed=seed + 1)])
    playback = AudioPlayback()
    encode_times: List[float] = []
    playback_times: List[float] = []
    for i in range(blocks):
        t0 = time.perf_counter()
        soundfield = encoder.encode_next_block()
        encode_times.append(time.perf_counter() - t0)
        yaw = 0.3 * np.sin(i / 10.0)
        pose = Pose(np.zeros(3), quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), yaw))
        t0 = time.perf_counter()
        playback.render_block(soundfield, pose)
        playback_times.append(time.perf_counter() - t0)
    return {
        "audio_encoding": TaskBreakdown(
            component="audio_encoding",
            task_seconds=encoder.task_breakdown(),
            frames=blocks,
            mean_frame_ms=float(np.mean(encode_times)) * 1e3,
            extras={},
        ),
        "audio_playback": TaskBreakdown(
            component="audio_playback",
            task_seconds=playback.task_breakdown(),
            frames=blocks,
            mean_frame_ms=float(np.mean(playback_times)) * 1e3,
            extras={},
        ),
    }
