"""Plain-text rendering of every table and figure the paper reports.

Each ``render_*`` function takes the corresponding experiment output and
returns the rows/series as a string, in the same structure as the paper's
artifact analysis scripts (``results/analysis/main.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.experiments import FIG3_TARGETS, IntegratedRun, VioAblationResult
from repro.analysis.standalone import TaskBreakdown
from repro.core.config import TABLE_III_PARAMETERS
from repro.core.registry import COMPONENT_REGISTRY
from repro.hardware.platform import TABLE_I_REQUIREMENTS
from repro.hardware.uarch import component_breakdowns
from repro.metrics.qoe import ImageQualityResult


def _table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def render_table1() -> str:
    """Table I: ideal requirements vs state-of-the-art devices."""
    rows = []
    for device in TABLE_I_REQUIREMENTS:
        power = device.power_w
        power_str = "N/A" if power[0] != power[0] else (
            f"{power[0]:g}" if power[0] == power[1] else f"{power[0]:g} - {power[1]:g}"
        )
        rows.append(
            [
                device.device,
                f"{device.resolution_mpixels:g}",
                f"{device.field_of_view_deg[0]:g}x{device.field_of_view_deg[1]:g}",
                f"{device.refresh_rate_hz[0]:g}-{device.refresh_rate_hz[1]:g}",
                f"<{device.motion_to_photon_ms:g}",
                power_str,
                f"{device.weight_grams[0]:g}-{device.weight_grams[1]:g}",
            ]
        )
    return "Table I: requirements vs devices\n" + _table(
        ["Device", "MPix", "FoV (deg)", "Refresh (Hz)", "MTP (ms)", "Power (W)", "Weight (g)"],
        rows,
    )


def render_table2() -> str:
    """Table II: component algorithms and implementations."""
    rows = [
        [e.pipeline, e.component, e.algorithm, e.original, e.module]
        for e in COMPONENT_REGISTRY
    ]
    return "Table II: component algorithms/implementations\n" + _table(
        ["Pipeline", "Component", "Algorithm", "Stands in for", "Module"], rows
    )


def render_table3() -> str:
    """Table III: tuned system parameters."""
    rows = [
        [p.component, p.name, p.range_description, p.tuned,
         f"{p.deadline_ms:g} ms" if p.deadline_ms else "-"]
        for p in TABLE_III_PARAMETERS
    ]
    return "Table III: tuned parameters\n" + _table(
        ["Component", "Parameter", "Range", "Tuned", "Deadline"], rows
    )


def render_fig3(runs: List[IntegratedRun]) -> str:
    """Fig. 3: per-component frame rates per app per platform."""
    lines = ["Fig. 3: achieved frame rate (Hz) vs target"]
    platforms = sorted({r.platform.key for r in runs})
    for platform in platforms:
        lines.append(f"\n[{platform}]")
        cell_runs = [r for r in runs if r.platform.key == platform]
        components = [c for c in FIG3_TARGETS if any(
            c in r.frame_rates() for r in cell_runs)]
        rows = []
        for run in cell_runs:
            rates = run.frame_rates()
            rows.append(
                [run.app_name]
                + [f"{rates.get(c, 0.0):.1f}/{FIG3_TARGETS[c]:g}" for c in components]
            )
        lines.append(_table(["app"] + components, rows))
    return "\n".join(lines)


def render_fig4(run: IntegratedRun, max_points: int = 12) -> str:
    """Fig. 4: per-frame execution times (a textual timeline excerpt)."""
    lines = [f"Fig. 4: per-frame execution time (ms), {run.app_name} on {run.platform.key}"]
    for plugin in ("vio", "application", "camera", "integrator", "timewarp",
                   "audio_playback", "audio_encoding"):
        times = run.result.logger.execution_times(plugin)
        if not times:
            continue
        sampled = times[:: max(1, len(times) // max_points)][:max_points]
        mean = sum(times) / len(times)
        std = (sum((t - mean) ** 2 for t in times) / len(times)) ** 0.5
        series = " ".join(f"{t * 1e3:5.2f}" for t in sampled)
        lines.append(f"  {plugin:14s} mean={mean*1e3:6.2f} std={std*1e3:5.2f}  [{series} ...]")
    return "\n".join(lines)


def render_fig5(runs: List[IntegratedRun]) -> str:
    """Fig. 5: CPU-cycle attribution per component."""
    lines = ["Fig. 5: CPU time share per component (%)"]
    components = ["camera", "vio", "imu", "integrator", "application",
                  "timewarp", "audio_playback", "audio_encoding"]
    rows = []
    for run in runs:
        share = run.cpu_share()
        rows.append(
            [f"{run.platform.key}/{run.app_name}"]
            + [f"{share.get(c, 0.0) * 100:.1f}" for c in components]
        )
    return lines[0] + "\n" + _table(["cell"] + components, rows)


def render_fig6(runs: List[IntegratedRun]) -> str:
    """Fig. 6: total power and per-rail breakdown."""
    lines = ["Fig. 6a/6b: power (W) and rail shares (%)"]
    rows = []
    for run in runs:
        power = run.result.power
        shares = power.share()
        rows.append(
            [
                f"{run.platform.key}/{run.app_name}",
                f"{power.total:.1f}",
            ]
            + [f"{shares.get(rail, 0.0) * 100:.0f}" for rail in ("CPU", "GPU", "DDR", "SoC", "Sys")]
        )
    return lines[0] + "\n" + _table(
        ["cell", "total W", "CPU%", "GPU%", "DDR%", "SoC%", "Sys%"], rows
    )


def render_fig7(runs: List[IntegratedRun], max_points: int = 16) -> str:
    """Fig. 7: per-frame MTP timeline for one app on all platforms."""
    lines = ["Fig. 7: motion-to-photon latency per frame (ms)"]
    for run in runs:
        samples = run.result.mtp_samples
        if not samples:
            continue
        series = samples[:: max(1, len(samples) // max_points)][:max_points]
        text = " ".join(f"{s.total_ms:5.1f}" for s in series)
        lines.append(f"  {run.platform.key:10s} [{text} ...]")
    return "\n".join(lines)


def render_fig8() -> str:
    """Fig. 8: IPC + top-down cycle breakdown per component."""
    rows = []
    for name, breakdown in component_breakdowns().items():
        rows.append(
            [
                name,
                f"{breakdown.ipc:.2f}",
                f"{breakdown.retiring * 100:.0f}",
                f"{breakdown.bad_speculation * 100:.0f}",
                f"{breakdown.frontend_bound * 100:.0f}",
                f"{breakdown.backend_bound * 100:.0f}",
            ]
        )
    return "Fig. 8: cycle breakdown and IPC\n" + _table(
        ["component", "IPC", "retiring%", "bad spec%", "frontend%", "backend%"], rows
    )


def render_table4(runs: List[IntegratedRun]) -> str:
    """Table IV: MTP mean +- std per platform per app."""
    platforms = sorted({r.platform.key for r in runs})
    apps = []
    for run in runs:
        if run.app_name not in apps:
            apps.append(run.app_name)
    rows = []
    for platform in platforms:
        row = [platform]
        for app in apps:
            run = next((r for r in runs if r.platform.key == platform and r.app_name == app), None)
            if run is None:
                row.append("-")
            else:
                summary = run.result.mtp_summary()
                row.append(f"{summary.mean_ms:.1f}+-{summary.std_ms:.1f}")
        rows.append(row)
    return "Table IV: MTP (ms, mean+-std; VR target 20, AR target 5)\n" + _table(
        ["Platform"] + apps, rows
    )


def render_table5(results: Dict[str, ImageQualityResult]) -> str:
    """Table V: SSIM and 1-FLIP per platform (Sponza)."""
    rows = [
        [platform, f"{r.ssim_mean:.2f}+-{r.ssim_std:.2f}",
         f"{r.one_minus_flip_mean:.2f}+-{r.one_minus_flip_std:.2f}"]
        for platform, r in results.items()
    ]
    return "Table V: image quality (Sponza)\n" + _table(["Platform", "SSIM", "1-FLIP"], rows)


def render_task_breakdown(breakdown: TaskBreakdown) -> str:
    """One component's Table VI/VII block, with the paper's computation
    and memory-pattern columns."""
    from repro.analysis.tasks import descriptor

    shares = breakdown.shares()
    rows = []
    for task, share in shares.items():
        try:
            info = descriptor(breakdown.component, task)
            computation = "; ".join(info.computation)
            memory = info.memory_pattern
        except KeyError:
            computation = "-"
            memory = "-"
        rows.append([task, f"{share * 100:.0f}%", computation, memory])
    extras = "  ".join(f"{k}={v:.3g}" for k, v in breakdown.extras.items())
    header = (
        f"{breakdown.component}: {breakdown.frames} frames, "
        f"mean {breakdown.mean_frame_ms:.2f} ms/frame"
        + (f"  ({extras})" if extras else "")
    )
    return header + "\n" + _table(["Task", "Time", "Computation", "Memory pattern"], rows)


def render_ablation(standard: VioAblationResult, high: VioAblationResult) -> str:
    """§V.E: VIO accuracy/cost trade-off."""
    rows = [
        [r.quality, f"{r.ate_cm:.1f}", f"{r.mean_frame_time_ms:.1f}", str(r.frames)]
        for r in (standard, high)
    ]
    ratio = high.mean_frame_time_ms / max(standard.mean_frame_time_ms, 1e-9)
    footer = (
        f"\ncost ratio high/standard = {ratio:.2f}x "
        f"(paper: error 8.1 -> 4.9 cm at 1.5x cost)"
    )
    return (
        "§V.E: VIO accuracy vs performance\n"
        + _table(["quality", "ATE (cm)", "ms/frame", "frames"], rows)
        + footer
    )


def render_shared_primitives() -> str:
    """§V-B: compute primitives shared across components.

    The paper's case for shared accelerator blocks: "a number of common
    primitives exist across components; e.g., Cholesky in VIO and scene
    reconstruction."
    """
    from repro.analysis.tasks import shared_primitives

    rows = [
        [primitive, ", ".join(components)]
        for primitive, components in shared_primitives().items()
    ]
    return (
        "§V-B: primitives shared across components (candidate shared blocks)\n"
        + _table(["Primitive", "Components"], rows)
    )
