"""Integrated-system experiments (§IV-A of the paper).

The experiment grid is 4 applications x 3 platforms, 30 seconds each (the
paper's §III-A methodology).  ``duration_s`` can be shortened for quick
runs; the benchmarks default to a few seconds, which preserves every
qualitative result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.core.runtime import RuntimeResult, build_runtime
from repro.hardware.platform import PLATFORMS, Platform
from repro.metrics.trajectory import TrajectoryError, absolute_trajectory_error
from repro.visual.scenes import APPLICATION_ORDER

# Target rates per component graph of Fig. 3 (the y-axis caps).
FIG3_TARGETS: Dict[str, float] = {
    "camera": 15.0,
    "vio": 15.0,
    "imu": 500.0,
    "integrator": 500.0,
    "application": 120.0,
    "timewarp": 120.0,
    "audio_encoding": 48.0,
    "audio_playback": 48.0,
}


@dataclass
class IntegratedRun:
    """One cell of the experiment grid with derived metrics."""

    platform: Platform
    app_name: str
    result: RuntimeResult
    wall_seconds: float

    def frame_rates(self) -> Dict[str, float]:
        """Fig. 3 data for this cell."""
        return self.result.frame_rates()

    def cpu_share(self) -> Dict[str, float]:
        """Fig. 5 data for this cell."""
        return self.result.cpu_share()

    def vio_ate(self) -> Optional[TrajectoryError]:
        """ATE of the VIO trajectory, when the run carried real poses."""
        trajectory = self.result.vio_trajectory
        if not trajectory:
            return None
        estimates = [est.pose for _, est in trajectory]
        truths = [self.result.ground_truth(est.timestamp) for _, est in trajectory]
        return absolute_trajectory_error(estimates, truths)


def run_integrated(
    platform_key: str,
    app_name: str,
    duration_s: float = 30.0,
    fidelity: str = "full",
    seed: int = 0,
) -> IntegratedRun:
    """Run one (platform, application) cell."""
    platform = PLATFORMS[platform_key]
    config = SystemConfig(duration_s=duration_s, fidelity=fidelity, seed=seed)
    runtime = build_runtime(platform, app_name, config)
    start = time.perf_counter()
    result = runtime.run()
    return IntegratedRun(
        platform=platform,
        app_name=app_name,
        result=result,
        wall_seconds=time.perf_counter() - start,
    )


def run_matrix(
    duration_s: float = 30.0,
    fidelity: str = "full",
    platforms: Optional[Iterable[str]] = None,
    apps: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> List[IntegratedRun]:
    """The full 3x4 grid (or a subset)."""
    platforms = list(platforms) if platforms is not None else list(PLATFORMS)
    apps = list(apps) if apps is not None else list(APPLICATION_ORDER)
    return [
        run_integrated(p, a, duration_s=duration_s, fidelity=fidelity, seed=seed)
        for p in platforms
        for a in apps
    ]


# ---------------------------------------------------------------------------
# §V.E: VIO accuracy/performance ablation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VioAblationResult:
    """One VIO parameter set's accuracy and cost."""

    quality: str
    ate_cm: float
    mean_frame_time_ms: float
    frames: int


def vio_accuracy_ablation(
    duration_s: float = 20.0, seed: int = 1
) -> Tuple[VioAblationResult, VioAblationResult]:
    """Reproduce §V.E: two VIO parameter sets, trajectory error vs cost.

    The paper: "average trajectory error could be reduced from 8.1 cm to
    4.9 cm at the cost of a 1.5x increase in average per-frame execution
    time."  We run the *real* MSCKF standalone on the offline dataset with
    the two presets and measure both quantities.
    """
    from dataclasses import replace

    from repro.perception.vio.msckf import Msckf, MsckfConfig
    from repro.sensors.dataset import make_vicon_room_dataset

    results = []
    for quality in ("standard", "high"):
        # Short exposure (a Table III knob) = noisier pixels; this is the
        # regime where extra tracked features buy real accuracy.
        dataset = make_vicon_room_dataset(duration=duration_s, seed=seed, exposure_ms=0.25)
        base = MsckfConfig.high_accuracy() if quality == "high" else MsckfConfig.standard()
        config = replace(base, pixel_sigma=dataset.camera.pixel_noise)
        vio = Msckf(
            config,
            dataset.camera.intrinsics,
            dataset.camera.baseline_m,
            dataset.ground_truth(0.0),
            initial_velocity=dataset.trajectory.sample(0.0).velocity,
        )
        t_last = 0.0
        frame_times: List[float] = []
        errors: List[float] = []
        for frame in dataset.camera_frames:
            for sample in dataset.imu_between(t_last, frame.timestamp):
                vio.process_imu(sample)
            t_last = frame.timestamp
            t0 = time.perf_counter()
            estimate = vio.process_frame(frame)
            frame_times.append(time.perf_counter() - t0)
            errors.append(
                estimate.pose.translation_error(dataset.ground_truth(frame.timestamp))
            )
        results.append(
            VioAblationResult(
                quality=quality,
                ate_cm=float(np.mean(errors)) * 100.0,
                mean_frame_time_ms=float(np.mean(frame_times)) * 1e3,
                frames=len(frame_times),
            )
        )
    return (results[0], results[1])


# ---------------------------------------------------------------------------
# §V.C: sensor power / image quality trade-off (camera exposure sweep)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExposurePoint:
    """One camera-exposure setting's cost and accuracy."""

    exposure_ms: float
    sensor_power_w: float
    pixel_noise_px: float
    vio_ate_cm: float


def camera_exposure_sweep(
    exposures_ms: Iterable[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    duration_s: float = 10.0,
    seed: int = 1,
) -> List[ExposurePoint]:
    """§V.C: "reducing camera exposure can save power at the cost of a
    darker image" -- sweep the exposure knob and measure sensor power vs
    VIO accuracy (the decision the paper argues must be made system-wide).
    """
    from dataclasses import replace as dc_replace

    from repro.perception.vio.msckf import Msckf, MsckfConfig
    from repro.sensors.dataset import make_vicon_room_dataset

    points: List[ExposurePoint] = []
    for exposure in exposures_ms:
        dataset = make_vicon_room_dataset(
            duration=duration_s, seed=seed, exposure_ms=exposure
        )
        config = dc_replace(
            MsckfConfig.standard(), pixel_sigma=max(dataset.camera.pixel_noise, 0.3)
        )
        vio = Msckf(
            config,
            dataset.camera.intrinsics,
            dataset.camera.baseline_m,
            dataset.ground_truth(0.0),
            initial_velocity=dataset.trajectory.sample(0.0).velocity,
        )
        t_last = 0.0
        errors = []
        for frame in dataset.camera_frames:
            for sample in dataset.imu_between(t_last, frame.timestamp):
                vio.process_imu(sample)
            t_last = frame.timestamp
            estimate = vio.process_frame(frame)
            errors.append(
                estimate.pose.translation_error(dataset.ground_truth(frame.timestamp))
            )
        points.append(
            ExposurePoint(
                exposure_ms=exposure,
                sensor_power_w=dataset.camera.sensor_power_w(),
                pixel_noise_px=dataset.camera.pixel_noise,
                vio_ate_cm=float(np.mean(errors)) * 100.0,
            )
        )
    return points


# ---------------------------------------------------------------------------
# §II footnote 2: VIO offloading comparison
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OffloadComparison:
    """Local vs offloaded VIO on one device."""

    local_vio_rate_hz: float
    offloaded_vio_rate_hz: float
    local_vio_cpu_share: float
    offloaded_vio_cpu_share: float
    local_ate_cm: float
    offloaded_ate_cm: float
    mean_round_trip_ms: float


def offload_comparison(
    platform_key: str = "jetson-lp",
    remote_key: str = "desktop",
    app_name: str = "platformer",
    duration_s: float = 6.0,
    seed: int = 0,
) -> OffloadComparison:
    """Run the same system with local vs desktop-offloaded VIO."""
    from repro.core.runtime import build_runtime
    from repro.plugins.offload import OffloadedVioPlugin, build_offloaded_runtime

    config = SystemConfig(duration_s=duration_s, fidelity="full", seed=seed)

    local = build_runtime(PLATFORMS[platform_key], app_name, config).run()
    remote_runtime = build_offloaded_runtime(
        PLATFORMS[platform_key], PLATFORMS[remote_key], app_name, config
    )
    remote = remote_runtime.run()
    offload_plugin = next(
        p for p in remote_runtime.plugins if isinstance(p, OffloadedVioPlugin)
    )

    def ate_cm(result) -> float:
        errors = [
            est.pose.translation_error(result.ground_truth(est.timestamp))
            for _, est in result.vio_trajectory
        ]
        return float(np.mean(errors)) * 100.0 if errors else float("nan")

    return OffloadComparison(
        local_vio_rate_hz=local.frame_rate("vio"),
        offloaded_vio_rate_hz=remote.frame_rate("vio"),
        local_vio_cpu_share=local.cpu_share().get("vio", 0.0),
        offloaded_vio_cpu_share=remote.cpu_share().get("vio", 0.0),
        local_ate_cm=ate_cm(local),
        offloaded_ate_cm=ate_cm(remote),
        mean_round_trip_ms=float(np.mean(offload_plugin.round_trips)) * 1e3
        if offload_plugin.round_trips
        else float("nan"),
    )
