"""``python -m repro.analysis`` regenerates every table and figure."""

from repro.analysis.main import main

raise SystemExit(main())
