"""Critical-path MTP report from a traced run, as a CLI::

    python -m repro.analysis.critical_path                 # 5s desktop sponza
    python -m repro.analysis.critical_path --platform jetson_lp --duration 10
    python -m repro.analysis.critical_path --trace-out trace.json

Runs one integrated run with observability on, then reproduces Table IV
*from the trace spans alone* (:mod:`repro.obs.critical_path`), prints
the per-frame decomposition ``mtp = t_imu_age + t_reprojection +
t_swap`` with each frame's slowest edge named, and cross-checks the
trace-derived numbers against the online :mod:`repro.metrics.mtp`
samples.  ``--trace-out`` additionally exports the Chrome trace JSON
(load it in Perfetto or chrome://tracing).
"""

from __future__ import annotations

import argparse
import json

from repro.core.config import SystemConfig
from repro.core.runtime import build_runtime
from repro.hardware.platform import PLATFORMS
from repro.obs.critical_path import decomposition_summary, render_report
from repro.obs.export import validate_chrome_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--platform", default="desktop", choices=sorted(PLATFORMS)
    )
    parser.add_argument("--app", default="sponza")
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fidelity", default="full", choices=("full", "model")
    )
    parser.add_argument(
        "--trace-out", default=None, help="also export the Chrome trace JSON here"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON instead of text"
    )
    args = parser.parse_args(argv)

    config = SystemConfig(
        duration_s=args.duration, fidelity=args.fidelity, seed=args.seed
    )
    runtime = build_runtime(
        PLATFORMS[args.platform], args.app, config, observability=True
    )
    result = runtime.run()
    frames = result.critical_paths()
    summary = decomposition_summary(frames)

    # Cross-check against the online metric (§III-E): the trace-derived
    # per-frame decomposition must reproduce metrics/mtp.py exactly.
    online = {round(s.frame_time, 9): s for s in result.mtp_samples}
    worst = 0.0
    for frame in frames:
        sample = online.get(round(frame.frame_time, 9))
        if sample is None:
            continue
        worst = max(
            worst,
            abs(frame.imu_age - sample.imu_age),
            abs(frame.reprojection - sample.reprojection_time),
            abs(frame.swap - sample.swap_wait),
        )
    summary["online_parity_max_abs_s"] = worst

    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_report(frames))
        print(f"\n  parity vs online MTP metric: max |delta| = {worst:.2e} s")

    if args.trace_out:
        payload = result.chrome_trace()
        problems = validate_chrome_trace(payload)
        result.export_chrome_trace(args.trace_out)
        status = "valid" if not problems else f"INVALID ({problems[:3]})"
        print(f"  chrome trace: {args.trace_out} ({len(payload['traceEvents'])} events, {status})")
        if problems:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
