"""Per-task computation and memory patterns (Tables VI-VII text columns).

The paper's task-breakdown tables carry two descriptive columns beyond the
time share: the *computation* (KLT, GEMM, Cholesky, FFT, ...) and the
*memory pattern* (dense/sparse, local/global, row/column-major).  This
module records those descriptors for every task our implementations time,
written against what our code actually does, so the full tables can be
rendered.  Shared primitives across components (the paper's §V-B argument
for shared accelerators) can be queried with :func:`shared_primitives`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class TaskDescriptor:
    """One Table VI/VII row's text columns."""

    component: str
    task: str
    computation: Tuple[str, ...]   # named primitives
    memory_pattern: str


TASK_DESCRIPTORS: Tuple[TaskDescriptor, ...] = (
    # ------------------------------------------------------------- VIO
    TaskDescriptor(
        "vio", "feature_detection", ("feature selection", "budgeting"),
        "sparse id-keyed map inserts",
    ),
    TaskDescriptor(
        "vio", "feature_matching", ("track association",),
        "mixed dense and random feature-map accesses",
    ),
    TaskDescriptor(
        "vio", "feature_initialization",
        ("DLT least squares", "Gauss-Newton", "Jacobian", "QR"),
        "dense feature-map accesses; small dense matrices",
    ),
    TaskDescriptor(
        "vio", "msckf_update",
        ("QR nullspace projection", "chi2 check", "Cholesky solve", "GEMM"),
        "dense state-matrix accesses; stacked residual rows",
    ),
    TaskDescriptor(
        "vio", "slam_update", ("Jacobian", "chi2 check", "Cholesky solve", "GEMM"),
        "mixed dense and sparse state-matrix accesses",
    ),
    TaskDescriptor(
        "vio", "marginalization", ("row/column deletion",),
        "dense state-matrix compaction",
    ),
    TaskDescriptor(
        "vio", "other", ("RK4 integration", "covariance propagation", "GEMM"),
        "dense 15x15 blocks; cross-covariance row updates",
    ),
    # ------------------------------------------- Scene reconstruction
    TaskDescriptor(
        "scene_reconstruction", "camera_processing",
        ("bilateral-style filter", "invalid depth rejection"),
        "locally dense image stencil",
    ),
    TaskDescriptor(
        "scene_reconstruction", "image_processing",
        ("vertex map", "normal map (cross products)"),
        "globally dense image accesses",
    ),
    TaskDescriptor(
        "scene_reconstruction", "pose_estimation",
        ("point-to-plane ICP", "Gauss-Newton", "Cholesky solve", "Huber weighting", "reduction"),
        "globally mixed dense/sparse image accesses; 6x6 normal equations",
    ),
    TaskDescriptor(
        "scene_reconstruction", "surfel_prediction",
        ("ray marching", "trilinear interpolation", "gradient"),
        "globally sparse volume accesses along rays",
    ),
    TaskDescriptor(
        "scene_reconstruction", "map_fusion",
        ("projective association", "weighted running average"),
        "globally dense voxel sweep; scattered image gathers",
    ),
    # ---------------------------------------------------- Reprojection
    TaskDescriptor(
        "timewarp", "fbo", ("framebuffer allocate/clear",),
        "dense framebuffer writes",
    ),
    TaskDescriptor(
        "timewarp", "opengl_state", ("warp-mesh evaluation", "interpolation setup"),
        "coarse mesh evaluation; driver-call stand-in",
    ),
    TaskDescriptor(
        "timewarp", "reprojection",
        ("homography (matrix-vector)", "bilinear resampling", "radial distortion"),
        "dense target sweep; scattered source gathers per channel",
    ),
    # -------------------------------------------------------- Hologram
    TaskDescriptor(
        "hologram", "hologram_to_depth", ("FFT", "transfer-function multiply", "IFFT"),
        "globally dense accesses to hologram phases; butterfly pattern",
    ),
    TaskDescriptor(
        "hologram", "sum", ("mean amplitude reduction",),
        "globally dense accesses to partial sums",
    ),
    TaskDescriptor(
        "hologram", "depth_to_hologram",
        ("weight update", "FFT", "conjugate transfer multiply", "accumulate"),
        "globally dense accesses to depth phases",
    ),
    # --------------------------------------------------- Audio encoding
    TaskDescriptor(
        "audio_encoding", "normalization", ("INT16 to FP32 division",),
        "globally dense accesses to audio samples",
    ),
    TaskDescriptor(
        "audio_encoding", "encoding", ("spherical harmonics", "outer product"),
        "globally dense column-major accesses to the soundfield",
    ),
    TaskDescriptor(
        "audio_encoding", "summation", ("channel-wise accumulate",),
        "globally dense row-major accesses to the soundfield",
    ),
    # --------------------------------------------------- Audio playback
    TaskDescriptor(
        "audio_playback", "psychoacoustic_filter", ("FFT", "frequency weighting", "IFFT"),
        "butterfly pattern; dense per-channel spectra",
    ),
    TaskDescriptor(
        "audio_playback", "rotation", ("SH rotation (least squares per degree)", "GEMM"),
        "dense block-diagonal matrix on the soundfield",
    ),
    TaskDescriptor(
        "audio_playback", "zoom", ("first-order dominance mix",),
        "two soundfield rows, dense",
    ),
    TaskDescriptor(
        "audio_playback", "binauralization", ("FFT", "HRTF multiply", "IFFT", "overlap-add"),
        "dense speaker spectra; per-ear reductions",
    ),
    # ----------------------------------------------------- Eye tracking
    TaskDescriptor(
        "eye_tracking", "convolution", ("im2col", "GEMM"),
        "dense patch gathers; dense weight matrix",
    ),
    TaskDescriptor(
        "eye_tracking", "batch_copy", ("host-to-device copy stand-in",),
        "dense image copies",
    ),
    TaskDescriptor(
        "eye_tracking", "activation", ("ReLU", "sigmoid"),
        "globally dense elementwise",
    ),
    TaskDescriptor(
        "eye_tracking", "misc", ("thresholding", "centroid"),
        "dense mask reduction",
    ),
)


def descriptors_for(component: str) -> List[TaskDescriptor]:
    """All task descriptors of one component, in table order."""
    return [d for d in TASK_DESCRIPTORS if d.component == component]


def descriptor(component: str, task: str) -> TaskDescriptor:
    """Look up one (component, task) row."""
    for entry in TASK_DESCRIPTORS:
        if entry.component == component and entry.task == task:
            return entry
    raise KeyError(f"no descriptor for {component}/{task}")


def shared_primitives(min_components: int = 2) -> Dict[str, List[str]]:
    """Primitives used by >= ``min_components`` components (§V-B).

    The paper's argument for shared accelerator blocks: e.g. Cholesky
    appears in both VIO and scene reconstruction; FFT in hologram and both
    audio components; GEMM across VIO, eye tracking, and audio rotation.
    """
    by_primitive: Dict[str, set] = {}
    for entry in TASK_DESCRIPTORS:
        for primitive in entry.computation:
            by_primitive.setdefault(primitive, set()).add(entry.component)
    return {
        primitive: sorted(components)
        for primitive, components in sorted(by_primitive.items())
        if len(components) >= min_components
    }
