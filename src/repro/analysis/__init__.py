"""Experiment drivers and report rendering.

- :mod:`repro.analysis.experiments` -- integrated-system experiments
  (Figs. 3-7, Tables IV-V, the §V.E ablation);
- :mod:`repro.analysis.standalone` -- ILLIXR-v1-style standalone component
  characterization (Tables VI-VII, Fig. 8);
- :mod:`repro.analysis.report` -- plain-text rendering of every table and
  figure the paper reports.
"""

from repro.analysis.experiments import (
    IntegratedRun,
    run_integrated,
    run_matrix,
    vio_accuracy_ablation,
)
from repro.analysis.standalone import (
    characterize_audio,
    characterize_eye_tracking,
    characterize_hologram,
    characterize_reconstruction,
    characterize_reprojection,
    characterize_vio,
)

__all__ = [
    "IntegratedRun",
    "characterize_audio",
    "characterize_eye_tracking",
    "characterize_hologram",
    "characterize_reconstruction",
    "characterize_reprojection",
    "characterize_vio",
    "run_integrated",
    "run_matrix",
    "vio_accuracy_ablation",
]
