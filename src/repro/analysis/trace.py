"""Event-stream trace record & replay (§V.G, evaluation-tools idea 2).

"We can collect input/output traces of each component via the ILLIXR
runtime on a real machine, and organize them like a rosbag to drive
simulations of components of interest."

:class:`TraceRecorder` taps switchboard topics during a run and stores
every event; :func:`install_replay` re-publishes a recorded trace into a
fresh engine+switchboard at the original timestamps, so a component under
study (e.g. a new VIO) can be driven by exactly the sensor stream a
previous run saw -- without the rest of the system.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.switchboard import Switchboard
from repro.sim.engine import Engine


@dataclass(frozen=True)
class TraceEvent:
    """One recorded publication."""

    topic: str
    publish_time: float
    data_time: Optional[float]
    data: Any


@dataclass
class Trace:
    """A rosbag-like recording of selected topics."""

    topics: Tuple[str, ...]
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Time of the last recorded event."""
        return self.events[-1].publish_time if self.events else 0.0

    def for_topic(self, topic: str) -> List[TraceEvent]:
        """All events of one topic, in publication order."""
        return [e for e in self.events if e.topic == topic]

    def counts(self) -> Dict[str, int]:
        """Events per topic."""
        result: Dict[str, int] = {}
        for event in self.events:
            result[event.topic] = result.get(event.topic, 0) + 1
        return result

    def save(self, path: str) -> None:
        """Persist the trace (pickle: payloads are arbitrary objects)."""
        with open(path, "wb") as handle:
            pickle.dump(self, handle)

    @staticmethod
    def load(path: str) -> "Trace":
        """Load a trace saved with :meth:`save`."""
        with open(path, "rb") as handle:
            trace = pickle.load(handle)
        if not isinstance(trace, Trace):
            raise TypeError(f"{path} does not contain a Trace")
        return trace


class TraceRecorder:
    """Taps a switchboard and accumulates a :class:`Trace`.

    Install *before* the run starts:

    .. code-block:: python

        runtime = build_runtime(DESKTOP, "sponza", config)
        recorder = TraceRecorder(runtime.switchboard, ["camera", "imu"])
        result = runtime.run()
        recorder.trace.save("sensors.trace")
    """

    def __init__(self, switchboard: Switchboard, topics: Iterable[str]) -> None:
        topics = tuple(topics)
        if not topics:
            raise ValueError("record at least one topic")
        self.trace = Trace(topics=topics)
        for topic in topics:
            switchboard.topic(topic).subscribe_callback(self._make_tap(topic))

    def _make_tap(self, topic: str):
        def tap(event) -> None:
            self.trace.events.append(
                TraceEvent(
                    topic=topic,
                    publish_time=event.publish_time,
                    data_time=event.data_time,
                    data=event.data,
                )
            )

        return tap


def install_replay(engine: Engine, switchboard: Switchboard, trace: Trace) -> None:
    """Re-publish a trace into ``switchboard`` at the recorded times.

    The replay runs as a DES process, so consumers (plugins registered on
    the same engine) see the events exactly as in the original run --
    the offline camera+IMU component of §II-B generalized to any topic.
    """

    def replayer(eng: Engine):
        for event in trace.events:
            if event.publish_time > eng.now:
                yield eng.timeout(event.publish_time - eng.now)
            switchboard.topic(event.topic).put(
                eng.now, event.data, data_time=event.data_time
            )

    engine.process(replayer(engine), name="trace-replay")
