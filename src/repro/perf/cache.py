"""Plan and scratch-array caches for the accelerated kernels.

Two distinct reuse patterns show up in the hot paths:

1. **Plans** -- expensive, immutable precomputations derived entirely from a
   small parameter tuple (the angular-spectrum transfer stack of a hologram
   solver, the voxel-block tables of a TSDF volume).  :class:`PlanCache`
   memoizes these by key so benchmark sweeps that build many identically
   configured kernels pay the construction cost once.

2. **Scratch buffers** -- per-call temporaries whose shape is stable across
   calls (the WGS constraint ratio, metric filter stacks).  :class:`ArrayCache`
   hands back the same named buffer on every request, eliminating the
   allocation from steady-state frames.  Callers own serialization: a named
   scratch buffer must not be used re-entrantly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Tuple

import numpy as np


class PlanCache:
    """Memoize immutable precomputed arrays keyed by their parameters."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._plans: Dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached plan for ``key``, building it on first use."""
        try:
            plan = self._plans[key]
        except KeyError:
            self.misses += 1
            plan = builder()
            if len(self._plans) >= self.max_entries:
                # Drop the oldest entry (dict preserves insertion order).
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = plan
            return plan
        self.hits += 1
        return plan

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._plans

    def clear(self) -> None:
        self._plans.clear()
        self.hits = 0
        self.misses = 0


class ArrayCache:
    """Named scratch buffers, reused when shape and dtype match.

    ``scratch("wgs.ratio", (3, 128, 128))`` returns the same array on every
    call with matching shape/dtype, uninitialized (the caller must overwrite
    it fully or request zeroing).  A shape or dtype change rebuilds the
    buffer, so resolution changes stay correct, merely un-cached.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def scratch(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: np.dtype | type = np.float64,
        zeroed: bool = False,
    ) -> np.ndarray:
        """A reusable buffer of ``shape``/``dtype`` registered under ``name``."""
        buffer = self._buffers.get(name)
        if buffer is None or buffer.shape != tuple(shape) or buffer.dtype != np.dtype(dtype):
            buffer = np.zeros(shape, dtype=dtype)
            self._buffers[name] = buffer
            return buffer
        if zeroed:
            buffer.fill(0)
        return buffer

    def __len__(self) -> int:
        return len(self._buffers)

    def nbytes(self) -> int:
        """Total bytes currently held by the cache."""
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


#: Process-wide caches shared by the accelerated kernels.
global_plan_cache = PlanCache()
global_scratch = ArrayCache()
