"""Process-pool map with a sequential fallback.

Benchmark sweeps (parameter ablations, per-seed parity checks) are
embarrassingly parallel, but the environments this repo runs in vary from
many-core desktops to single-core CI sandboxes where ``multiprocessing``
primitives may be unavailable altogether.  :func:`parallel_map` probes the
pool once and degrades to a plain sequential map when processes cannot be
used, so callers never need their own fallback logic.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def _pool_probe(x: int) -> int:
    """Picklable no-op used to verify worker processes actually run."""
    return x + 1


class _ProfiledCall:
    """Picklable wrapper shipping worker-side profile records back.

    Worker processes start with a fresh (empty, disabled) profile
    registry, so ``@profiled`` samples taken inside ``fn`` would be lost
    when the worker exits.  When the *parent* has profiling enabled, each
    task instead runs with profiling on in the worker and returns
    ``(result, registry-snapshot)``; the parent folds the snapshots into
    its own registry so ``profile_summary()`` sees every call exactly
    once regardless of where it ran.
    """

    def __init__(self, fn: Callable[[T], R]) -> None:
        self.fn = fn

    def __call__(self, item: T):
        from repro.perf import profile

        profile.reset_profile()
        profile.enable_profiling(True)
        try:
            result = self.fn(item)
        finally:
            profile.enable_profiling(False)
        return result, profile.snapshot_records()


def _try_make_pool(workers: int):
    """A working ProcessPoolExecutor, or None when the platform refuses."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=workers)
        # Semaphore creation is lazy on some platforms; force one round trip
        # so sandboxes that forbid sem_open/fork fail here, not mid-map.
        if pool.submit(_pool_probe, 1).result(timeout=60) != 2:
            pool.shutdown(wait=False)
            return None
        return pool
    except Exception as exc:  # noqa: BLE001 - any pool failure means "no pool"
        warnings.warn(
            f"parallel_map: process pool unavailable ({exc!r}); running sequentially",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    processes: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items``, in worker processes when possible.

    ``processes=None`` uses the CPU count; ``processes<=1`` (or a single
    item, or an unusable platform) runs sequentially in-process.  Results
    are returned in input order, and exceptions from ``fn`` propagate.
    """
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    materialized: Sequence[T] = list(items)
    if processes is None:
        processes = os.cpu_count() or 1
    workers = min(processes, len(materialized))
    if workers <= 1:
        return [fn(item) for item in materialized]
    pool = _try_make_pool(workers)
    if pool is None:
        return [fn(item) for item in materialized]
    from repro.perf import profile

    try:
        if profile.profiling_enabled():
            pairs = list(pool.map(_ProfiledCall(fn), materialized, chunksize=chunksize))
            results: List[R] = []
            for result, records in pairs:
                profile.merge_records(records)
                results.append(result)
            return results
        return list(pool.map(fn, materialized, chunksize=chunksize))
    finally:
        pool.shutdown()
