"""Shared hot-path acceleration layer.

Per-component deadlines (Table I of the paper) leave each kernel a 2-20 ms
budget per frame, so the hot paths — WGS holography, TSDF fusion, the
SSIM/FLIP image metrics — cannot afford the naive one-item-at-a-time style.
This package collects the machinery those kernels share:

- :mod:`repro.perf.fft` -- batched 2-D FFT helpers over a ``(..., N, N)``
  stack (one backend call instead of a Python loop of transforms);
- :mod:`repro.perf.cache` -- :class:`PlanCache` for memoizing expensive
  precomputed operator arrays (e.g. angular-spectrum transfer stacks) and
  :class:`ArrayCache` for reusable scratch buffers;
- :mod:`repro.perf.parallel` -- :func:`parallel_map`, a process-pool map
  with a sequential fallback, for embarrassingly parallel benchmark sweeps;
- :mod:`repro.perf.profile` -- the :func:`profiled` decorator and
  :func:`profile_summary`, lightweight opt-in wall-clock instrumentation of
  the accelerated kernels.

Every kernel rewired through this layer keeps its original implementation
behind an ``accelerated=False`` flag, and ``benchmarks/perf_harness.py``
times both paths and checks their numerical parity (see
``docs/performance.md``).
"""

from repro.perf.cache import ArrayCache, PlanCache, global_plan_cache, global_scratch
from repro.perf.fft import FFT_BACKEND, batched_fft2, batched_ifft2, fft2, ifft2
from repro.perf.parallel import parallel_map
from repro.perf.profile import (
    enable_profiling,
    profile_summary,
    profiled,
    profiling_enabled,
    reset_profile,
    span,
)

__all__ = [
    "ArrayCache",
    "FFT_BACKEND",
    "PlanCache",
    "batched_fft2",
    "batched_ifft2",
    "enable_profiling",
    "fft2",
    "global_plan_cache",
    "global_scratch",
    "ifft2",
    "parallel_map",
    "profile_summary",
    "profiled",
    "profiling_enabled",
    "reset_profile",
    "span",
]
