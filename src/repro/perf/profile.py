"""Opt-in wall-clock profiling of the accelerated kernels.

Profiling is disabled by default so the hooks cost one attribute load and a
branch per call.  When enabled (``enable_profiling()``), every ``@profiled``
function and every ``span(...)`` block records wall time into a process-wide
registry that ``profile_summary()`` renders as plain dictionaries — the same
shape ``benchmarks/perf_harness.py`` writes into ``BENCH_hotpaths.json``.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Mapping, Optional

_enabled = False
_records: Dict[str, Dict[str, float]] = {}
# Callers (and pool workers merging back, see repro.perf.parallel) may hit
# the registry from multiple threads; one lock keeps aggregation exact.
_lock = threading.Lock()
# Optional repro.obs tracer: when set, every profiled call also becomes a
# ``kernel`` span nested in the currently active plugin span, placing the
# host cost of real kernels at its simulated-time location.
_tracer: Optional[Any] = None


def enable_profiling(on: bool = True) -> None:
    """Globally switch the ``@profiled`` / ``span`` hooks on or off."""
    global _enabled
    _enabled = on


def profiling_enabled() -> bool:
    """Whether the hooks are currently recording."""
    return _enabled


def reset_profile() -> None:
    """Discard all recorded samples."""
    with _lock:
        _records.clear()


def set_tracer(tracer: Optional[Any]) -> None:
    """Install (or, with None, remove) a span tracer for kernel nesting.

    Wired by :meth:`repro.obs.Observability.attach`; while installed,
    ``_record`` emits a zero-simulated-duration ``kernel`` span carrying
    the wall time as a ``wall_s`` attribute -- but only when a plugin
    span is active, so standalone benchmark runs stay span-free.
    """
    global _tracer
    _tracer = tracer


def snapshot_records() -> Dict[str, Dict[str, float]]:
    """A deep copy of the registry (what pool workers ship back)."""
    with _lock:
        return {name: dict(stats) for name, stats in _records.items()}


def merge_records(records: Mapping[str, Mapping[str, float]]) -> None:
    """Fold another registry snapshot into this one (pool-worker merge)."""
    with _lock:
        for name, incoming in records.items():
            stats = _records.get(name)
            if stats is None:
                _records[name] = dict(incoming)
            else:
                stats["calls"] += incoming["calls"]
                stats["total_s"] += incoming["total_s"]
                stats["min_s"] = min(stats["min_s"], incoming["min_s"])
                stats["max_s"] = max(stats["max_s"], incoming["max_s"])


def _record(name: str, elapsed: float) -> None:
    with _lock:
        stats = _records.get(name)
        if stats is None:
            _records[name] = {
                "calls": 1,
                "total_s": elapsed,
                "min_s": elapsed,
                "max_s": elapsed,
            }
        else:
            stats["calls"] += 1
            stats["total_s"] += elapsed
            stats["min_s"] = min(stats["min_s"], elapsed)
            stats["max_s"] = max(stats["max_s"], elapsed)
    tracer = _tracer
    if tracer is not None and tracer.current() is not None:
        kernel = tracer.start_span(name, track=tracer.current().track, kind="kernel", attributes={"wall_s": elapsed})
        tracer.end_span(kernel, end=kernel.start)


@contextmanager
def span(name: str) -> Iterator[None]:
    """Record the wall time of a ``with`` block under ``name`` (when enabled)."""
    if not _enabled:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        _record(name, time.perf_counter() - start)


def profiled(name_or_fn: Optional[Callable[..., Any] | str] = None) -> Callable[..., Any]:
    """Decorator recording each call's wall time under the function's name.

    Usable bare (``@profiled``) or with an explicit registry name
    (``@profiled("hologram.solve")``).
    """

    def decorate(fn: Callable[..., Any], name: Optional[str] = None) -> Callable[..., Any]:
        label = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                _record(label, time.perf_counter() - start)

        return wrapper

    if callable(name_or_fn):
        return decorate(name_or_fn)
    return lambda fn: decorate(fn, name_or_fn)


def profile_summary(reset: bool = False) -> Dict[str, Dict[str, float]]:
    """Per-name call counts and wall-time aggregates (mean derived)."""
    with _lock:
        summary = {
            name: {**stats, "mean_s": stats["total_s"] / stats["calls"]}
            for name, stats in _records.items()
        }
    if reset:
        reset_profile()
    return summary
