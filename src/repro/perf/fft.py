"""Batched 2-D FFT helpers.

The WGS hologram solver and the ambisonic audio chain both reduce to many
same-sized 2-D transforms per frame (§V-B's shared-primitive analysis).
Issuing them as one batched call over a ``(..., N, N)`` stack keeps the
work inside the FFT backend instead of a Python loop, which matters on the
single-core platforms the paper's Jetson-LP configuration models.

``scipy.fft`` (pocketfft) is preferred when present; the helpers fall back
to ``numpy.fft`` transparently.  Both backends compute identical transforms
to within 1 ulp, and the parity tests in ``tests/test_perf.py`` pin the
end-to-end agreement.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly by every import
    import scipy.fft as _backend

    FFT_BACKEND = "scipy"
except ImportError:  # pragma: no cover - scipy is a hard dependency today
    _backend = np.fft
    FFT_BACKEND = "numpy"

_PLANE_AXES: Tuple[int, int] = (-2, -1)


def fft2(array: np.ndarray, axes: Tuple[int, int] = _PLANE_AXES) -> np.ndarray:
    """2-D FFT over ``axes`` (default: the trailing two)."""
    return _backend.fft2(array, axes=axes)


def ifft2(array: np.ndarray, axes: Tuple[int, int] = _PLANE_AXES) -> np.ndarray:
    """2-D inverse FFT over ``axes`` (default: the trailing two)."""
    return _backend.ifft2(array, axes=axes)


def batched_fft2(stack: np.ndarray) -> np.ndarray:
    """Forward-transform every plane of a ``(..., N, M)`` stack in one call."""
    if stack.ndim < 2:
        raise ValueError(f"need at least a 2-D array, got shape {stack.shape}")
    return _backend.fft2(stack, axes=_PLANE_AXES)


def batched_ifft2(stack: np.ndarray) -> np.ndarray:
    """Inverse-transform every plane of a ``(..., N, M)`` stack in one call."""
    if stack.ndim < 2:
        raise ValueError(f"need at least a 2-D array, got shape {stack.shape}")
    return _backend.ifft2(stack, axes=_PLANE_AXES)
