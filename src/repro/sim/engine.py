"""A minimal discrete-event simulation (DES) engine.

Processes are Python generators that ``yield`` *waitables*:

- :class:`Timeout` -- resume after a fixed simulated delay.
- :class:`Event` -- resume when some other process succeeds the event.
- :class:`Process` -- resume when another process finishes.

The engine maintains a priority queue of pending occurrences keyed by
``(time, sequence)`` so that simultaneous events fire in the deterministic
order in which they were scheduled.  This is the same execution model as
SimPy's core, rebuilt from scratch so the repository is self-contained.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

ProcessGenerator = Generator["Waitable", Any, Any]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. re-succeeding an event)."""


class Waitable:
    """Base class for things a process may ``yield`` on.

    A waitable is *triggered* once its occurrence time is decided and
    *processed* once all callbacks have run.  Each waitable carries a
    ``value`` delivered to whoever waits on it (thrown if it is an
    exception and ``ok`` is False).
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[list[Callable[["Waitable"], None]]] = []
        self.value: Any = None
        self.ok: bool = True

    @property
    def triggered(self) -> bool:
        """True once the waitable has been scheduled to occur."""
        return self.callbacks is None or self._scheduled

    _scheduled = False

    def _trigger(self, value: Any = None, ok: bool = True) -> None:
        if self._scheduled or self.callbacks is None:
            raise SimulationError(f"{self!r} has already been triggered")
        self.value = value
        self.ok = ok
        self._scheduled = True
        self.engine._push(self)

    def _process_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)


class Event(Waitable):
    """A one-shot event another process can succeed (or fail) with a value."""

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, resuming all waiters with ``value``."""
        self._trigger(value, ok=True)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event so that waiters have ``exception`` raised."""
        if not isinstance(exception, BaseException):
            raise TypeError("Event.fail() requires an exception instance")
        self._trigger(exception, ok=False)
        return self


class Timeout(Waitable):
    """Occurs a fixed ``delay`` after creation."""

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self.value = value
        self._scheduled = True
        engine._push(self, at=engine.now + delay)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Waitable):
    """Wraps a generator; the process's completion is itself a waitable."""

    def __init__(self, engine: "Engine", generator: ProcessGenerator, name: str = "") -> None:
        super().__init__(engine)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Waitable] = None
        # Bootstrap: resume the process at the current time.
        bootstrap = Timeout(engine, 0.0)
        bootstrap.callbacks.append(self._resume)
        self._target = bootstrap

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self.callbacks is not None and not self._scheduled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        wakeup = Timeout(self.engine, 0.0, value=Interrupt(cause))
        wakeup.ok = False
        wakeup.callbacks.append(self._resume)
        self._target = wakeup

    def _resume(self, trigger: Waitable) -> None:
        self._target = None
        try:
            if trigger.ok:
                next_target = self.generator.send(trigger.value)
            else:
                next_target = self.generator.throw(trigger.value)
        except StopIteration as stop:
            self._trigger(stop.value, ok=True)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            if not self.callbacks:
                raise
            self._trigger(exc, ok=False)
            return
        if not isinstance(next_target, Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded a non-waitable: {next_target!r}"
            )
        if next_target.callbacks is None:
            # Target already processed: resume immediately with its value.
            wakeup = Timeout(self.engine, 0.0, value=next_target.value)
            wakeup.ok = next_target.ok
            wakeup.callbacks.append(self._resume)
            self._target = wakeup
        else:
            next_target.callbacks.append(self._resume)
            self._target = next_target


class Engine:
    """The discrete-event simulation core: a clock plus an event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Waitable]] = []
        self._sequence = 0

    def _push(self, waitable: Waitable, at: Optional[float] = None) -> None:
        when = self.now if at is None else at
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        heapq.heappush(self._queue, (when, self._sequence, waitable))
        self._sequence += 1

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a timeout occurring ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator, name)

    def call_later(self, delay: float, fn: Callable[[], None]) -> Timeout:
        """Invoke ``fn`` after ``delay`` simulated seconds (no process needed).

        Used by the watchdog (arming a hang check against a running
        invocation) and by the fault injector (redelivering a delayed
        switchboard event) -- cases where spinning up a full generator
        process per callback would be wasteful.
        """
        timeout = Timeout(self, delay)
        timeout.callbacks.append(lambda _trigger: fn())
        return timeout

    def step(self) -> None:
        """Process the single next occurrence in the queue."""
        when, _seq, waitable = heapq.heappop(self._queue)
        self.now = when
        waitable._process_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or the clock reaches ``until``."""
        if until is not None and until < self.now:
            raise SimulationError(f"cannot run backwards to {until}")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until

    def all_of(self, waitables: Iterable[Waitable]) -> Event:
        """An event that succeeds once every input waitable has occurred."""
        pending = [w for w in waitables if w.callbacks is not None]
        done = self.event()
        if not pending:
            done.succeed([])
            return done
        remaining = {"count": len(pending)}

        def on_occur(_w: Waitable) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                done.succeed(None)

        for waitable in pending:
            waitable.callbacks.append(on_occur)
        return done
