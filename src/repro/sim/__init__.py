"""Discrete-event simulation substrate.

The paper runs ILLIXR live on three hardware platforms.  This reproduction
has no Jetson or GPU, so the runtime executes on a discrete-event simulator:
plugins are simulation processes, CPU cores and the GPU are contended
resources, and the virtual clock stands in for wall-clock time.  All timing
phenomena the paper measures (missed deadlines, execution-time variability
from contention, motion-to-photon latency) emerge from this substrate.
"""

from repro.sim.engine import Engine, Event, Interrupt, Process, Timeout
from repro.sim.resources import Request, Resource

__all__ = [
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "Timeout",
]
