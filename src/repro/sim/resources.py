"""Contended resources for the DES engine (CPU cores, the GPU).

A :class:`Resource` has an integer capacity and a FIFO wait queue.  A process
acquires a slot by yielding the :class:`Request` returned from
:meth:`Resource.request` and must later call :meth:`Resource.release`.

The resource also keeps a busy-time integral so experiments can report
utilization (used for the CPU-cycle attribution of Fig. 5 sanity checks).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.sim.engine import Engine, Event, SimulationError


class Request(Event):
    """A pending (or granted) claim on one slot of a :class:`Resource`.

    Lower ``priority`` values are granted first (0 is the default); ties
    break FIFO.  Priorities model e.g. the compositor's high-priority GPU
    context that lets reprojection jump ahead of application rendering.
    """

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.engine)
        self.resource = resource
        self.priority = priority
        self.granted_at: Optional[float] = None


class Resource:
    """A capacity-limited resource with FIFO granting."""

    def __init__(self, engine: Engine, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._waiting: Deque[Request] = deque()
        self._busy_integral = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def _account(self) -> None:
        now = self.engine.now
        self._busy_integral += self.in_use * (now - self._last_change)
        self._last_change = now

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; yield the returned request to wait for the grant."""
        req = Request(self, priority=priority)
        if self.in_use < self.capacity:
            self._grant(req)
        else:
            # Insert before the first strictly-lower-priority waiter.
            for i, waiting in enumerate(self._waiting):
                if waiting.priority > req.priority:
                    self._waiting.insert(i, req)
                    break
            else:
                self._waiting.append(req)
        return req

    def _grant(self, req: Request) -> None:
        self._account()
        self._users.add(req)
        req.granted_at = self.engine.now
        req.succeed(req)

    def release(self, req: Request) -> None:
        """Return a granted slot, waking the next waiter if any."""
        if req in self._users:
            self._account()
            self._users.discard(req)
        elif req in self._waiting:
            self._waiting.remove(req)
            return
        else:
            raise SimulationError(f"release of unknown request on {self.name!r}")
        while self._waiting and self.in_use < self.capacity:
            self._grant(self._waiting.popleft())

    def cancel(self, req: Request) -> None:
        """Withdraw a request that has not been granted yet."""
        if req in self._waiting:
            self._waiting.remove(req)
        elif req in self._users:
            self.release(req)

    def busy_time(self) -> float:
        """Integral of in-use slots over time (slot-seconds)."""
        self._account()
        return self._busy_integral

    def utilization(self) -> float:
        """Mean fraction of capacity in use since the simulation began."""
        if self.engine.now == 0.0:
            return 0.0
        return self.busy_time() / (self.capacity * self.engine.now)
