"""OpenXR-flavoured frame-loop API over the repro runtime.

The subset a rendering client actually uses, with OpenXR's names and call
ordering:

.. code-block:: python

    instance = Instance.create("my app")
    session = instance.create_session(runtime)
    while session.running:
        frame = session.wait_frame()           # xrWaitFrame
        session.begin_frame()                  # xrBeginFrame
        views = session.locate_views(frame.predicted_display_time)
        layer = render(views)                  # app-side
        session.end_frame(frame, [layer])      # xrEndFrame

Calls map onto switchboard topics: ``locate_views`` is an asynchronous
read of ``fast_pose`` (with optional prediction to the display time), and
``end_frame`` publishes on ``frame`` exactly as the application plugin
does.  The conformance-style state machine (create -> begin -> end) is
enforced so misuse fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.switchboard import Switchboard
from repro.maths.quaternion import quat_exp, quat_multiply
from repro.maths.se3 import Pose
from repro.plugins.visual import SubmittedFrame


class XrError(RuntimeError):
    """Raised on OpenXR state-machine violations."""


@dataclass(frozen=True)
class FrameState:
    """Result of ``wait_frame``: when the frame will be displayed."""

    predicted_display_time: float
    predicted_display_period: float
    should_render: bool = True


@dataclass(frozen=True)
class ViewLocation:
    """One eye's view pose (we expose left/right with a stereo offset)."""

    pose: Pose
    eye: str
    fov_deg: float


@dataclass
class CompositionLayer:
    """What the app submits: a rendered frame tagged with its view pose."""

    pose: Pose
    image: Optional[np.ndarray] = None
    depth: Optional[np.ndarray] = None


class Instance:
    """An OpenXR instance: entry point, owns sessions."""

    def __init__(self, application_name: str) -> None:
        if not application_name:
            raise XrError("application name must be non-empty")
        self.application_name = application_name
        self.runtime_name = "repro (ILLIXR reproduction) via Monado-style shim"

    @staticmethod
    def create(application_name: str) -> "Instance":
        """xrCreateInstance."""
        return Instance(application_name)

    def create_session(
        self,
        switchboard: Switchboard,
        display_rate_hz: float = 120.0,
        ipd_m: float = 0.064,
        now_fn=None,
    ) -> "Session":
        """xrCreateSession against a runtime's switchboard."""
        return Session(self, switchboard, display_rate_hz, ipd_m, now_fn or (lambda: 0.0))


class Session:
    """An OpenXR session: the frame loop."""

    def __init__(
        self,
        instance: Instance,
        switchboard: Switchboard,
        display_rate_hz: float,
        ipd_m: float,
        now_fn,
    ) -> None:
        if display_rate_hz <= 0:
            raise XrError("display rate must be positive")
        self.instance = instance
        self.switchboard = switchboard
        self.display_period = 1.0 / display_rate_hz
        self.ipd_m = ipd_m
        self._now = now_fn
        self.running = True
        self._frame_began = False
        self.frames_submitted = 0

    # ------------------------------------------------------------------

    def wait_frame(self) -> FrameState:
        """xrWaitFrame: next display time prediction."""
        if not self.running:
            raise XrError("session is not running")
        now = self._now()
        next_vsync = (int(now / self.display_period) + 1) * self.display_period
        return FrameState(
            predicted_display_time=next_vsync,
            predicted_display_period=self.display_period,
        )

    def begin_frame(self) -> None:
        """xrBeginFrame."""
        if self._frame_began:
            raise XrError("begin_frame called twice without end_frame")
        self._frame_began = True

    def locate_views(self, display_time: float) -> List[ViewLocation]:
        """xrLocateViews: the freshest head pose, predicted to display time.

        Prediction propagates the pose forward by the pose age using a
        constant-angular-velocity model when two poses are available
        (footnote 3 of the paper: ILLIXR can predict the pose for when the
        frame will actually be displayed).
        """
        topic = self.switchboard.topic("fast_pose")
        latest = topic.get_latest()
        if latest is None or latest.data is None:
            head = Pose(np.array([0.0, 0.0, 1.7]))
        else:
            head = latest.data
            horizon = display_time - latest.effective_data_time
            previous = topic.get_latest_before(latest.publish_time - 1e-9)
            if horizon > 0 and previous is not None and previous.data is not None:
                dt = latest.effective_data_time - previous.effective_data_time
                if dt > 1e-6:
                    # Angular velocity from the last two poses.
                    from repro.maths.quaternion import quat_conjugate, quat_log

                    delta = quat_multiply(
                        quat_conjugate(previous.data.orientation), head.orientation
                    )
                    omega = quat_log(delta) / dt
                    velocity = (head.position - previous.data.position) / dt
                    head = Pose(
                        position=head.position + velocity * horizon,
                        orientation=quat_multiply(head.orientation, quat_exp(omega * horizon)),
                        timestamp=head.timestamp,
                    )
        half_ipd = self.ipd_m / 2.0
        views = []
        for eye, sign in (("left", +1.0), ("right", -1.0)):
            # Eye offset along body +y (left).
            offset = np.array([0.0, sign * half_ipd, 0.0])
            views.append(
                ViewLocation(
                    pose=Pose(
                        position=head.transform_point(offset),
                        orientation=head.orientation,
                        timestamp=head.timestamp,
                    ),
                    eye=eye,
                    fov_deg=90.0,
                )
            )
        return views

    def end_frame(self, frame: FrameState, layers: List[CompositionLayer]) -> None:
        """xrEndFrame: submit layers to the compositor (the ``frame`` topic)."""
        if not self._frame_began:
            raise XrError("end_frame without begin_frame")
        self._frame_began = False
        if not layers:
            return
        layer = layers[0]
        now = self._now()
        self.switchboard.topic("frame").put(
            max(now, frame.predicted_display_time - self.display_period),
            SubmittedFrame(pose=layer.pose, render_start=now, complexity=1.0),
            data_time=layer.pose.timestamp,
        )
        self.frames_submitted += 1

    def request_exit(self) -> None:
        """xrRequestExitSession."""
        self.running = False
