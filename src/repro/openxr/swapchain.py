"""OpenXR-style swapchain: the image ring between app and compositor.

Real OpenXR applications render into swapchain images acquired from the
runtime (``xrAcquireSwapchainImage`` / ``xrWaitSwapchainImage`` /
``xrReleaseSwapchainImage``); the compositor samples released images.
This implements those semantics over numpy buffers with the conformance
rules that matter: images cycle in order, an image cannot be acquired
twice before release, and wait-before-write is enforced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from repro.openxr.api import XrError


@dataclass
class SwapchainImage:
    """One image in the ring."""

    index: int
    buffer: np.ndarray
    acquired: bool = False
    waited: bool = False


@dataclass
class Swapchain:
    """A fixed-size ring of render targets.

    ``capacity`` of 3 matches typical runtimes (triple buffering).
    """

    width: int
    height: int
    capacity: int = 3
    channels: int = 3
    images: List[SwapchainImage] = field(init=False)
    _free: Deque[int] = field(init=False)
    _released: Deque[int] = field(init=False)

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise XrError("swapchain dimensions must be positive")
        if self.capacity < 2:
            raise XrError("swapchain needs at least 2 images")
        self.images = [
            SwapchainImage(index=i, buffer=np.zeros((self.height, self.width, self.channels)))
            for i in range(self.capacity)
        ]
        self._free = deque(range(self.capacity))
        self._released = deque()

    # ------------------------------------------------------------------
    # Application side
    # ------------------------------------------------------------------

    def acquire_image(self) -> int:
        """xrAcquireSwapchainImage: returns the next image index."""
        if not self._free:
            raise XrError("no swapchain image available (all acquired/queued)")
        index = self._free.popleft()
        image = self.images[index]
        image.acquired = True
        image.waited = False
        return index

    def wait_image(self, index: int) -> SwapchainImage:
        """xrWaitSwapchainImage: the image is now safe to write."""
        image = self._checked(index)
        if not image.acquired:
            raise XrError(f"image {index} was not acquired")
        image.waited = True
        return image

    def release_image(self, index: int) -> None:
        """xrReleaseSwapchainImage: hand the image to the compositor."""
        image = self._checked(index)
        if not image.acquired:
            raise XrError(f"image {index} was not acquired")
        if not image.waited:
            raise XrError(f"image {index} released without wait (write hazard)")
        image.acquired = False
        image.waited = False
        self._released.append(index)

    # ------------------------------------------------------------------
    # Compositor side
    # ------------------------------------------------------------------

    def latest_released(self) -> Optional[SwapchainImage]:
        """The most recently released image (what the compositor samples);
        older released images return to the free ring."""
        if not self._released:
            return None
        while len(self._released) > 1:
            self._free.append(self._released.popleft())
        return self.images[self._released[-1]]

    def recycle(self) -> None:
        """Return the sampled image to the free ring (after compositing)."""
        if self._released:
            self._free.append(self._released.popleft())

    # ------------------------------------------------------------------

    def _checked(self, index: int) -> SwapchainImage:
        if not 0 <= index < self.capacity:
            raise XrError(f"bad swapchain image index {index}")
        return self.images[index]
