"""A minimal OpenXR-style application interface.

ILLIXR is exposed to applications through Monado's OpenXR implementation;
game engines call ``xrWaitFrame``/``xrLocateViews``/``xrEndFrame``.  This
package provides the same control flow over our runtime so example
applications are written the way an OpenXR client would be.
"""

from repro.openxr.api import FrameState, Instance, Session, ViewLocation

__all__ = ["FrameState", "Instance", "Session", "ViewLocation"]
