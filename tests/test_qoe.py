"""Tests for the offline image-quality replay (§III-E methodology)."""

import numpy as np
import pytest

from repro.metrics.qoe import (
    ImageQualityResult,
    audio_bitrate_kbps,
    evaluate_image_quality,
    pose_error_series,
)
from repro.visual.renderer import RenderCamera


def test_replay_produces_frames(desktop_full_run):
    quality = evaluate_image_quality(
        desktop_full_run, max_frames=4, camera=RenderCamera(width=96, height=54)
    )
    assert quality.frames == 4
    assert 0.0 < quality.ssim_mean <= 1.0
    assert quality.ssim_std >= 0.0


def test_replay_quality_near_perfect_for_accurate_poses(desktop_full_run):
    """On the desktop the pipeline's poses are accurate: actual vs ideal
    reprojections should be close to identical."""
    quality = evaluate_image_quality(
        desktop_full_run, max_frames=4, camera=RenderCamera(width=96, height=54)
    )
    assert quality.ssim_mean > 0.8
    assert quality.one_minus_flip_mean > 0.85


def test_replay_translational_variant(desktop_full_run):
    quality = evaluate_image_quality(
        desktop_full_run,
        max_frames=3,
        camera=RenderCamera(width=64, height=36),
        translational=True,
    )
    assert 0.0 < quality.ssim_mean <= 1.0


def test_replay_validation(desktop_full_run):
    with pytest.raises(ValueError):
        evaluate_image_quality(desktop_full_run, max_frames=0)
    with pytest.raises(ValueError):
        evaluate_image_quality(desktop_full_run, skip_initial_s=1e9)


def test_result_row_rendering():
    row = ImageQualityResult(0.9312, 0.02, 0.985, 0.01, 10).row()
    assert "SSIM 0.93" in row and "1-FLIP 0.98" in row


def test_audio_bitrate_matches_hoa_configuration():
    # 16 channels x 48 kHz x 32 bits = 24.576 Mbit/s.
    assert audio_bitrate_kbps() == pytest.approx(24576.0)
    assert audio_bitrate_kbps(channels=4) == pytest.approx(6144.0)


def test_pose_error_series(desktop_full_run):
    times, errors = pose_error_series(desktop_full_run)
    assert len(times) == len(errors) > 10
    assert np.all(np.diff(times) > 0)
    assert np.all(errors >= 0)
    assert errors.mean() < 0.1


# ---------------------------------------------------------------------------
# Metrics export (the artifact's results/metrics equivalent)
# ---------------------------------------------------------------------------


def test_runtime_summary_is_json_serializable(desktop_full_run, tmp_path):
    import json
    import os

    summary = desktop_full_run.summary()
    assert summary["platform"] == "desktop"
    assert summary["app"] == "platformer"
    assert summary["mtp_ms"]["count"] > 100
    path = os.path.join(tmp_path, "metrics.json")
    desktop_full_run.save_metrics(path)
    loaded = json.load(open(path))
    assert loaded["frame_rates_hz"]["vio"] == pytest.approx(15.0, abs=1.0)
    assert abs(sum(loaded["cpu_share"].values()) - 1.0) < 1e-3
