"""Unit tests for the platform, timing, power, and microarchitecture models."""

import numpy as np
import pytest

from repro.hardware.platform import (
    DESKTOP,
    JETSON_HP,
    JETSON_LP,
    PLATFORMS,
    TABLE_I_REQUIREMENTS,
    platform_by_key,
)
from repro.hardware.power import PowerModel, RailModel
from repro.hardware.timing import TimingModel
from repro.hardware.uarch import (
    COMPONENT_PROFILES,
    MicroarchModel,
    WorkloadProfile,
    component_breakdowns,
)


# ---------------------------------------------------------------------------
# Platforms
# ---------------------------------------------------------------------------


def test_three_platforms_registered():
    assert set(PLATFORMS) == {"desktop", "jetson-hp", "jetson-lp"}


def test_platform_lookup():
    assert platform_by_key("desktop") is DESKTOP
    with pytest.raises(KeyError):
        platform_by_key("raspberry-pi")


def test_platform_scaling_ordering():
    assert DESKTOP.cpu_scale < JETSON_HP.cpu_scale < JETSON_LP.cpu_scale
    assert DESKTOP.gpu_scale < JETSON_HP.gpu_scale < JETSON_LP.gpu_scale


def test_only_desktop_has_gpu_priority_contexts():
    assert DESKTOP.gpu_priority_contexts
    assert not JETSON_HP.gpu_priority_contexts
    assert not JETSON_LP.gpu_priority_contexts


def test_platform_cycles():
    assert DESKTOP.cycles(1.0) == pytest.approx(3.4e9)


def test_table_i_has_four_devices():
    assert [d.device for d in TABLE_I_REQUIREMENTS] == [
        "Varjo VR-3", "Ideal VR", "HoloLens 2", "Ideal AR",
    ]


# ---------------------------------------------------------------------------
# Timing model
# ---------------------------------------------------------------------------


def test_sample_positive_and_reproducible():
    a = TimingModel(DESKTOP, seed=1)
    b = TimingModel(DESKTOP, seed=1)
    sample_a = a.sample("vio")
    sample_b = b.sample("vio")
    assert sample_a.cpu_time == sample_b.cpu_time
    assert sample_a.cpu_time > 0
    assert sample_a.gpu_time == 0.0


def test_sample_mean_close_to_model_mean():
    timing = TimingModel(DESKTOP, seed=2)
    samples = [timing.sample("vio").cpu_time for _ in range(3000)]
    assert np.mean(samples) == pytest.approx(12.0e-3, rel=0.05)
    cov = np.std(samples) / np.mean(samples)
    assert cov == pytest.approx(0.21, rel=0.2)


def test_platform_scaling_applied():
    desktop = TimingModel(DESKTOP, seed=0).mean_cost("audio_encoding")
    jetson = TimingModel(JETSON_LP, seed=0).mean_cost("audio_encoding")
    assert jetson.cpu_time == pytest.approx(desktop.cpu_time * 4.2)


def test_application_costs_ordered_by_scene_complexity():
    timing = TimingModel(DESKTOP, seed=0)
    totals = [
        timing.mean_cost("application", app=a).total
        for a in ("sponza", "materials", "platformer", "ar_demo")
    ]
    assert totals == sorted(totals, reverse=True)


def test_application_requires_app_name():
    timing = TimingModel(DESKTOP, seed=0)
    with pytest.raises(ValueError):
        timing.sample("application")
    with pytest.raises(KeyError):
        timing.sample("application", app="doom")


def test_unknown_component_rejected():
    with pytest.raises(KeyError):
        TimingModel(DESKTOP, seed=0).sample("flux_capacitor")


def test_complexity_scales_sample():
    timing = TimingModel(DESKTOP, seed=3)
    plain = np.mean([timing.sample("vio", complexity=1.0).cpu_time for _ in range(500)])
    double = np.mean([timing.sample("vio", complexity=2.0).cpu_time for _ in range(500)])
    assert double == pytest.approx(2 * plain, rel=0.15)
    with pytest.raises(ValueError):
        timing.sample("vio", complexity=0.0)


def test_percentile_monotone():
    timing = TimingModel(DESKTOP, seed=0)
    p50 = timing.percentile("timewarp", 0.5)
    p90 = timing.percentile("timewarp", 0.9)
    assert p90 > p50 > 0
    with pytest.raises(ValueError):
        timing.percentile("timewarp", 1.5)


def test_gpu_components_have_gpu_time():
    timing = TimingModel(DESKTOP, seed=0)
    assert timing.sample("hologram").gpu_time > 0
    assert timing.sample("timewarp").gpu_time > 0


# ---------------------------------------------------------------------------
# Power model
# ---------------------------------------------------------------------------


def test_rail_power_interpolates():
    rail = RailModel(static_w=1.0, active_w=3.0)
    assert rail.power(0.0) == 1.0
    assert rail.power(1.0) == 4.0
    with pytest.raises(ValueError):
        rail.power(1.5)


def test_power_totals_ordered_across_platforms():
    totals = []
    for platform in (DESKTOP, JETSON_HP, JETSON_LP):
        breakdown = PowerModel(platform).breakdown(cpu_utilization=0.3, gpu_utilization=0.8)
        totals.append(breakdown.total)
    assert totals[0] > 5 * totals[1] > 5 * totals[2] / 2
    # Desktop is O(100 W); Jetson-LP is O(7 W).
    assert totals[0] > 80
    assert totals[2] < 12


def test_desktop_gpu_dominates_under_load():
    breakdown = PowerModel(DESKTOP).breakdown(cpu_utilization=0.2, gpu_utilization=0.9)
    shares = breakdown.share()
    assert shares["GPU"] > 0.5


def test_jetson_lp_soc_sys_majority():
    """The paper's §IV-A2 headline: SoC+Sys > 50% on Jetson-LP."""
    breakdown = PowerModel(JETSON_LP).breakdown(cpu_utilization=0.15, gpu_utilization=0.6)
    shares = breakdown.share()
    assert shares["SoC"] + shares["Sys"] > 0.5


def test_desktop_has_no_soc_rail():
    breakdown = PowerModel(DESKTOP).breakdown(0.1, 0.1)
    assert "SoC" not in breakdown.rails


def test_power_shares_sum_to_one():
    breakdown = PowerModel(JETSON_HP).breakdown(0.4, 0.7)
    assert sum(breakdown.share().values()) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Microarchitecture model
# ---------------------------------------------------------------------------


def test_breakdown_fractions_sum_to_one():
    model = MicroarchModel()
    for profile in COMPONENT_PROFILES.values():
        breakdown = model.breakdown(profile)
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)
        for value in breakdown.fractions().values():
            assert 0.0 <= value <= 1.0


def test_fig8_component_shapes():
    """The paper's Fig. 8 orderings: reprojection lowest IPC and
    frontend-bound; audio playback highest IPC and retiring-heavy."""
    breakdowns = component_breakdowns()
    assert breakdowns["timewarp"].ipc < 0.5
    assert breakdowns["timewarp"].frontend_bound > 0.4
    assert breakdowns["audio_playback"].ipc > 3.0
    assert breakdowns["audio_playback"].retiring > 0.8
    assert 1.5 < breakdowns["vio"].ipc < 2.6
    assert breakdowns["audio_encoding"].backend_bound > 0.15  # the divider
    assert breakdowns["scene_reconstruction"].backend_bound > 0.4  # memory-bound


def test_ipc_ordering_matches_paper():
    b = component_breakdowns()
    assert b["timewarp"].ipc < b["vio"].ipc < b["audio_encoding"].ipc < b["audio_playback"].ipc


def test_profile_validation():
    with pytest.raises(ValueError):
        WorkloadProfile(vector_frac=1.5, div_frac=0, icache_kb=10, branch_mpki=1,
                        working_set_kb=10, mem_intensity=0.1)
    with pytest.raises(ValueError):
        WorkloadProfile(vector_frac=0.5, div_frac=0, icache_kb=0, branch_mpki=1,
                        working_set_kb=10, mem_intensity=0.1)


def test_larger_working_set_more_backend_bound():
    model = MicroarchModel()
    base = dict(vector_frac=0.5, div_frac=0.0, icache_kb=16, branch_mpki=1.0, mem_intensity=0.3)
    small = model.breakdown(WorkloadProfile(working_set_kb=16, **base))
    big = model.breakdown(WorkloadProfile(working_set_kb=100_000, **base))
    assert big.backend_bound > small.backend_bound
    assert big.ipc < small.ipc


def test_divider_pressure_hurts():
    model = MicroarchModel()
    base = dict(vector_frac=0.7, icache_kb=24, branch_mpki=0.5,
                working_set_kb=64, mem_intensity=0.1)
    no_div = model.breakdown(WorkloadProfile(div_frac=0.0, **base))
    div = model.breakdown(WorkloadProfile(div_frac=0.05, **base))
    assert div.ipc < no_div.ipc
