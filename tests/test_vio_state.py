"""Unit tests for the MSCKF state container."""

import numpy as np
import pytest

from repro.maths.quaternion import quat_identity
from repro.perception.vio.state import CLONE_DIM, IMU_DIM, LANDMARK_DIM, VioState


def _state():
    return VioState(
        timestamp=0.0,
        orientation=quat_identity(),
        position=np.zeros(3),
        velocity=np.zeros(3),
    )


def test_initial_dimension():
    assert _state().dim == IMU_DIM


def test_augment_clone_grows_state():
    state = _state()
    clone = state.augment_clone()
    assert state.dim == IMU_DIM + CLONE_DIM
    assert clone.clone_id == 0
    assert state.covariance.shape == (state.dim, state.dim)


def test_clone_copies_current_pose():
    state = _state()
    state.position = np.array([1.0, 2.0, 3.0])
    clone = state.augment_clone()
    assert np.allclose(clone.position, [1.0, 2.0, 3.0])
    # Mutating the clone must not alias the IMU state.
    clone.position[0] = 99.0
    assert state.position[0] == 1.0


def test_clone_covariance_correlated_with_imu_block():
    state = _state()
    state.covariance[:3, :3] = 0.04 * np.eye(3)
    state.covariance[3:6, 3:6] = 0.09 * np.eye(3)
    state.augment_clone()
    offset = IMU_DIM
    # Clone theta block equals IMU theta block (perfect correlation).
    assert np.allclose(state.covariance[offset : offset + 3, offset : offset + 3], 0.04 * np.eye(3))
    assert np.allclose(state.covariance[offset : offset + 3, 0:3], 0.04 * np.eye(3))
    assert np.allclose(
        state.covariance[offset + 3 : offset + 6, offset + 3 : offset + 6], 0.09 * np.eye(3)
    )


def test_marginalize_clone_shrinks_state():
    state = _state()
    a = state.augment_clone()
    b = state.augment_clone()
    state.marginalize_clone(a.clone_id)
    assert state.dim == IMU_DIM + CLONE_DIM
    assert state.clones[0].clone_id == b.clone_id
    with pytest.raises(KeyError):
        state.clone_index(a.clone_id)


def test_clone_ids_monotonic():
    state = _state()
    first = state.augment_clone()
    state.marginalize_clone(first.clone_id)
    second = state.augment_clone()
    assert second.clone_id == first.clone_id + 1


def test_clone_offset():
    state = _state()
    a = state.augment_clone()
    b = state.augment_clone()
    assert state.clone_offset(a.clone_id) == IMU_DIM
    assert state.clone_offset(b.clone_id) == IMU_DIM + CLONE_DIM


def test_landmark_offsets_in_insertion_order():
    state = _state()
    state.augment_clone()
    base = IMU_DIM + CLONE_DIM
    # Simulate delayed init bookkeeping: enlarge covariance by hand.
    for feature_id in (42, 7):
        dim = state.dim
        grown = np.zeros((dim + LANDMARK_DIM, dim + LANDMARK_DIM))
        grown[:dim, :dim] = state.covariance
        grown[dim:, dim:] = np.eye(3)
        state.covariance = grown
        state.landmarks[feature_id] = np.zeros(3)
    assert state.landmark_offset(42) == base
    assert state.landmark_offset(7) == base + LANDMARK_DIM
    assert state.landmark_ids() == [42, 7]


def test_remove_landmark():
    state = _state()
    for feature_id in (1, 2):
        dim = state.dim
        grown = np.zeros((dim + 3, dim + 3))
        grown[:dim, :dim] = state.covariance
        grown[dim:, dim:] = np.eye(3) * feature_id
        state.covariance = grown
        state.landmarks[feature_id] = np.full(3, float(feature_id))
    state.remove_landmark(1)
    assert state.landmark_ids() == [2]
    offset = state.landmark_offset(2)
    assert np.allclose(state.covariance[offset:, offset:], 2 * np.eye(3))


def test_landmark_offset_missing_raises():
    with pytest.raises(KeyError):
        _state().landmark_offset(3)


def test_inject_updates_all_blocks():
    state = _state()
    clone = state.augment_clone()
    dim = state.dim
    grown = np.zeros((dim + 3, dim + 3))
    grown[:dim, :dim] = state.covariance
    state.covariance = grown
    state.landmarks[5] = np.zeros(3)
    delta = np.zeros(state.dim)
    delta[3:6] = [0.1, 0.2, 0.3]                 # IMU position
    delta[IMU_DIM + 3 : IMU_DIM + 6] = [1.0, 0.0, 0.0]  # clone position
    delta[-3:] = [0.0, 0.5, 0.0]                 # landmark
    state.inject(delta)
    assert np.allclose(state.position, [0.1, 0.2, 0.3])
    assert np.allclose(clone.position, [1.0, 0.0, 0.0])
    assert np.allclose(state.landmarks[5], [0.0, 0.5, 0.0])


def test_inject_wrong_shape_rejected():
    state = _state()
    with pytest.raises(ValueError):
        state.inject(np.zeros(state.dim + 1))


def test_inject_rotation_is_local_perturbation():
    state = _state()
    delta = np.zeros(state.dim)
    delta[0:3] = [0.0, 0.0, 0.1]
    state.inject(delta)
    from repro.maths.quaternion import quat_angle_between, quat_identity

    assert quat_angle_between(state.orientation, quat_identity()) == pytest.approx(0.1, abs=1e-9)


def test_symmetrize():
    state = _state()
    state.covariance[0, 1] = 1.0
    state.symmetrize()
    assert state.covariance[0, 1] == pytest.approx(0.5)
    assert np.allclose(state.covariance, state.covariance.T)
