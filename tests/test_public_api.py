"""The top-level package exposes a coherent, importable public API."""

import pytest

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.does_not_exist  # noqa: B018


def test_version_string():
    major, *_rest = repro.__version__.split(".")
    assert int(major) >= 1


def test_convenience_builders_exposed():
    assert callable(repro.build_runtime)
    assert callable(repro.build_extended_runtime)
    assert callable(repro.build_offloaded_runtime)
    assert callable(repro.evaluate_image_quality)


def test_platforms_mapping():
    assert set(repro.PLATFORMS) == {"desktop", "jetson-hp", "jetson-lp"}
    assert repro.DESKTOP is repro.PLATFORMS["desktop"]
