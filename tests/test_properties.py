"""Property-based tests (hypothesis) on the core substrate invariants:
DES causality, resource capacity, switchboard coherence, scheduler
accounting, and cost-model positivity."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.switchboard import Topic
from repro.sim.engine import Engine
from repro.sim.resources import Resource


# ---------------------------------------------------------------------------
# DES engine causality
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=25))
def test_engine_fires_timeouts_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []

    def waiter(eng, delay):
        yield eng.timeout(delay)
        fired.append(eng.now)

    for delay in delays:
        engine.process(waiter(engine, delay))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert engine.now == max(delays)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0.01, 5.0, allow_nan=False), st.floats(0.01, 5.0, allow_nan=False)),
        min_size=1,
        max_size=12,
    )
)
def test_engine_chained_waits_accumulate(pairs):
    """A process that sleeps a then b wakes exactly at a + b."""
    engine = Engine()
    results = []

    def chain(eng, a, b):
        yield eng.timeout(a)
        yield eng.timeout(b)
        results.append((eng.now, a + b))

    for a, b in pairs:
        engine.process(chain(engine, a, b))
    engine.run()
    for now, expected in results:
        assert abs(now - expected) < 1e-12


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.lists(st.floats(0.05, 2.0, allow_nan=False), min_size=1, max_size=16))
def test_resource_never_exceeds_capacity(capacity, durations):
    engine = Engine()
    resource = Resource(engine, capacity)
    in_use_samples = []

    def worker(eng, duration):
        request = resource.request()
        yield request
        in_use_samples.append(resource.in_use)
        yield eng.timeout(duration)
        resource.release(request)

    for duration in durations:
        engine.process(worker(engine, duration))
    engine.run()
    assert all(sample <= capacity for sample in in_use_samples)
    assert resource.in_use == 0
    assert resource.queue_length == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 3), st.lists(st.floats(0.05, 1.0, allow_nan=False), min_size=1, max_size=10))
def test_resource_work_conservation(capacity, durations):
    """Total busy slot-seconds equals the sum of hold durations."""
    engine = Engine()
    resource = Resource(engine, capacity)

    def worker(eng, duration):
        request = resource.request()
        yield request
        yield eng.timeout(duration)
        resource.release(request)

    for duration in durations:
        engine.process(worker(engine, duration))
    engine.run()
    assert abs(resource.busy_time() - sum(durations)) < 1e-9


# ---------------------------------------------------------------------------
# Switchboard coherence
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=60))
def test_sync_reader_sees_exactly_the_published_sequence(values):
    topic = Topic("t")
    reader = topic.subscribe_queue()
    for i, value in enumerate(values):
        topic.put(float(i), value)
    drained = [event.data for event in reader.drain()]
    assert drained == values
    assert topic.get_latest().data == values[-1]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=40),
    st.floats(0.0, 100.0, allow_nan=False),
)
def test_get_latest_before_is_supremum(times, query):
    times = sorted(times)
    topic = Topic("t", history=len(times))
    for t in times:
        topic.put(t, t)
    event = topic.get_latest_before(query)
    eligible = [t for t in times if t <= query]
    if not eligible:
        assert event is None
    else:
        assert event.data == max(eligible)


# ---------------------------------------------------------------------------
# Timing model positivity / scaling
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(["vio", "camera", "timewarp", "audio_playback", "hologram"]),
    st.floats(0.1, 3.0, allow_nan=False),
    st.integers(0, 10_000),
)
def test_timing_samples_positive_and_finite(component, complexity, seed):
    from repro.hardware.platform import JETSON_HP
    from repro.hardware.timing import TimingModel

    timing = TimingModel(JETSON_HP, seed=seed)
    sample = timing.sample(component, complexity=complexity)
    assert sample.cpu_time >= 0.0 and np.isfinite(sample.cpu_time)
    assert sample.gpu_time >= 0.0 and np.isfinite(sample.gpu_time)
    assert sample.total > 0.0


@settings(max_examples=25, deadline=None)
@given(st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False))
def test_power_breakdown_positive_and_monotone(cpu_util, gpu_util):
    from repro.hardware.platform import JETSON_LP
    from repro.hardware.power import PowerModel

    model = PowerModel(JETSON_LP)
    breakdown = model.breakdown(cpu_util, gpu_util)
    assert breakdown.total > 0
    higher = model.breakdown(min(cpu_util + 0.1, 1.0), gpu_util)
    assert higher.total >= breakdown.total - 1e-12


# ---------------------------------------------------------------------------
# Quaternion/pose round trips through the full stack
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.tuples(*[st.floats(-3, 3, allow_nan=False)] * 3),
    st.tuples(*[st.floats(-1, 1, allow_nan=False)] * 3).filter(
        lambda v: 1e-3 < np.linalg.norm(v) < np.pi - 0.1
    ),
)
def test_pose_relative_compose_roundtrip(position, rotvec):
    from repro.maths.quaternion import quat_exp
    from repro.maths.se3 import Pose

    pose = Pose(np.array(position), quat_exp(np.array(rotvec)))
    reference = Pose(np.array([1.0, -2.0, 0.5]), quat_exp(np.array([0.2, -0.1, 0.4])))
    relative = pose.relative_to(reference)
    recovered = reference.compose(relative)
    assert recovered.translation_error(pose) < 1e-9
    assert recovered.rotation_error(pose) < 1e-9
