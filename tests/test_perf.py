"""Tests for the hot-path acceleration layer (``repro.perf``).

Two kinds of guarantees:

- **Parity**: every accelerated kernel must reproduce its retained
  reference implementation — bit-exact where the rewrite only reorders
  memory access (TSDF culling, batched Gaussian filters), and to
  atol 1e-8 where FFT batching reassociates floating-point sums (WGS).
- **Utilities**: the plan/array caches, the profiling hooks, and the
  process-pool ``parallel_map`` behave as documented.
"""

import numpy as np
import pytest
from scipy.ndimage import gaussian_filter

from repro.maths.se3 import Pose
from repro.metrics.flip import flip
from repro.metrics.ssim import ssim
from repro.perception.reconstruction.tsdf import TsdfVolume
from repro.perf import (
    ArrayCache,
    PlanCache,
    batched_fft2,
    batched_ifft2,
    enable_profiling,
    fft2,
    ifft2,
    parallel_map,
    profile_summary,
    profiled,
    profiling_enabled,
    reset_profile,
    span,
)
from repro.sensors.depth import DepthCamera, DepthScene
from repro.visual.hologram import WeightedGerchbergSaxton


# ---------------------------------------------------------------------------
# FFT helpers
# ---------------------------------------------------------------------------


def test_fft_roundtrip_matches_numpy():
    rng = np.random.default_rng(0)
    field = rng.random((16, 16)) + 1j * rng.random((16, 16))
    assert np.allclose(fft2(field), np.fft.fft2(field), atol=1e-12)
    assert np.allclose(ifft2(fft2(field)), field, atol=1e-12)


def test_batched_fft_matches_per_slice():
    rng = np.random.default_rng(1)
    stack = rng.random((3, 8, 8)) + 1j * rng.random((3, 8, 8))
    batched = batched_fft2(stack)
    for k in range(3):
        assert np.allclose(batched[k], fft2(stack[k]), atol=1e-12)
    assert np.allclose(batched_ifft2(batched), stack, atol=1e-12)


def test_batched_fft_rejects_low_rank():
    with pytest.raises(ValueError):
        batched_fft2(np.zeros(4))
    with pytest.raises(ValueError):
        batched_ifft2(np.zeros(4))


# ---------------------------------------------------------------------------
# Hologram: batched WGS vs. reference
# ---------------------------------------------------------------------------


def _focal_targets(n, planes, seed):
    """Focal-stack-style targets: luminance partitioned across planes."""
    rng = np.random.default_rng(seed)
    depthmap = gaussian_filter(rng.random((n, n)), n / 16)
    edges = np.quantile(depthmap, [(k + 1) / planes for k in range(planes - 1)])
    assignment = np.digitize(depthmap, edges)
    luminance = gaussian_filter(rng.random((n, n)), 2)
    return [np.where(assignment == k, luminance, 0.0) for k in range(planes)]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_wgs_accelerated_matches_reference(seed):
    depths = (0.05, 0.12)
    targets = _focal_targets(64, len(depths), seed)
    reference = WeightedGerchbergSaxton(
        resolution=64, depths_m=depths, accelerated=False
    )
    accelerated = WeightedGerchbergSaxton(
        resolution=64, depths_m=depths, accelerated=True
    )
    ref = reference.solve(targets, iterations=5, seed=seed)
    acc = accelerated.solve(targets, iterations=5, seed=seed)
    assert np.allclose(acc.phase, ref.phase, atol=1e-8)
    for acc_amp, ref_amp in zip(acc.plane_amplitudes, ref.plane_amplitudes):
        assert np.allclose(acc_amp, ref_amp, atol=1e-8)
    assert acc.efficiency == pytest.approx(ref.efficiency, abs=1e-8)
    assert acc.uniformity == pytest.approx(ref.uniformity, abs=1e-8)
    assert set(acc.task_times) == set(ref.task_times)


def test_wgs_accelerated_handles_empty_plane():
    # A plane with no target pixels must not poison the weights.
    depths = (0.05, 0.12)
    targets = _focal_targets(64, 2, seed=5)
    targets[1] = np.zeros_like(targets[1])
    reference = WeightedGerchbergSaxton(
        resolution=64, depths_m=depths, accelerated=False
    )
    accelerated = WeightedGerchbergSaxton(
        resolution=64, depths_m=depths, accelerated=True
    )
    ref = reference.solve(targets, iterations=4, seed=5)
    acc = accelerated.solve(targets, iterations=4, seed=5)
    assert np.allclose(acc.phase, ref.phase, atol=1e-8)
    assert np.isfinite(acc.efficiency)


def test_wgs_transfer_stack_is_cached():
    a = WeightedGerchbergSaxton(resolution=32, depths_m=(0.05, 0.12))
    b = WeightedGerchbergSaxton(resolution=32, depths_m=(0.05, 0.12))
    assert a._transfer_stack is b._transfer_stack


# ---------------------------------------------------------------------------
# TSDF: frustum-culled integration vs. reference
# ---------------------------------------------------------------------------


def _tsdf_poses():
    return [
        Pose(
            np.array([0.5 + 0.1 * i, 0.2 - 0.05 * i, 1.6]),
            np.array([np.cos(0.1 * i), 0.0, 0.0, np.sin(0.1 * i)]),
        )
        for i in range(3)
    ]


def test_tsdf_culled_integration_is_bit_exact():
    camera = DepthCamera(DepthScene.default(seed=3), width=40, height=30, noise_std=0.0)
    poses = _tsdf_poses()
    frames = [camera.render(p, noisy=False) for p in poses]

    ref_volume = TsdfVolume(resolution=48, accelerated=False)
    acc_volume = TsdfVolume(resolution=48, accelerated=True)
    for depth, pose in zip(frames, poses):
        ref_volume.integrate(depth, pose, camera)
        acc_volume.integrate(depth, pose, camera)

    assert np.array_equal(ref_volume.tsdf, acc_volume.tsdf)
    assert np.array_equal(ref_volume.weight, acc_volume.weight)


def test_tsdf_culling_discards_blocks():
    camera = DepthCamera(DepthScene.default(seed=3), width=40, height=30, noise_std=0.0)
    volume = TsdfVolume(resolution=48, accelerated=True)
    pose = _tsdf_poses()[0]
    visible = volume._visible_voxels(pose, camera)
    # The frustum of a 40x30 camera sees a small fraction of the room.
    assert 0 < visible.size < 0.5 * volume.resolution**3


def test_tsdf_block_edge_validation():
    with pytest.raises(ValueError):
        TsdfVolume(resolution=32, block_edge=1)


# ---------------------------------------------------------------------------
# Metrics: batched Gaussian filtering vs. reference
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def image_pair():
    rng = np.random.default_rng(11)
    reference = rng.random((48, 64, 3))
    test = np.clip(reference + rng.normal(0.0, 0.05, reference.shape), 0.0, 1.0)
    return reference, test


def test_ssim_batched_is_bit_exact_grayscale(image_pair):
    reference, test = (img[..., 0] for img in image_pair)
    assert ssim(reference, test, accelerated=True) == ssim(
        reference, test, accelerated=False
    )
    assert np.array_equal(
        ssim(reference, test, full=True, accelerated=True),
        ssim(reference, test, full=True, accelerated=False),
    )


def test_ssim_batched_is_bit_exact_color(image_pair):
    reference, test = image_pair
    assert ssim(reference, test, accelerated=True) == ssim(
        reference, test, accelerated=False
    )
    assert np.array_equal(
        ssim(reference, test, full=True, accelerated=True),
        ssim(reference, test, full=True, accelerated=False),
    )


def test_flip_batched_is_bit_exact(image_pair):
    reference, test = image_pair
    assert flip(reference, test, accelerated=True) == flip(
        reference, test, accelerated=False
    )
    assert np.array_equal(
        flip(reference, test, full=True, accelerated=True),
        flip(reference, test, full=True, accelerated=False),
    )


# ---------------------------------------------------------------------------
# Plan / array caches
# ---------------------------------------------------------------------------


def test_plan_cache_builds_once():
    cache = PlanCache()
    calls = []
    build = lambda: calls.append(1) or np.ones(3)  # noqa: E731
    first = cache.get_or_build("k", build)
    second = cache.get_or_build("k", build)
    assert first is second
    assert len(calls) == 1
    assert cache.hits == 1 and cache.misses == 1
    assert "k" in cache and len(cache) == 1


def test_plan_cache_evicts_oldest():
    cache = PlanCache(max_entries=2)
    cache.get_or_build("a", lambda: 1)
    cache.get_or_build("b", lambda: 2)
    cache.get_or_build("c", lambda: 3)
    assert "a" not in cache
    assert "b" in cache and "c" in cache


def test_array_cache_reuses_and_rebuilds():
    cache = ArrayCache()
    first = cache.scratch("buf", (4, 4))
    second = cache.scratch("buf", (4, 4))
    assert first is second
    resized = cache.scratch("buf", (8, 8))
    assert resized.shape == (8, 8)
    zeroed = cache.scratch("buf", (8, 8), zeroed=True)
    assert zeroed is resized and not zeroed.any()


# ---------------------------------------------------------------------------
# Profiling hooks
# ---------------------------------------------------------------------------


def test_profiling_disabled_by_default_and_cheap():
    reset_profile()
    enable_profiling(False)

    @profiled
    def work():
        return 42

    assert work() == 42
    assert profile_summary() == {}


def test_profiling_records_spans_and_calls():
    reset_profile()
    enable_profiling(True)
    try:

        @profiled("unit.work")
        def work():
            return 7

        work()
        work()
        with span("unit.block"):
            pass
        summary = profile_summary()
        assert summary["unit.work"]["calls"] == 2
        assert summary["unit.block"]["calls"] == 1
        assert summary["unit.work"]["total_s"] >= 0.0
        assert "mean_s" in summary["unit.work"]
    finally:
        enable_profiling(False)
        reset_profile()
    assert not profiling_enabled()


# ---------------------------------------------------------------------------
# parallel_map
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


def test_parallel_map_preserves_order():
    items = list(range(10))
    assert parallel_map(_square, items, processes=2) == [x * x for x in items]


def test_parallel_map_sequential_fallback():
    assert parallel_map(_square, [1, 2, 3], processes=1) == [1, 4, 9]
    assert parallel_map(_square, [], processes=4) == []
