"""Unit tests for contended resources (CPU cores / GPU model)."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.resources import Resource


def hold(engine, resource, duration, log, tag, priority=0):
    request = resource.request(priority=priority)
    yield request
    log.append(("start", tag, engine.now))
    yield engine.timeout(duration)
    resource.release(request)
    log.append(("end", tag, engine.now))


def test_capacity_one_serializes():
    engine = Engine()
    resource = Resource(engine, 1)
    log = []
    engine.process(hold(engine, resource, 2.0, log, "a"))
    engine.process(hold(engine, resource, 1.0, log, "b"))
    engine.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 2.0),
        ("start", "b", 2.0),
        ("end", "b", 3.0),
    ]


def test_capacity_two_overlaps():
    engine = Engine()
    resource = Resource(engine, 2)
    log = []
    engine.process(hold(engine, resource, 2.0, log, "a"))
    engine.process(hold(engine, resource, 2.0, log, "b"))
    engine.run()
    starts = [entry for entry in log if entry[0] == "start"]
    assert [s[2] for s in starts] == [0.0, 0.0]


def test_fifo_ordering_at_same_priority():
    engine = Engine()
    resource = Resource(engine, 1)
    log = []
    for tag in ("a", "b", "c"):
        engine.process(hold(engine, resource, 1.0, log, tag))
    engine.run()
    starts = [entry[1] for entry in log if entry[0] == "start"]
    assert starts == ["a", "b", "c"]


def test_priority_jumps_queue():
    engine = Engine()
    resource = Resource(engine, 1)
    log = []

    def late_priority(eng):
        yield eng.timeout(0.5)  # arrives while 'a' holds and 'b' waits
        yield from hold(eng, resource, 1.0, log, "urgent", priority=-1)

    engine.process(hold(engine, resource, 2.0, log, "a"))
    engine.process(hold(engine, resource, 1.0, log, "b"))
    engine.process(late_priority(engine))
    engine.run()
    starts = [entry[1] for entry in log if entry[0] == "start"]
    assert starts == ["a", "urgent", "b"]


def test_invalid_capacity_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        Resource(engine, 0)


def test_release_unknown_request_rejected():
    engine = Engine()
    resource = Resource(engine, 1)
    other = Resource(engine, 1)
    request = other.request()
    with pytest.raises(SimulationError):
        resource.release(request)


def test_release_waiting_request_is_withdrawal():
    engine = Engine()
    resource = Resource(engine, 1)
    first = resource.request()
    second = resource.request()
    assert resource.queue_length == 1
    resource.release(second)  # withdraw the waiting one
    assert resource.queue_length == 0
    assert resource.in_use == 1
    resource.release(first)
    assert resource.in_use == 0


def test_cancel_waiting_request():
    engine = Engine()
    resource = Resource(engine, 1)
    first = resource.request()
    second = resource.request()
    resource.cancel(second)
    assert resource.queue_length == 0
    resource.cancel(first)
    assert resource.in_use == 0


def test_in_use_and_queue_length():
    engine = Engine()
    resource = Resource(engine, 2)
    resource.request()
    resource.request()
    resource.request()
    assert resource.in_use == 2
    assert resource.queue_length == 1


def test_utilization_full_occupancy():
    engine = Engine()
    resource = Resource(engine, 1)
    log = []
    engine.process(hold(engine, resource, 4.0, log, "a"))
    engine.run()
    assert resource.utilization() == pytest.approx(1.0)


def test_utilization_half_occupancy():
    engine = Engine()
    resource = Resource(engine, 2)
    log = []
    engine.process(hold(engine, resource, 4.0, log, "a"))
    engine.run()
    assert resource.utilization() == pytest.approx(0.5)


def test_utilization_zero_before_time_advances():
    engine = Engine()
    resource = Resource(engine, 1)
    assert resource.utilization() == 0.0


def test_busy_time_accumulates_slot_seconds():
    engine = Engine()
    resource = Resource(engine, 2)
    log = []
    engine.process(hold(engine, resource, 2.0, log, "a"))
    engine.process(hold(engine, resource, 3.0, log, "b"))
    engine.run()
    assert resource.busy_time() == pytest.approx(5.0)


def test_release_wakes_next_waiter_immediately():
    engine = Engine()
    resource = Resource(engine, 1)
    granted = []
    first = resource.request()
    second = resource.request()
    second.callbacks.append(lambda _e: granted.append(engine.now))
    resource.release(first)
    engine.run()
    assert granted == [0.0]
