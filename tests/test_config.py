"""Unit tests for the Table III system configuration."""

import pytest

from repro.core.config import (
    DEFAULT_CONFIG,
    RESOLUTIONS,
    SystemConfig,
    TABLE_III_PARAMETERS,
)


def test_defaults_match_table_iii_tuned_values():
    config = SystemConfig()
    assert config.camera_rate_hz == 15.0
    assert config.camera_resolution == "VGA"
    assert config.camera_exposure_ms == 1.0
    assert config.imu_rate_hz == 500.0
    assert config.display_rate_hz == 120.0
    assert config.display_resolution == "2K"
    assert config.field_of_view_deg == 90.0
    assert config.audio_rate_hz == 48.0
    assert config.audio_block_size == 1024


@pytest.mark.parametrize(
    "field,value",
    [
        ("camera_rate_hz", 10.0),
        ("camera_rate_hz", 150.0),
        ("camera_resolution", "8K"),
        ("camera_exposure_ms", 0.1),
        ("camera_exposure_ms", 30.0),
        ("imu_rate_hz", 0.0),
        ("imu_rate_hz", 1000.0),
        ("display_rate_hz", 20.0),
        ("display_rate_hz", 200.0),
        ("display_resolution", "4K"),
        ("field_of_view_deg", 0.0),
        ("field_of_view_deg", 200.0),
        ("audio_rate_hz", 44.1),
        ("audio_rate_hz", 100.0),
        ("audio_block_size", 128),
        ("audio_block_size", 4096),
        ("duration_s", -1.0),
        ("fidelity", "half"),
        ("vio_quality", "ultra"),
    ],
)
def test_out_of_range_values_rejected(field, value):
    with pytest.raises(ValueError):
        SystemConfig(**{field: value})


def test_period_properties():
    config = SystemConfig()
    assert config.camera_period == pytest.approx(1 / 15)
    assert config.imu_period == pytest.approx(1 / 500)
    assert config.vsync_period == pytest.approx(1 / 120)
    assert config.audio_period == pytest.approx(1 / 48)


def test_display_pixels():
    assert SystemConfig().display_pixels == 2560 * 1440
    assert SystemConfig(display_resolution="1080p").display_pixels == 1920 * 1080


def test_with_overrides_returns_new_config():
    config = SystemConfig()
    changed = config.with_overrides(display_rate_hz=90.0)
    assert changed.display_rate_hz == 90.0
    assert config.display_rate_hz == 120.0


def test_with_overrides_validates():
    with pytest.raises(ValueError):
        SystemConfig().with_overrides(display_rate_hz=999.0)


def test_table_iii_has_all_components():
    components = {p.component for p in TABLE_III_PARAMETERS}
    assert any("Camera" in c for c in components)
    assert any("IMU" in c for c in components)
    assert any("Display" in c for c in components)
    assert any("Audio" in c for c in components)


def test_table_iii_deadlines():
    deadlines = {p.name: p.deadline_ms for p in TABLE_III_PARAMETERS if p.deadline_ms}
    assert deadlines["Frame rate"] in (66.7, 2.0, 8.33, 20.8)


def test_resolutions_cover_table_values():
    assert set(RESOLUTIONS) >= {"VGA", "2K"}


def test_default_config_is_valid_singleton():
    assert DEFAULT_CONFIG.fidelity == "full"
