"""Tests for the OpenXR swapchain semantics."""

import numpy as np
import pytest

from repro.openxr.api import XrError
from repro.openxr.swapchain import Swapchain


def test_acquire_wait_release_cycle():
    chain = Swapchain(width=8, height=6)
    index = chain.acquire_image()
    image = chain.wait_image(index)
    image.buffer[:] = 0.5
    chain.release_image(index)
    sampled = chain.latest_released()
    assert sampled is not None
    assert np.all(sampled.buffer == 0.5)


def test_images_cycle_in_order():
    chain = Swapchain(width=4, height=4, capacity=3)
    order = [chain.acquire_image() for _ in range(3)]
    assert order == [0, 1, 2]


def test_cannot_over_acquire():
    chain = Swapchain(width=4, height=4, capacity=2)
    chain.acquire_image()
    chain.acquire_image()
    with pytest.raises(XrError):
        chain.acquire_image()


def test_release_requires_wait():
    chain = Swapchain(width=4, height=4)
    index = chain.acquire_image()
    with pytest.raises(XrError):
        chain.release_image(index)  # write hazard
    chain.wait_image(index)
    chain.release_image(index)


def test_release_requires_acquire():
    chain = Swapchain(width=4, height=4)
    with pytest.raises(XrError):
        chain.wait_image(0)
    with pytest.raises(XrError):
        chain.release_image(0)
    with pytest.raises(XrError):
        chain.wait_image(99)


def test_compositor_samples_latest_and_recycles():
    chain = Swapchain(width=4, height=4, capacity=3)
    for value in (0.1, 0.2):
        index = chain.acquire_image()
        chain.wait_image(index).buffer[:] = value
        chain.release_image(index)
    # Compositor sees the newest; the older one returns to the free ring.
    assert np.all(chain.latest_released().buffer == 0.2)
    chain.recycle()
    assert chain.latest_released() is None
    # All images eventually reusable.
    for _ in range(3):
        index = chain.acquire_image()
        chain.wait_image(index)
        chain.release_image(index)


def test_validation():
    with pytest.raises(XrError):
        Swapchain(width=0, height=4)
    with pytest.raises(XrError):
        Swapchain(width=4, height=4, capacity=1)


def test_camera_resolution_knob_scales_cost():
    from repro.core.config import SystemConfig
    from repro.core.runtime import build_runtime
    from repro.hardware.platform import DESKTOP

    vga = build_runtime(
        DESKTOP, "ar_demo", SystemConfig(duration_s=2.0, fidelity="model")
    ).run()
    hd = build_runtime(
        DESKTOP, "ar_demo",
        SystemConfig(duration_s=2.0, fidelity="model", camera_resolution="2K"),
    ).run()
    assert (
        hd.logger.mean_execution_time("camera")
        > 5 * vga.logger.mean_execution_time("camera")
    )
