"""Unit + property tests for QoE metrics: SSIM, FLIP, MTP, trajectory."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maths.se3 import Pose
from repro.metrics.flip import flip, one_minus_flip
from repro.metrics.mtp import MtpSample, summarize_mtp
from repro.metrics.ssim import ssim
from repro.metrics.trajectory import (
    absolute_trajectory_error,
    align_origins,
    relative_pose_error,
)


def _image(seed=0, shape=(32, 48, 3)):
    return np.random.default_rng(seed).random(shape)


# ---------------------------------------------------------------------------
# SSIM
# ---------------------------------------------------------------------------


def test_ssim_identity_is_one():
    image = _image()
    assert ssim(image, image) == pytest.approx(1.0)


def test_ssim_range_and_sensitivity():
    image = _image(1)
    slightly = np.clip(image + 0.02, 0, 1)
    very = np.clip(image + 0.4, 0, 1)
    s_slight = ssim(image, slightly)
    s_very = ssim(image, very)
    assert -1.0 <= s_very < s_slight < 1.0


def test_ssim_grayscale_and_color_agree_on_gray_content():
    gray = _image(2, shape=(32, 48))
    color = np.repeat(gray[..., None], 3, axis=-1)
    assert ssim(color, color * 0.9) == pytest.approx(
        ssim(gray, gray * 0.9), abs=1e-9
    )


def test_ssim_shape_mismatch():
    with pytest.raises(ValueError):
        ssim(_image(), _image(0, shape=(16, 16, 3)))


def test_ssim_invalid_data_range():
    with pytest.raises(ValueError):
        ssim(_image(), _image(), data_range=0.0)


def test_ssim_full_map():
    image = _image(3)
    full = ssim(image, image, full=True)
    assert full.shape == image.shape
    assert np.allclose(full, 1.0)


@settings(max_examples=20)
@given(st.integers(0, 1000))
def test_ssim_symmetric(seed):
    a = _image(seed)
    b = _image(seed + 1)
    assert ssim(a, b) == pytest.approx(ssim(b, a), abs=1e-9)


# ---------------------------------------------------------------------------
# FLIP
# ---------------------------------------------------------------------------


def test_flip_identity_is_zero():
    image = _image(4)
    assert flip(image, image) == pytest.approx(0.0, abs=1e-9)


def test_flip_range_and_monotonicity():
    image = _image(5)
    slightly = np.clip(image + 0.05, 0, 1)
    very = 1.0 - image
    f_slight = flip(image, slightly)
    f_very = flip(image, very)
    assert 0.0 < f_slight < f_very <= 1.0


def test_flip_black_vs_white_is_large():
    black = np.zeros((24, 24, 3))
    white = np.ones((24, 24, 3))
    assert flip(black, white) > 0.7


def test_one_minus_flip_convention():
    a = _image(6)
    b = np.clip(a + 0.1, 0, 1)
    assert one_minus_flip(a, b) == pytest.approx(1.0 - flip(a, b))


def test_flip_validation():
    with pytest.raises(ValueError):
        flip(_image(), _image(0, shape=(16, 16, 3)))
    with pytest.raises(ValueError):
        flip(_image()[..., 0], _image()[..., 0])
    with pytest.raises(ValueError):
        flip(_image(), _image(), pixels_per_degree=0.0)


def test_flip_full_map_shape():
    image = _image(7)
    error_map = flip(image, np.clip(image + 0.1, 0, 1), full=True)
    assert error_map.shape == image.shape[:2]
    assert error_map.min() >= 0.0 and error_map.max() <= 1.0


# ---------------------------------------------------------------------------
# MTP
# ---------------------------------------------------------------------------


def test_mtp_sample_total():
    sample = MtpSample(frame_time=1.0, imu_age=0.001, reprojection_time=0.002, swap_wait=0.0005)
    assert sample.total == pytest.approx(0.0035)
    assert sample.total_ms == pytest.approx(3.5)


def test_mtp_sample_validation():
    with pytest.raises(ValueError):
        MtpSample(frame_time=0.0, imu_age=-0.001, reprojection_time=0.0, swap_wait=0.0)


def test_mtp_summary_statistics():
    samples = [
        MtpSample(frame_time=i, imu_age=0.001 * (i + 1), reprojection_time=0.001, swap_wait=0.0)
        for i in range(5)
    ]  # totals: 2, 3, 4, 5, 6 ms
    summary = summarize_mtp(samples)
    assert summary.mean_ms == pytest.approx(4.0)
    assert summary.count == 5
    assert summary.max_ms == pytest.approx(6.0)
    assert summary.vr_target_met_fraction == 1.0
    assert summary.ar_target_met_fraction == pytest.approx(4 / 5)


def test_mtp_summary_empty():
    summary = summarize_mtp([])
    assert math.isnan(summary.mean_ms)
    assert summary.count == 0


# ---------------------------------------------------------------------------
# Trajectory errors
# ---------------------------------------------------------------------------


def _poses(offsets):
    return [Pose(np.array([x, 0.0, 0.0]), timestamp=float(i)) for i, x in enumerate(offsets)]


def test_ate_exact_values():
    truth = _poses([0.0, 1.0, 2.0])
    estimate = _poses([0.1, 1.1, 2.1])
    error = absolute_trajectory_error(estimate, truth)
    assert error.rmse_m == pytest.approx(0.1)
    assert error.mean_m == pytest.approx(0.1)
    assert error.count == 3


def test_ate_validation():
    with pytest.raises(ValueError):
        absolute_trajectory_error(_poses([0.0]), _poses([0.0, 1.0]))
    with pytest.raises(ValueError):
        absolute_trajectory_error([], [])


def test_rpe_ignores_constant_offset():
    truth = _poses([0.0, 1.0, 2.0, 3.0, 4.0])
    estimate = _poses([10.0, 11.0, 12.0, 13.0, 14.0])  # constant 10 m offset
    error = relative_pose_error(estimate, truth, window=2)
    assert error.rmse_m == pytest.approx(0.0, abs=1e-12)


def test_rpe_detects_drift():
    truth = _poses([0.0, 1.0, 2.0, 3.0, 4.0])
    estimate = _poses([0.0, 1.1, 2.2, 3.3, 4.4])  # 10% scale drift
    error = relative_pose_error(estimate, truth, window=2)
    assert error.mean_m == pytest.approx(0.2, abs=1e-9)


def test_rpe_validation():
    with pytest.raises(ValueError):
        relative_pose_error(_poses([0.0, 1.0]), _poses([0.0, 1.0]), window=0)
    with pytest.raises(ValueError):
        relative_pose_error(_poses([0.0, 1.0]), _poses([0.0, 1.0]), window=5)


def test_align_origins():
    estimate = _poses([5.0, 6.0, 7.0])
    truth = _poses([0.0, 1.0, 2.0])
    aligned_est, aligned_truth = align_origins(estimate, truth)
    error = absolute_trajectory_error(aligned_est, aligned_truth)
    assert error.rmse_m == pytest.approx(0.0, abs=1e-12)
    with pytest.raises(ValueError):
        align_origins([], [])
