"""Unit tests for phonebook, plugin base machinery, and telemetry records."""

import math

import pytest

from repro.core.phonebook import Phonebook, ServiceNotFound
from repro.core.plugin import (
    InvocationContext,
    IterationResult,
    OnTopic,
    OnVsync,
    Periodic,
    Plugin,
)
from repro.core.records import DropRecord, InvocationRecord, RecordLogger, mean_std


# ---------------------------------------------------------------------------
# Phonebook
# ---------------------------------------------------------------------------


def test_phonebook_register_and_lookup():
    pb = Phonebook()
    pb.register("clock", object())
    assert pb.lookup("clock") is not None
    assert "clock" in pb


def test_phonebook_duplicate_registration_rejected():
    pb = Phonebook()
    pb.register("x", 1)
    with pytest.raises(ValueError):
        pb.register("x", 2)


def test_phonebook_missing_lookup_raises_with_inventory():
    pb = Phonebook()
    pb.register("a", 1)
    with pytest.raises(ServiceNotFound, match="'a'"):
        pb.lookup("missing")


def test_phonebook_names_sorted():
    pb = Phonebook()
    pb.register("b", 1)
    pb.register("a", 2)
    assert pb.names() == ["a", "b"]


# ---------------------------------------------------------------------------
# Plugin triggers and results
# ---------------------------------------------------------------------------


def test_periodic_requires_positive_period():
    with pytest.raises(ValueError):
        Periodic(0.0)


def test_onvsync_lead_must_fit_period():
    with pytest.raises(ValueError):
        OnVsync(period=1 / 120, lead=1.0)
    with pytest.raises(ValueError):
        OnVsync(period=1 / 120, lead=0.0)


def test_plugin_deadline_from_trigger():
    class P(Plugin):
        def iteration(self, ctx):
            return IterationResult()

    assert P(Periodic(0.5)).deadline == 0.5
    assert P(OnTopic("x")).deadline is None
    assert P(OnVsync(period=0.1, lead=0.05)).deadline == 0.1


def test_iteration_result_publish_queues_outputs():
    result = IterationResult()
    result.publish("topic_a", 1)
    result.publish("topic_b", 2, data_time=0.5)
    assert [o.topic for o in result.outputs] == ["topic_a", "topic_b"]
    assert result.outputs[1].data_time == 0.5


def test_plugin_iteration_is_abstract():
    plugin = Plugin(Periodic(1.0))
    with pytest.raises(NotImplementedError):
        plugin.iteration(InvocationContext(now=0.0, index=0))


def test_plugin_describe():
    class Named(Plugin):
        name = "widget"
        pipeline = "visual"
        component = "timewarp"

        def iteration(self, ctx):
            return IterationResult()

    assert Named(Periodic(1.0)).describe() == ("widget", "visual", "timewarp")


# ---------------------------------------------------------------------------
# Records / telemetry
# ---------------------------------------------------------------------------


def _record(plugin="p", index=0, start=0.0, end=0.01, cpu=0.01, missed=False):
    return InvocationRecord(
        plugin=plugin,
        component=plugin,
        pipeline="perception",
        index=index,
        scheduled_at=start,
        start=start,
        end=end,
        cpu_time=cpu,
        gpu_time=0.0,
        deadline=0.1,
        missed_deadline=missed,
    )


def test_frame_rate():
    logger = RecordLogger()
    for i in range(30):
        logger.log(_record(index=i, start=i * 0.1, end=i * 0.1 + 0.01))
    assert logger.frame_rate("p", duration=3.0) == pytest.approx(10.0)


def test_frame_rate_requires_positive_duration():
    with pytest.raises(ValueError):
        RecordLogger().frame_rate("p", duration=0.0)


def test_mean_and_std_execution_time():
    logger = RecordLogger()
    logger.log(_record(index=0, start=0.0, end=0.02))
    logger.log(_record(index=1, start=1.0, end=1.04))
    assert logger.mean_execution_time("p") == pytest.approx(0.03)
    assert logger.std_execution_time("p") == pytest.approx(0.01)


def test_stats_nan_for_unknown_plugin():
    logger = RecordLogger()
    assert math.isnan(logger.mean_execution_time("ghost"))
    assert math.isnan(logger.std_execution_time("ghost"))


def test_cpu_share_sums_to_one():
    logger = RecordLogger()
    logger.log(_record(plugin="a", cpu=0.03))
    logger.log(_record(plugin="b", cpu=0.01))
    share = logger.cpu_share()
    assert sum(share.values()) == pytest.approx(1.0)
    assert share["a"] == pytest.approx(0.75)


def test_cpu_share_empty_logger():
    assert RecordLogger().cpu_share() == {}


def test_miss_rate():
    logger = RecordLogger()
    logger.log(_record(index=0, missed=True))
    logger.log(_record(index=1, missed=False))
    assert logger.miss_rate("p") == pytest.approx(0.5)
    assert logger.miss_rate("ghost") == 0.0


def test_drop_accounting():
    logger = RecordLogger()
    logger.log_drop("p", 1.0)
    logger.log_drop("p", 2.0)
    logger.log_drop("q", 1.0)
    assert logger.drop_count("p") == 2
    assert logger.drops[0] == DropRecord("p", 1.0)


def test_plugins_listing():
    logger = RecordLogger()
    logger.log(_record(plugin="b"))
    logger.log(_record(plugin="a"))
    assert logger.plugins() == ["a", "b"]


def test_wall_time_property():
    record = _record(start=1.0, end=1.25)
    assert record.wall_time == pytest.approx(0.25)


def test_mean_std_helper():
    mean, std = mean_std([1.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert std == pytest.approx(1.0)
    nan_mean, nan_std = mean_std([])
    assert math.isnan(nan_mean) and math.isnan(nan_std)
