"""Unit tests for individual plugins against a hand-driven switchboard."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.phonebook import Phonebook
from repro.core.plugin import InvocationContext
from repro.core.switchboard import StampedEvent, Switchboard
from repro.maths.se3 import Pose
from repro.plugins.audio import AudioEncodingPlugin, AudioPlaybackPlugin
from repro.plugins.perception import CameraPlugin, ImuPlugin, IntegratorPlugin, VioPlugin
from repro.plugins.visual import ApplicationPlugin, SubmittedFrame, TimewarpPlugin
from repro.sensors.camera import LandmarkField, StereoCamera
from repro.sensors.imu import ImuModel
from repro.sensors.trajectory import lab_walk_trajectory
from repro.visual.scenes import scene_by_name


@pytest.fixture
def wiring():
    config = SystemConfig(duration_s=5.0, fidelity="full", seed=0)
    trajectory = lab_walk_trajectory(duration=7.0, seed=0)
    switchboard = Switchboard()
    phonebook = Phonebook()
    return config, trajectory, switchboard, phonebook


def _ctx(now, index=0, event=None):
    return InvocationContext(now=now, index=index, trigger_event=event)


def test_camera_plugin_publishes_frames(wiring):
    config, trajectory, switchboard, phonebook = wiring
    camera = StereoCamera(landmarks=LandmarkField(seed=1), seed=2)
    plugin = CameraPlugin(config, camera, trajectory)
    plugin.setup(phonebook, switchboard)
    result = plugin.iteration(_ctx(0.5))
    assert result.outputs[0].topic == "camera"
    assert result.outputs[0].data.feature_count > 0
    assert result.outputs[0].data_time == 0.5


def test_imu_plugin_publishes_samples(wiring):
    config, trajectory, switchboard, phonebook = wiring
    plugin = ImuPlugin(config, ImuModel(trajectory, seed=1))
    plugin.setup(phonebook, switchboard)
    result = plugin.iteration(_ctx(0.25))
    sample = result.outputs[0].data
    assert sample.timestamp == 0.25
    assert np.linalg.norm(sample.accel) > 5.0  # gravity present


def test_vio_plugin_processes_camera_event(wiring):
    config, trajectory, switchboard, phonebook = wiring
    camera = StereoCamera(landmarks=LandmarkField(seed=1), seed=2)
    vio = VioPlugin(config, camera, trajectory)
    vio.setup(phonebook, switchboard)
    imu_plugin = ImuPlugin(config, ImuModel(trajectory, seed=1))
    imu_plugin.setup(phonebook, switchboard)
    # Feed IMU samples to the switchboard so VIO can drain them.
    for i in range(1, 34):
        t = i * 0.002
        result = imu_plugin.iteration(_ctx(t))
        switchboard.topic("imu").put(t, result.outputs[0].data, data_time=t)
    truth = trajectory.sample(1 / 15)
    frame = camera.observe(Pose(truth.position, truth.orientation, timestamp=1 / 15), 1 / 15)
    event = StampedEvent(publish_time=1 / 15 + 0.001, data=frame, data_time=1 / 15)
    result = vio.iteration(_ctx(1 / 15 + 0.001, event=event))
    estimate = result.outputs[0].data
    assert estimate.timestamp == pytest.approx(1 / 15)
    assert result.outputs[0].data_time == pytest.approx(1 / 15)
    assert 0.4 <= result.complexity <= 2.0


def test_vio_plugin_skips_empty_event(wiring):
    config, trajectory, switchboard, phonebook = wiring
    camera = StereoCamera(landmarks=LandmarkField(seed=1), seed=2)
    vio = VioPlugin(config, camera, trajectory)
    vio.setup(phonebook, switchboard)
    event = StampedEvent(publish_time=0.0, data=None)
    assert vio.iteration(_ctx(0.0, event=event)).skipped


def test_integrator_plugin_anchors_and_propagates(wiring):
    config, trajectory, switchboard, phonebook = wiring
    integrator = IntegratorPlugin(config, trajectory)
    integrator.setup(phonebook, switchboard)
    imu = ImuModel(trajectory, seed=3)

    # No VIO estimate yet: must skip.
    sample = imu.sample_at(0.002)
    event = StampedEvent(publish_time=0.002, data=sample, data_time=0.002)
    assert integrator.iteration(_ctx(0.002, event=event)).skipped

    # Publish a VIO anchor, then integrate.
    from repro.perception.vio.msckf import VioEstimate

    truth = trajectory.sample(0.002)
    anchor = VioEstimate(
        timestamp=0.002,
        pose=Pose(truth.position, truth.orientation, timestamp=0.002),
        velocity=truth.velocity,
        gyro_bias=np.zeros(3),
        accel_bias=np.zeros(3),
        position_sigma=0.01,
        tracked_features=20,
        slam_landmarks=4,
    )
    switchboard.topic("slow_pose").put(0.004, anchor, data_time=0.002)
    poses = []
    for i in range(2, 102):
        t = i * 0.002
        sample = imu.sample_at(t)
        event = StampedEvent(publish_time=t, data=sample, data_time=t)
        result = integrator.iteration(_ctx(t, index=i, event=event))
        if not result.skipped:
            poses.append(result.outputs[0].data)
    assert len(poses) > 90
    final_truth = trajectory.sample(poses[-1].timestamp)
    assert np.linalg.norm(poses[-1].position - final_truth.position) < 0.05


def test_application_plugin_submits_frames(wiring):
    config, trajectory, switchboard, phonebook = wiring
    app = ApplicationPlugin(config, scene_by_name("platformer"))
    app.setup(phonebook, switchboard)
    # No pose yet: skip.
    assert app.iteration(_ctx(0.0)).skipped
    pose = Pose(np.array([0.0, 0.0, 1.7]), timestamp=0.01)
    switchboard.topic("fast_pose").put(0.01, pose, data_time=0.01)
    result = app.iteration(_ctx(0.02))
    frame = result.outputs[0].data
    assert isinstance(frame, SubmittedFrame)
    assert frame.pose is pose
    assert 0.5 <= result.complexity <= 2.0


def test_timewarp_plugin_records_mtp(wiring):
    from repro.core.scheduler import CompletionInfo

    config, trajectory, switchboard, phonebook = wiring
    timewarp = TimewarpPlugin(config, lead=0.004)
    timewarp.setup(phonebook, switchboard)
    # Needs both a pose and a frame.
    assert timewarp.iteration(_ctx(0.0)).skipped
    pose = Pose(np.array([0.0, 0.0, 1.7]), timestamp=0.009)
    switchboard.topic("fast_pose").put(0.010, pose, data_time=0.009)
    switchboard.topic("frame").put(
        0.011, SubmittedFrame(pose=pose, render_start=0.005, complexity=1.0), data_time=0.009
    )
    result = timewarp.iteration(_ctx(0.012))
    assert not result.skipped
    timewarp.on_complete(
        CompletionInfo(
            scheduled_at=0.012, start=0.012, end=0.014,
            cpu_time=0.001, gpu_time=0.001, swap_time=1 / 60,
        )
    )
    assert len(timewarp.mtp_samples) == 1
    sample = timewarp.mtp_samples[0]
    assert sample.imu_age == pytest.approx(0.012 - 0.009)
    assert sample.reprojection_time == pytest.approx(0.002)
    assert sample.swap_wait == pytest.approx(1 / 60 - 0.014)
    assert len(timewarp.display_events) == 1


def test_audio_plugins_roundtrip(wiring):
    config, trajectory, switchboard, phonebook = wiring
    encoder = AudioEncodingPlugin(config)
    playback = AudioPlaybackPlugin(config)
    encoder.setup(phonebook, switchboard)
    playback.setup(phonebook, switchboard)
    # Playback skips with no soundfield.
    assert playback.iteration(_ctx(0.0)).skipped
    enc_result = encoder.iteration(_ctx(0.0))
    soundfield = enc_result.outputs[0].data
    assert soundfield.shape == (16, config.audio_block_size)
    switchboard.topic("soundfield").put(0.001, soundfield, data_time=0.0)
    pb_result = playback.iteration(_ctx(0.002))
    block = pb_result.outputs[0].data
    assert block.rms > 0
    assert playback.blocks_rendered == 1


def test_model_fidelity_publishes_placeholders(wiring):
    _config, trajectory, switchboard, phonebook = wiring
    config = SystemConfig(duration_s=5.0, fidelity="model", seed=0)
    camera = CameraPlugin(config, StereoCamera(landmarks=LandmarkField(seed=1)), trajectory)
    camera.setup(phonebook, switchboard)
    result = camera.iteration(_ctx(0.5))
    assert result.outputs[0].data is None  # cost-only mode
