"""Unit tests for TSDF scene reconstruction: volume, raycast, ICP, pipeline."""

import numpy as np
import pytest

from repro.maths.se3 import Pose
from repro.perception.reconstruction.icp import icp_point_to_plane, vertex_map_from_depth
from repro.perception.reconstruction.pipeline import TASK_NAMES, ReconstructionPipeline
from repro.perception.reconstruction.raycast import raycast
from repro.perception.reconstruction.tsdf import TsdfVolume
from repro.sensors.depth import DepthCamera, DepthScene


@pytest.fixture(scope="module")
def camera():
    return DepthCamera(DepthScene.default(seed=3), width=48, height=36, noise_std=0.0)


@pytest.fixture(scope="module")
def fused_volume(camera):
    volume = TsdfVolume(resolution=64)
    pose = Pose(np.array([0.5, 0.2, 1.6]))
    for dz in (-0.1, 0.0, 0.1):
        p = Pose(pose.position + np.array([0.0, 0.0, dz]))
        volume.integrate(camera.render(p, noisy=False), p, camera)
    return volume, pose


def test_volume_initially_unobserved():
    volume = TsdfVolume(resolution=16)
    assert volume.occupied_fraction == 0.0
    values, valid = volume.sample(np.array([[0.0, 0.0, 1.0]]))
    assert not valid[0]
    assert values[0] == 1.0


def test_integrate_updates_voxels(camera):
    volume = TsdfVolume(resolution=32)
    pose = Pose(np.array([0.0, 0.0, 1.5]))
    updated = volume.integrate(camera.render(pose, noisy=False), pose, camera)
    assert updated > 100
    assert volume.occupied_fraction > 0.0


def test_tsdf_sign_convention(fused_volume, camera):
    """Voxels in front of a wall have positive TSDF; behind, negative."""
    volume, pose = fused_volume
    h = camera.scene.room_half_extent
    # The +x wall is at x = h; sample just inside and just outside.
    in_front = np.array([[h - 0.08, pose.position[1], 1.6]])
    behind = np.array([[h + 0.08, pose.position[1], 1.6]])
    v_front, ok_front = volume.sample(in_front)
    v_behind, ok_behind = volume.sample(behind)
    if ok_front[0]:
        assert v_front[0] > 0
    if ok_behind[0]:
        assert v_behind[0] < 0.5  # truncated-negative or unobserved


def test_tsdf_values_bounded(fused_volume):
    volume, _ = fused_volume
    assert volume.tsdf.max() <= 1.0
    assert volume.tsdf.min() >= -1.0


def test_sample_trilinear_interpolates(fused_volume, camera):
    volume, pose = fused_volume
    # Near the +x wall the TSDF ramps through the truncation band, so
    # sub-voxel motion must change the interpolated value.
    h = camera.scene.room_half_extent
    point = np.array([h - 0.06, pose.position[1], 1.6])
    a, ok = volume.sample(point[None])
    assert ok[0]
    offset = np.array([volume.voxel_size * 0.5, 0.0, 0.0])
    b, _ = volume.sample(point[None] + offset)
    assert a[0] != b[0]  # interpolation responds to sub-voxel motion


def test_gradient_points_along_increasing_distance(fused_volume, camera):
    volume, pose = fused_volume
    h = camera.scene.room_half_extent
    point = np.array([[h - 0.15, pose.position[1], 1.6]])
    grad = volume.gradient(point)
    # Approaching the +x wall decreases the signed distance: gradient x < 0.
    assert grad[0, 0] < 0


def test_volume_validation():
    with pytest.raises(ValueError):
        TsdfVolume(resolution=4)
    with pytest.raises(ValueError):
        TsdfVolume(truncation_m=0.0)


def test_raycast_matches_analytic_depth(fused_volume, camera):
    volume, pose = fused_volume
    result = raycast(volume, pose, camera)
    analytic = camera.render(pose, noisy=False)
    both = result.valid & (analytic > 0)
    assert both.mean() > 0.5
    error = np.abs(result.depth[both] - analytic[both])
    assert np.median(error) < 0.06


def test_raycast_normals_unit_and_camera_facing(fused_volume, camera):
    volume, pose = fused_volume
    result = raycast(volume, pose, camera)
    normals = result.normals[result.valid]
    assert np.allclose(np.linalg.norm(normals, axis=1), 1.0, atol=1e-6)


def test_raycast_step_validation(fused_volume, camera):
    volume, pose = fused_volume
    with pytest.raises(ValueError):
        raycast(volume, pose, camera, step_fraction=0.0)


def test_vertex_map_from_depth(camera):
    depth = camera.render(Pose(np.array([0.0, 0.0, 1.5])), noisy=False)
    vertex = vertex_map_from_depth(depth, camera)
    assert vertex.shape == (36, 48, 3)
    assert np.allclose(vertex[..., 2], depth)


def test_icp_improves_coarse_guess(fused_volume, camera):
    volume, pose = fused_volume
    model = raycast(volume, pose, camera)
    depth = camera.render(pose, noisy=False)
    guess = Pose(pose.position + np.array([0.12, -0.08, 0.05]), pose.orientation)
    result = icp_point_to_plane(depth, camera, guess, model, pose)
    assert result.pose.translation_error(pose) < guess.translation_error(pose)
    assert result.inlier_fraction > 0.2


def test_icp_stays_near_exact_guess(fused_volume, camera):
    volume, pose = fused_volume
    model = raycast(volume, pose, camera)
    depth = camera.render(pose, noisy=False)
    result = icp_point_to_plane(depth, camera, pose, model, pose)
    assert result.pose.translation_error(pose) < 0.06


def test_pipeline_stages_and_tracking(camera):
    from repro.sensors.trajectory import lab_walk_trajectory

    pipeline = ReconstructionPipeline(camera)
    trajectory = lab_walk_trajectory(duration=5.0, seed=3)
    rng = np.random.default_rng(0)
    errors = []
    for i in range(8):
        t = i * 0.4
        sample = trajectory.sample(t)
        truth = Pose(sample.position, sample.orientation, timestamp=t)
        depth = camera.render(truth)
        guess = Pose(truth.position + rng.normal(0, 0.03, 3), truth.orientation, timestamp=t)
        result = pipeline.process_frame(depth, guess)
        errors.append(result.pose.translation_error(truth))
    assert set(pipeline.task_breakdown()) == set(TASK_NAMES)
    assert all(v > 0 for v in pipeline.task_breakdown().values())
    assert np.mean(errors[2:]) < 0.15
    assert pipeline.volume.occupied_fraction > 0.0


def test_pipeline_first_frame_bootstraps(camera):
    pipeline = ReconstructionPipeline(camera)
    pose = Pose(np.array([0.0, 0.0, 1.5]))
    result = pipeline.process_frame(camera.render(pose), pose)
    assert result.icp is None  # no model yet
    assert result.voxels_updated > 0


def test_camera_processing_rejects_invalid_depth(camera):
    pipeline = ReconstructionPipeline(camera)
    depth = np.full((36, 48), 100.0)  # beyond max valid depth
    cleaned = pipeline._camera_processing(depth)
    assert np.all(cleaned == 0.0)
