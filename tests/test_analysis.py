"""Tests for the experiment drivers, standalone characterizations, the
report renderers, and the component registry."""

import pytest

from repro.analysis import report
from repro.analysis.experiments import (
    FIG3_TARGETS,
    run_integrated,
    run_matrix,
    vio_accuracy_ablation,
)
from repro.analysis.standalone import (
    characterize_audio,
    characterize_eye_tracking,
    characterize_hologram,
    characterize_reconstruction,
    characterize_reprojection,
    characterize_vio,
)
from repro.core.registry import COMPONENT_REGISTRY, default_components, registry_by_pipeline


@pytest.fixture(scope="module")
def quick_runs():
    return run_matrix(duration_s=2.0, fidelity="model", platforms=["desktop", "jetson-lp"],
                      apps=["sponza", "platformer"])


# ---------------------------------------------------------------------------
# Experiment drivers
# ---------------------------------------------------------------------------


def test_run_matrix_covers_grid(quick_runs):
    cells = {(r.platform.key, r.app_name) for r in quick_runs}
    assert len(cells) == 4


def test_integrated_run_accessors(quick_runs):
    run = quick_runs[0]
    assert set(FIG3_TARGETS) <= set(run.frame_rates()) | set(FIG3_TARGETS)
    assert abs(sum(run.cpu_share().values()) - 1.0) < 1e-9
    assert run.wall_seconds > 0


def test_vio_ate_none_for_model_runs(quick_runs):
    assert quick_runs[0].vio_ate() is None


def test_run_integrated_full_collects_trajectory():
    run = run_integrated("desktop", "ar_demo", duration_s=2.0, fidelity="full")
    ate = run.vio_ate()
    assert ate is not None
    assert ate.rmse_m < 0.2


@pytest.mark.slow
def test_vio_ablation_shape():
    standard, high = vio_accuracy_ablation(duration_s=5.0)
    assert high.ate_cm < standard.ate_cm           # more features, less drift
    ratio = high.mean_frame_time_ms / standard.mean_frame_time_ms
    assert 1.1 < ratio < 2.6                        # ~1.5x in the paper
    assert standard.frames == high.frames


# ---------------------------------------------------------------------------
# Standalone characterizations
# ---------------------------------------------------------------------------


def test_characterize_vio_tasks():
    breakdown = characterize_vio(duration_s=3.0)
    shares = breakdown.shares()
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    assert breakdown.extras["ate_cm"] < 20
    assert breakdown.extras["frame_time_cov"] > 0.05  # input-dependent (§IV-B1)
    assert breakdown.mean_frame_ms > 0


def test_characterize_reconstruction_growth():
    breakdown = characterize_reconstruction(frames=8)
    assert breakdown.extras["pose_error_cm"] < 30
    assert breakdown.task_seconds["map_fusion"] > 0
    assert breakdown.task_seconds["surfel_prediction"] > 0


def test_characterize_eye_tracking():
    breakdown = characterize_eye_tracking(train_steps=25, eval_samples=6)
    assert breakdown.extras["mean_iou"] > 0.4
    shares = breakdown.shares()
    assert shares["convolution"] > 0.3  # convolutions dominate (paper: 74%)


def test_characterize_reprojection():
    breakdown = characterize_reprojection(frames=4)
    assert set(breakdown.task_seconds) == {"fbo", "opengl_state", "reprojection"}
    assert breakdown.shares()["reprojection"] > 0.1


def test_characterize_hologram():
    breakdown = characterize_hologram(iterations=3, resolution=64)
    shares = breakdown.shares()
    # Propagations dominate; the scalar 'sum' stage is negligible
    # (Table VII: < 0.1%).
    assert shares["sum"] < 0.1
    assert shares["hologram_to_depth"] + shares["depth_to_hologram"] > 0.85
    assert 0 < breakdown.extras["efficiency"] <= 1


def test_characterize_audio():
    breakdowns = characterize_audio(blocks=12)
    encoding = breakdowns["audio_encoding"].shares()
    playback = breakdowns["audio_playback"].shares()
    assert encoding["encoding"] > 0.4          # paper: 81%
    assert playback["binauralization"] + playback["rotation"] > 0.5
    assert playback["zoom"] < 0.2


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------


def test_static_tables_render():
    assert "Varjo" in report.render_table1()
    assert "vio" in report.render_table2().lower()
    assert "15 Hz" in report.render_table3()


def test_figure_renderers(quick_runs):
    fig3 = report.render_fig3(quick_runs)
    assert "desktop" in fig3 and "jetson-lp" in fig3
    fig4 = report.render_fig4(quick_runs[0])
    assert "vio" in fig4
    fig5 = report.render_fig5(quick_runs)
    assert "%" in fig5 or "cpu" in fig5.lower()
    fig6 = report.render_fig6(quick_runs)
    assert "GPU%" in fig6
    fig7 = report.render_fig7(quick_runs)
    assert "ms" in fig7
    fig8 = report.render_fig8()
    assert "audio_playback" in fig8


def test_table_renderers(quick_runs):
    table4 = report.render_table4(quick_runs)
    assert "sponza" in table4 and "desktop" in table4
    from repro.metrics.qoe import ImageQualityResult

    table5 = report.render_table5(
        {"desktop": ImageQualityResult(0.93, 0.02, 0.98, 0.01, 10)}
    )
    assert "0.93" in table5


def test_task_breakdown_renderer():
    breakdown = characterize_audio(blocks=4)["audio_encoding"]
    text = report.render_task_breakdown(breakdown)
    assert "encoding" in text and "%" in text


def test_ablation_renderer():
    from repro.analysis.experiments import VioAblationResult

    text = report.render_ablation(
        VioAblationResult("standard", 8.1, 10.0, 100),
        VioAblationResult("high", 4.9, 15.0, 100),
    )
    assert "1.50x" in text


# ---------------------------------------------------------------------------
# Registry (Table II)
# ---------------------------------------------------------------------------


def test_registry_covers_three_pipelines():
    grouped = registry_by_pipeline()
    assert set(grouped) == {"perception", "visual", "audio"}


def test_registry_default_components_unique():
    defaults = default_components()
    names = [e.component for e in defaults]
    assert len(names) == len(set(names))
    assert "vio" in names and "audio_playback" in names


def test_registry_modules_importable():
    import importlib

    for entry in COMPONENT_REGISTRY:
        module_name = entry.module
        # Strip a trailing class/function name if present.
        try:
            importlib.import_module(module_name)
        except ImportError:
            parent, _, attr = module_name.rpartition(".")
            module = importlib.import_module(parent)
            assert hasattr(module, attr)
