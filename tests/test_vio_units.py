"""Unit tests for VIO building blocks: triangulation, Jacobians,
nullspace projection, gating, the EKF update, and propagation."""

import numpy as np
import pytest

from repro.maths.quaternion import quat_from_axis_angle, quat_identity
from repro.perception.vio.state import IMU_DIM, VioState
from repro.perception.vio.tracker import Track
from repro.perception.vio.triangulation import CloneObservation, triangulate
from repro.perception.vio.update import (
    chi2_gate,
    chi2_threshold,
    compress_measurements,
    ekf_update,
    feature_jacobians,
    nullspace_project,
)
from repro.perception.vio import propagation
from repro.sensors.camera import CameraIntrinsics
from repro.sensors.imu import ImuNoise, ImuSample

R_CAM_BODY = np.array([[0.0, -1.0, 0.0], [0.0, 0.0, -1.0], [1.0, 0.0, 0.0]])
BASELINE = 0.063


def _project(intr, orientation, position, point, eye_offset):
    from repro.maths.quaternion import quat_to_matrix

    r_wb = quat_to_matrix(orientation)
    cam = R_CAM_BODY @ (r_wb.T @ (point - position))
    cam[0] -= eye_offset
    return np.array(
        [intr.fx * cam[0] / cam[2] + intr.cx, intr.fy * cam[1] / cam[2] + intr.cy]
    )


def _stereo_obs(intr, orientation, position, point):
    return (
        _project(intr, orientation, position, point, 0.0),
        _project(intr, orientation, position, point, BASELINE),
    )


def test_triangulation_exact_with_perfect_pixels():
    intr = CameraIntrinsics()
    point = np.array([3.0, 0.5, 1.8])
    observations = []
    for x in (0.0, 0.3, 0.6):
        orientation = quat_identity()
        position = np.array([x, 0.0, 1.5])
        uv_l, uv_r = _stereo_obs(intr, orientation, position, point)
        observations.append(CloneObservation(orientation, position, uv_l, uv_r))
    result = triangulate(observations, intr, BASELINE, R_CAM_BODY)
    assert result is not None
    assert np.allclose(result.position, point, atol=1e-6)
    assert result.mean_reprojection_px < 1e-6


def test_triangulation_single_stereo_observation():
    intr = CameraIntrinsics()
    point = np.array([2.0, -0.4, 1.2])
    orientation = quat_identity()
    position = np.array([0.0, 0.0, 1.5])
    uv_l, uv_r = _stereo_obs(intr, orientation, position, point)
    result = triangulate(
        [CloneObservation(orientation, position, uv_l, uv_r)], intr, BASELINE, R_CAM_BODY
    )
    assert result is not None
    assert np.allclose(result.position, point, atol=1e-4)


def test_triangulation_rejects_point_behind_camera():
    intr = CameraIntrinsics()
    obs = CloneObservation(
        quat_identity(), np.array([0.0, 0.0, 1.5]), np.array([320.0, 240.0]), np.array([310.0, 240.0])
    )
    # Feed an observation of a point that triangulates behind the camera
    # by flipping the disparity sign.
    flipped = CloneObservation(obs.orientation, obs.position, obs.uv_right, obs.uv_left)
    result = triangulate([flipped], intr, BASELINE, R_CAM_BODY)
    assert result is None or result.mean_reprojection_px > 1.0


def test_triangulation_empty_returns_none():
    assert triangulate([], CameraIntrinsics(), BASELINE, R_CAM_BODY) is None


def _state_with_clones(positions):
    state = VioState(
        timestamp=0.0,
        orientation=quat_identity(),
        position=np.zeros(3),
        velocity=np.zeros(3),
    )
    clones = []
    for position in positions:
        state.position = np.asarray(position, dtype=float)
        clones.append(state.augment_clone())
    return state, clones


def test_feature_jacobians_zero_residual_at_truth():
    intr = CameraIntrinsics()
    point = np.array([3.0, 0.2, 1.5])
    state, clones = _state_with_clones([[0.0, 0.0, 1.5], [0.2, 0.0, 1.5]])
    track = Track(feature_id=0)
    for clone in clones:
        uv_l, uv_r = _stereo_obs(intr, clone.orientation, clone.position, point)
        track.add(clone.clone_id, uv_l, uv_r)
    jac = feature_jacobians(state, track, point, intr, BASELINE, R_CAM_BODY)
    assert jac is not None
    residual, h_x, h_f = jac
    assert residual.shape == (8,)
    assert h_x.shape == (8, state.dim)
    assert h_f.shape == (8, 3)
    assert np.allclose(residual, 0.0, atol=1e-9)


def test_feature_jacobians_match_numeric_differentiation():
    intr = CameraIntrinsics()
    point = np.array([2.5, -0.3, 1.8])
    state, clones = _state_with_clones([[0.0, 0.1, 1.5]])
    clone = clones[0]
    track = Track(feature_id=0)
    uv_l, uv_r = _stereo_obs(intr, clone.orientation, clone.position, point)
    track.add(clone.clone_id, uv_l, uv_r)
    _, h_x, h_f = feature_jacobians(state, track, point, intr, BASELINE, R_CAM_BODY)

    eps = 1e-6
    offset = state.clone_offset(clone.clone_id)

    def measurement_at(dtheta, dpos, dfeat):
        # h(x): the predicted stereo pixels (H differentiates h, not the
        # residual r = z - h).
        from repro.maths.quaternion import quat_exp, quat_multiply

        q = quat_multiply(clone.orientation, quat_exp(dtheta))
        p = clone.position + dpos
        f = point + dfeat
        rows = []
        for eye in (0.0, BASELINE):
            rows.extend(_project(intr, q, p, f, eye))
        return np.asarray(rows)

    base = measurement_at(np.zeros(3), np.zeros(3), np.zeros(3))
    for axis in range(3):
        delta = np.zeros(3)
        delta[axis] = eps
        numeric_theta = (measurement_at(delta, np.zeros(3), np.zeros(3)) - base) / eps
        numeric_pos = (measurement_at(np.zeros(3), delta, np.zeros(3)) - base) / eps
        numeric_feat = (measurement_at(np.zeros(3), np.zeros(3), delta) - base) / eps
        assert np.allclose(h_x[:, offset + axis], numeric_theta, atol=1e-3)
        assert np.allclose(h_x[:, offset + 3 + axis], numeric_pos, atol=1e-3)
        assert np.allclose(h_f[:, axis], numeric_feat, atol=1e-3)


def test_feature_jacobians_none_when_no_clone_in_window():
    intr = CameraIntrinsics()
    state, _clones = _state_with_clones([[0.0, 0.0, 1.5]])
    track = Track(feature_id=0)
    track.add(999, np.array([320.0, 240.0]), np.array([310.0, 240.0]))
    assert feature_jacobians(state, track, np.ones(3), intr, BASELINE, R_CAM_BODY) is None


def test_nullspace_projection_annihilates_feature_jacobian():
    rng = np.random.default_rng(0)
    residual = rng.normal(size=8)
    h_x = rng.normal(size=(8, 20))
    h_f = rng.normal(size=(8, 3))
    projected = nullspace_project(residual, h_x, h_f)
    assert projected is not None
    r0, h0 = projected
    assert r0.shape == (5,)
    assert h0.shape == (5, 20)
    # Verify: the projector rows are orthogonal to the columns of h_f.
    q_full, _ = np.linalg.qr(h_f, mode="complete")
    nullspace = q_full[:, 3:]
    assert np.allclose(nullspace.T @ h_f, 0.0, atol=1e-10)


def test_nullspace_projection_needs_enough_rows():
    assert nullspace_project(np.zeros(3), np.zeros((3, 5)), np.zeros((3, 3))) is None


def test_chi2_threshold_monotone_in_dof():
    assert chi2_threshold(2) < chi2_threshold(10)
    with pytest.raises(ValueError):
        chi2_threshold(0)


def test_chi2_gate_accepts_consistent_and_rejects_gross():
    dim = 10
    covariance = 0.01 * np.eye(dim)
    h = np.zeros((2, dim))
    h[:, 0:2] = np.eye(2)
    small = np.array([0.05, -0.02])
    huge = np.array([50.0, 50.0])
    assert chi2_gate(small, h, covariance, pixel_sigma=1.0)
    assert not chi2_gate(huge, h, covariance, pixel_sigma=1.0)


def test_measurement_compression_preserves_information():
    rng = np.random.default_rng(1)
    h = rng.normal(size=(40, 6))
    r = rng.normal(size=40)
    r2, h2 = compress_measurements(r, h)
    assert h2.shape == (6, 6)
    # The normal equations are identical.
    assert np.allclose(h2.T @ h2, h.T @ h, atol=1e-9)
    assert np.allclose(h2.T @ r2, h.T @ r, atol=1e-9)


def test_compression_noop_when_thin():
    h = np.zeros((4, 6))
    r = np.zeros(4)
    r2, h2 = compress_measurements(r, h)
    assert h2 is h and r2 is r


def test_ekf_update_moves_mean_toward_measurement():
    state = VioState(
        timestamp=0.0,
        orientation=quat_identity(),
        position=np.zeros(3),
        velocity=np.zeros(3),
    )
    state.covariance = np.eye(state.dim) * 0.1
    h = np.zeros((1, state.dim))
    h[0, 3] = 1.0  # direct observation of position x
    residual = np.array([1.0])  # measured - predicted
    ekf_update(state, residual, h, pixel_sigma=0.1)
    assert 0.8 < state.position[0] <= 1.0
    # Variance of the observed dimension shrinks.
    assert state.covariance[3, 3] < 0.1


def test_ekf_update_shape_mismatch_rejected():
    state = VioState(
        timestamp=0.0,
        orientation=quat_identity(),
        position=np.zeros(3),
        velocity=np.zeros(3),
    )
    with pytest.raises(ValueError):
        ekf_update(state, np.zeros(2), np.zeros((2, 3)), pixel_sigma=1.0)


def test_propagation_grows_uncertainty():
    state = VioState(
        timestamp=0.0,
        orientation=quat_identity(),
        position=np.zeros(3),
        velocity=np.zeros(3),
    )
    trace_before = np.trace(state.covariance)
    for i in range(1, 51):
        propagation.propagate(
            state,
            ImuSample(timestamp=i * 0.002, gyro=np.zeros(3), accel=np.array([0.0, 0.0, 9.81])),
            ImuNoise(),
        )
    assert np.trace(state.covariance) > trace_before
    assert state.timestamp == pytest.approx(0.1)


def test_propagation_rejects_time_reversal():
    state = VioState(
        timestamp=1.0,
        orientation=quat_identity(),
        position=np.zeros(3),
        velocity=np.zeros(3),
    )
    with pytest.raises(ValueError):
        propagation.propagate(
            state,
            ImuSample(timestamp=0.5, gyro=np.zeros(3), accel=np.zeros(3)),
            ImuNoise(),
        )


def test_propagation_keeps_clone_cross_covariance_consistent():
    state = VioState(
        timestamp=0.0,
        orientation=quat_identity(),
        position=np.zeros(3),
        velocity=np.zeros(3),
    )
    state.augment_clone()
    propagation.propagate(
        state,
        ImuSample(timestamp=0.002, gyro=np.zeros(3), accel=np.array([0.0, 0.0, 9.81])),
        ImuNoise(),
    )
    # Covariance stays symmetric and the clone block is untouched by Qd.
    assert np.allclose(state.covariance, state.covariance.T)
    clone_block = state.covariance[IMU_DIM:, IMU_DIM:]
    assert np.allclose(clone_block[:3, :3], 1e-4 * np.eye(3), atol=1e-8)
