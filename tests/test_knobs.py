"""Tests for the load-bearing system knobs: display resolution/rate/FoV
scaling and per-component clock dilation (§V.G)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.runtime import Runtime, build_runtime
from repro.hardware.platform import DESKTOP, JETSON_HP
from repro.plugins.visual import display_cost_scale


def _run(platform, **config_kwargs):
    defaults = dict(duration_s=3.0, fidelity="model", seed=0)
    defaults.update(config_kwargs)
    return build_runtime(platform, "sponza", SystemConfig(**defaults)).run()


# ---------------------------------------------------------------------------
# Display knobs
# ---------------------------------------------------------------------------


def test_display_cost_scale_identity_at_defaults():
    assert display_cost_scale(SystemConfig()) == pytest.approx(1.0)


def test_display_cost_scale_monotone_in_pixels_and_fov():
    small = display_cost_scale(SystemConfig(display_resolution="720p"))
    large = display_cost_scale(SystemConfig(field_of_view_deg=150.0))
    assert small < 1.0 < large


def test_lower_resolution_restores_jetson_visual_pipeline():
    """§IV-A1 in reverse: shrinking the display relieves the Jetson."""
    full = _run(JETSON_HP)
    reduced = _run(JETSON_HP, display_resolution="720p")
    assert reduced.frame_rate("application") > 1.5 * full.frame_rate("application")
    assert reduced.frame_rate("timewarp") > full.frame_rate("timewarp")
    assert reduced.mtp_summary().mean_ms < full.mtp_summary().mean_ms


def test_wider_fov_stresses_the_application():
    narrow = _run(JETSON_HP, field_of_view_deg=60.0)
    wide = _run(JETSON_HP, field_of_view_deg=150.0)
    assert wide.frame_rate("application") < narrow.frame_rate("application")


def test_lower_refresh_rate_increases_mtp():
    """Slower vsync = longer swap waits after a miss."""
    fast = _run(JETSON_HP, display_rate_hz=120.0)
    slow = _run(JETSON_HP, display_rate_hz=60.0)
    assert slow.mtp_summary().mean_ms > fast.mtp_summary().mean_ms


def test_desktop_defaults_unaffected_by_scaling_identity():
    """The calibration anchor: defaults produce the calibrated behaviour."""
    result = _run(DESKTOP)
    assert result.mtp_summary().mean_ms < 5.0


# ---------------------------------------------------------------------------
# Clock dilation (§V.G idea 3)
# ---------------------------------------------------------------------------


def _dilated_run(dilation):
    config = SystemConfig(duration_s=3.0, fidelity="model", seed=0)
    base = build_runtime(DESKTOP, "platformer", config)
    runtime = Runtime(
        base.platform, config, "platformer", base.plugins, base.trajectory,
        timing=base.timing, dilation=dilation,
    )
    return runtime.run()


def test_dilation_slows_selected_component():
    normal = _dilated_run({})
    dilated = _dilated_run({"vio": 6.0})
    assert dilated.logger.mean_execution_time("vio") > 4 * normal.logger.mean_execution_time("vio")
    # A 6x-dilated VIO (72 ms) exceeds the camera period: frames drop.
    assert dilated.frame_rate("vio") < normal.frame_rate("vio")


def test_dilation_leaves_other_components_untouched():
    normal = _dilated_run({})
    dilated = _dilated_run({"vio": 6.0})
    assert dilated.logger.mean_execution_time("audio_playback") == pytest.approx(
        normal.logger.mean_execution_time("audio_playback"), rel=0.15
    )


def test_dilation_propagates_to_end_to_end_metrics():
    """The point of the hybrid-simulation hook: the rest of the system
    experiences the simulated component's speed."""
    dilated = _dilated_run({"timewarp": 8.0})
    normal = _dilated_run({})
    assert dilated.mtp_summary().mean_ms > normal.mtp_summary().mean_ms + 3.0


def test_dilation_validation():
    with pytest.raises(ValueError):
        _dilated_run({"vio": 0.0})
