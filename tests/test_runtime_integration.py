"""Integration tests: the full system booted on each platform.

Fast checks use model fidelity (no real algorithms); the shared
``desktop_full_run`` fixture provides one full-fidelity run.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.runtime import build_runtime
from repro.hardware.platform import DESKTOP, JETSON_HP, JETSON_LP
from repro.plugins.extended import build_extended_runtime


def _model_run(platform, app="platformer", duration=3.0, seed=0):
    config = SystemConfig(duration_s=duration, fidelity="model", seed=seed)
    return build_runtime(platform, app, config).run()


# ---------------------------------------------------------------------------
# Fast model-fidelity runs
# ---------------------------------------------------------------------------


def test_all_components_run_on_desktop():
    result = _model_run(DESKTOP)
    rates = result.frame_rates()
    expected = {
        "camera", "imu", "vio", "integrator",
        "application", "timewarp", "audio_encoding", "audio_playback",
    }
    assert expected <= set(rates)


def test_desktop_meets_targets_on_platformer():
    result = _model_run(DESKTOP)
    rates = result.frame_rates()
    assert rates["camera"] == pytest.approx(15, abs=0.5)
    assert rates["vio"] == pytest.approx(15, abs=1.0)
    assert rates["imu"] == pytest.approx(500, abs=2)
    assert rates["integrator"] > 480
    assert rates["application"] > 100
    assert rates["timewarp"] > 110
    assert rates["audio_encoding"] == pytest.approx(48, abs=1)


def test_jetson_lp_misses_visual_targets_on_sponza():
    result = _model_run(JETSON_LP, app="sponza")
    rates = result.frame_rates()
    assert rates["application"] < 30        # severely degraded (Fig. 3c)
    assert rates["timewarp"] < 100
    assert rates["audio_encoding"] > 45     # audio still meets target
    assert rates["vio"] < 15                # VIO drops frames


def test_mtp_ordering_across_platforms():
    mtps = {}
    for platform in (DESKTOP, JETSON_HP, JETSON_LP):
        mtps[platform.key] = _model_run(platform, app="sponza").mtp_summary().mean_ms
    assert mtps["desktop"] < mtps["jetson-hp"] < mtps["jetson-lp"]
    assert mtps["desktop"] < 5.0            # meets VR target comfortably
    assert mtps["jetson-lp"] > 12.0


def test_mtp_grows_with_app_complexity_on_jetson():
    simple = _model_run(JETSON_LP, app="ar_demo").mtp_summary().mean_ms
    complex_ = _model_run(JETSON_LP, app="sponza").mtp_summary().mean_ms
    assert complex_ > simple


def test_power_ordering_and_structure():
    desktop = _model_run(DESKTOP, app="sponza").power
    jetson_hp = _model_run(JETSON_HP, app="sponza").power
    jetson_lp = _model_run(JETSON_LP, app="sponza").power
    assert desktop.total > 80
    assert 8 < jetson_hp.total < 16
    assert 5 < jetson_lp.total < 10
    shares = jetson_lp.share()
    assert shares["SoC"] + shares["Sys"] > 0.45
    assert desktop.share()["GPU"] > 0.5


def test_cpu_share_structure():
    shares = _model_run(DESKTOP, app="sponza").cpu_share()
    # VIO and the application dominate; reprojection stays near/below 10%.
    assert shares["vio"] > 0.2
    assert shares["application"] > 0.15
    assert shares["timewarp"] < 0.15


def test_vio_and_app_dominate_cycles_everywhere():
    for platform in (DESKTOP, JETSON_HP, JETSON_LP):
        shares = _model_run(platform, app="materials").cpu_share()
        top_two = sorted(shares, key=shares.get, reverse=True)[:3]
        assert "vio" in top_two


def test_runs_reproducible_per_seed():
    a = _model_run(DESKTOP, seed=42)
    b = _model_run(DESKTOP, seed=42)
    assert a.mtp_summary().mean_ms == b.mtp_summary().mean_ms
    assert a.logger.mean_execution_time("vio") == b.logger.mean_execution_time("vio")
    # A different seed draws different execution times.  (MTP itself is
    # seed-invariant on the desktop: every frame makes its vsync, so
    # MTP = imu_age + lead exactly -- compare sampled costs instead.)
    c = _model_run(DESKTOP, seed=43)
    assert a.logger.mean_execution_time("vio") != c.logger.mean_execution_time("vio")


def test_execution_time_variability_exists():
    """Fig. 4: per-frame times vary even for non-input-dependent parts."""
    result = _model_run(DESKTOP)
    for plugin in ("camera", "timewarp", "audio_playback"):
        times = result.logger.execution_times(plugin)
        assert np.std(times) > 0


def test_invalid_duration_rejected():
    config = SystemConfig(duration_s=1.0, fidelity="model")
    runtime = build_runtime(DESKTOP, "sponza", config)
    with pytest.raises(ValueError):
        runtime.run(duration=-1.0)


def test_unknown_app_rejected():
    with pytest.raises(KeyError):
        build_runtime(DESKTOP, "minecraft", SystemConfig(duration_s=1.0))


# ---------------------------------------------------------------------------
# Full-fidelity run (shared fixture)
# ---------------------------------------------------------------------------


def test_full_run_vio_tracks_ground_truth(desktop_full_run):
    result = desktop_full_run
    assert len(result.vio_trajectory) > 30
    errors = [
        est.pose.translation_error(result.ground_truth(est.timestamp))
        for _, est in result.vio_trajectory
    ]
    assert np.mean(errors) < 0.1


def test_full_run_produces_mtp_and_display_events(desktop_full_run):
    result = desktop_full_run
    assert result.mtp_summary().count > 100
    assert len(result.display_events) == len(result.mtp_samples)
    event = result.display_events[-1]
    assert event.submit_time <= result.duration + 1 / 60
    assert event.imu_age >= 0


def test_full_run_mtp_decomposition(desktop_full_run):
    for sample in desktop_full_run.mtp_samples[:50]:
        assert 0 <= sample.imu_age < 0.05
        assert 0 < sample.reprojection_time < 0.05
        assert 0 <= sample.swap_wait < 1 / 60


def test_full_run_fast_pose_stream_active(desktop_full_run):
    # The integrator publishes at nearly the IMU rate.
    assert desktop_full_run.fast_pose_count > 0.9 * 500 * desktop_full_run.duration


def test_full_run_image_quality(desktop_full_run):
    from repro.metrics.qoe import evaluate_image_quality

    quality = evaluate_image_quality(desktop_full_run, max_frames=6)
    assert 0.6 < quality.ssim_mean <= 1.0
    assert 0.6 < quality.one_minus_flip_mean <= 1.0
    assert quality.frames == 6


def test_full_run_audio_pipeline_active(desktop_full_run):
    rates = desktop_full_run.frame_rates()
    assert rates["audio_playback"] > 45


# ---------------------------------------------------------------------------
# Extended configuration
# ---------------------------------------------------------------------------


def test_extended_runtime_runs_all_eleven_components():
    config = SystemConfig(duration_s=1.0, fidelity="model", seed=0)
    result = build_extended_runtime(DESKTOP, "platformer", config).run()
    rates = result.frame_rates()
    assert {"eye_tracking", "hologram", "depth_camera"} <= set(rates)
    assert rates["eye_tracking"] == pytest.approx(30, abs=1.5)


def test_phonebook_services_registered():
    runtime = build_runtime(DESKTOP, "sponza", SystemConfig(duration_s=1.0, fidelity="model"))
    for service in ("engine", "platform", "config", "trajectory", "timing"):
        assert service in runtime.phonebook
