"""Shared fixtures: kept deliberately small/fast; session-scoped where the
object is expensive (dataset synthesis, trained eye tracker, full runs)."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.hardware.platform import DESKTOP
from repro.sensors.dataset import make_vicon_room_dataset


@pytest.fixture(autouse=True)
def _isolate_profiler():
    """Reset the process-wide profiler registry around every test.

    The ``repro.perf.profile`` registry, enabled flag, and installed span
    tracer are module-level state; a test that enables profiling (or a
    traced run that installs a tracer) must not leak into its neighbours.
    """
    from repro.perf import profile

    was_enabled = profile.profiling_enabled()
    yield
    profile.enable_profiling(was_enabled)
    profile.reset_profile()
    profile.set_tracer(None)


@pytest.fixture(scope="session")
def small_dataset():
    """A 6-second offline dataset shared by VIO tests."""
    return make_vicon_room_dataset(duration=6.0, seed=1)


@pytest.fixture(scope="session")
def desktop_full_run():
    """One short full-fidelity integrated run on the desktop."""
    from repro.core.runtime import build_runtime

    config = SystemConfig(duration_s=3.0, fidelity="full", seed=0)
    return build_runtime(DESKTOP, "platformer", config).run()


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def fault_plans():
    """Name -> factory(seed) for the canned chaos scenarios."""
    from repro.resilience.plans import CANNED_PLANS

    return dict(CANNED_PLANS)


@pytest.fixture
def degraded_runtime():
    """Factory for a runtime with chaos opted in, in one line.

    ``degraded_runtime("vio_crash_loop")`` or
    ``degraded_runtime(my_plan, fidelity="full", duration=10.0)`` returns
    an un-run :class:`~repro.core.runtime.Runtime` with the plan installed
    and default supervision; call ``.run()`` (and read the plan back via
    ``runtime.fault_plan``).
    """
    from repro.core.runtime import build_runtime
    from repro.resilience.plans import CANNED_PLANS
    from repro.resilience.supervisor import SupervisorConfig

    def make(
        plan,
        platform=DESKTOP,
        app="platformer",
        duration=3.0,
        fidelity="model",
        seed=0,
        plan_seed=0,
        supervision=None,
        **config_overrides,
    ):
        if isinstance(plan, str):
            plan = CANNED_PLANS[plan](plan_seed)
        config = SystemConfig(
            duration_s=duration, fidelity=fidelity, seed=seed, **config_overrides
        )
        return build_runtime(
            platform,
            app,
            config,
            fault_plan=plan,
            supervision=supervision or SupervisorConfig(),
        )

    return make
