"""Shared fixtures: kept deliberately small/fast; session-scoped where the
object is expensive (dataset synthesis, trained eye tracker, full runs)."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.hardware.platform import DESKTOP
from repro.sensors.dataset import make_vicon_room_dataset


@pytest.fixture(scope="session")
def small_dataset():
    """A 6-second offline dataset shared by VIO tests."""
    return make_vicon_room_dataset(duration=6.0, seed=1)


@pytest.fixture(scope="session")
def desktop_full_run():
    """One short full-fidelity integrated run on the desktop."""
    from repro.core.runtime import build_runtime

    config = SystemConfig(duration_s=3.0, fidelity="full", seed=0)
    return build_runtime(DESKTOP, "platformer", config).run()


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
