"""Fault-injection & supervision: fast invariants and regression edges.

Property-style coverage: seeded random fault plans (20 seeds) over short
model-fidelity runs, asserting the switchboard invariants the runtime
guarantees even under chaos -- per-reader timestamp monotonicity,
ring-buffer eviction correctness under reader lag, exactly-once delivery
to synchronous readers, and no duplicate publication after a supervised
retry.  Plus targeted regression tests for the fault-path edges of
``Topic.get_latest_before`` and the scheduler's deadline accounting.
"""

import math

import pytest

from repro.core.config import SystemConfig
from repro.core.runtime import build_runtime
from repro.core.switchboard import Switchboard, Topic
from repro.hardware.platform import DESKTOP
from repro.resilience import (
    CANNED_PLANS,
    Corrupted,
    FaultPlan,
    InjectedFault,
    RuntimeSupervisor,
    SupervisorConfig,
    random_fault_plan,
)

SEEDS = range(20)


def _chaos_run(seed, duration=1.2, probes=("imu", "fast_pose", "camera")):
    """One short model-fidelity run under a random fault plan, with
    per-topic probes recording everything each reader saw."""
    plan = random_fault_plan(seed)
    config = SystemConfig(duration_s=duration, fidelity="model", seed=seed)
    runtime = build_runtime(
        DESKTOP, "platformer", config, fault_plan=plan, supervision=SupervisorConfig()
    )
    seen = {name: [] for name in probes}
    readers = {}
    for name in probes:
        topic = runtime.switchboard.topic(name)
        topic.subscribe_callback(lambda e, log=seen[name]: log.append(e))
        readers[name] = topic.subscribe_queue()
    result = runtime.run()
    return plan, runtime, result, seen, readers


# ---------------------------------------------------------------------------
# Property: switchboard invariants under seeded random fault plans
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_preserves_switchboard_invariants(seed):
    plan, runtime, result, seen, readers = _chaos_run(seed)
    for name, events in seen.items():
        times = [e.publish_time for e in events]
        # Per-reader timestamp monotonicity (duplicates may tie, never
        # go backwards -- delayed events are re-stamped at delivery).
        assert times == sorted(times), f"{name} went backwards under plan {plan!r}"
        sequences = [e.sequence for e in events]
        # Exactly-once delivery: delivered sequence numbers are unique
        # and strictly increasing (drops consume no sequence).
        assert sequences == sorted(set(sequences)), f"{name} duplicated a sequence"
        # The synchronous reader saw the identical event stream, in
        # order, regardless of how far it lagged behind the ring.
        drained = readers[name].drain()
        assert [e.sequence for e in drained] == sequences, f"{name} sync reader diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_completes_without_uncaught_exceptions(seed):
    # .run() returning at all is the assertion: any exception that
    # escapes a supervised plugin would propagate out of the engine.
    plan, runtime, result, _seen, _readers = _chaos_run(seed)
    assert result.duration == pytest.approx(1.2)
    # Whatever was injected must be on the record.
    assert len(result.fault_log) == len(plan.log)


# ---------------------------------------------------------------------------
# Determinism: same seed -> identical event-level injection log
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(CANNED_PLANS))
def test_canned_plans_are_deterministic(name):
    logs = []
    for _ in range(2):
        plan = CANNED_PLANS[name](seed=3)
        config = SystemConfig(duration_s=2.0, fidelity="model", seed=0)
        build_runtime(
            DESKTOP, "platformer", config, fault_plan=plan, supervision=SupervisorConfig()
        ).run()
        logs.append(list(plan.log))
    assert logs[0], f"plan {name} injected nothing in 2 s"
    assert logs[0] == logs[1]


def test_same_plan_object_reusable_across_runs():
    # begin_run() reseeds the rule RNG streams, so one plan object run
    # twice produces the same log (not a continuation of the first run).
    plan = FaultPlan(seed=9).drop("imu", rate=0.1).crash("vio", rate=0.5)
    config = SystemConfig(duration_s=1.0, fidelity="model", seed=0)
    build_runtime(DESKTOP, "platformer", config, fault_plan=plan,
                  supervision=SupervisorConfig()).run()
    first = list(plan.log)
    build_runtime(DESKTOP, "platformer", config, fault_plan=plan,
                  supervision=SupervisorConfig()).run()
    assert list(plan.log) == first


# ---------------------------------------------------------------------------
# No duplicate delivery after a supervised retry
# ---------------------------------------------------------------------------


def test_retry_publishes_outputs_exactly_once():
    # camera invocation 3 crashes on its first attempt only; the retry
    # succeeds and its outputs must appear exactly once.
    plan = FaultPlan(seed=0).crash_at("camera", index=3)
    config = SystemConfig(duration_s=1.0, fidelity="model", seed=0)
    runtime = build_runtime(
        DESKTOP, "platformer", config, fault_plan=plan, supervision=SupervisorConfig()
    )
    frames = []
    runtime.switchboard.topic("camera").subscribe_callback(frames.append)
    result = runtime.run()
    sup = runtime.supervisor
    assert len(sup.events_of_kind("crash")) == 1
    assert len(sup.events_of_kind("retry")) == 1
    assert sup.plugin_health("camera").state == "healthy"
    # One camera record per invocation index -- the retried index 3 included.
    records = result.logger.for_plugin("camera")
    indices = [r.index for r in records]
    assert len(indices) == len(set(indices))
    assert 3 in indices
    # Delivered frame sequences are unique: no double publish from the retry.
    sequences = [e.sequence for e in frames]
    assert len(sequences) == len(set(sequences))


def test_crash_without_supervision_propagates():
    plan = FaultPlan(seed=0).crash("camera", rate=1.0)
    config = SystemConfig(duration_s=0.5, fidelity="model", seed=0)
    runtime = build_runtime(DESKTOP, "platformer", config)
    runtime.fault_plan = plan
    plan.begin_run(runtime.engine)
    runtime.scheduler.injector = plan  # injector without a supervisor
    with pytest.raises(InjectedFault):
        runtime.run()


# ---------------------------------------------------------------------------
# Supervisor state machine
# ---------------------------------------------------------------------------


def test_supervisor_quarantines_after_consecutive_failures():
    sup = RuntimeSupervisor(SupervisorConfig(max_consecutive_failures=3))
    boom = RuntimeError("boom")
    assert sup.record_failure("vio", 0.1, boom) == "retry"
    assert sup.record_failure("vio", 0.2, boom) == "retry"
    assert sup.record_failure("vio", 0.3, boom) == "quarantine"
    assert sup.is_quarantined("vio")
    assert sup.plugin_health("vio").state == "quarantined"
    assert sup.quarantined_plugins() == ["vio"]


def test_supervisor_success_resets_consecutive_count():
    sup = RuntimeSupervisor(SupervisorConfig(max_consecutive_failures=3))
    boom = RuntimeError("boom")
    for _ in range(5):
        assert sup.record_failure("vio", 0.0, boom) == "retry"
        sup.on_success("vio")
    assert not sup.is_quarantined("vio")
    assert sup.plugin_health("vio").crashes == 5


def test_supervisor_backoff_is_exponential_and_capped():
    cfg = SupervisorConfig(backoff_initial=0.01, backoff_factor=2.0, backoff_max=0.05)
    sup = RuntimeSupervisor(cfg)
    boom = RuntimeError("boom")
    delays = []
    for _ in range(5):
        sup.record_failure("app", 0.0, boom)
        delays.append(sup.backoff_delay("app"))
    assert delays[:3] == pytest.approx([0.01, 0.02, 0.04])
    assert delays[3] == delays[4] == pytest.approx(0.05)


def test_supervisor_config_validation():
    with pytest.raises(ValueError):
        SupervisorConfig(max_consecutive_failures=0)
    with pytest.raises(ValueError):
        SupervisorConfig(watchdog_factor=0.5)
    with pytest.raises(ValueError):
        SupervisorConfig(backoff_initial=0.1, backoff_max=0.01)


# ---------------------------------------------------------------------------
# Watchdog / hang detection
# ---------------------------------------------------------------------------


def test_watchdog_reaps_stalled_invocation_and_pipeline_recovers():
    # Stall one application invocation for 30 frame times: far beyond the
    # watchdog threshold (4 deadlines), so it must be killed, its record
    # marked, its core reclaimed, and later invocations must still run.
    plan = FaultPlan(seed=0).stall_at("application", index=5, ticks=30.0)
    config = SystemConfig(duration_s=1.0, fidelity="model", seed=0)
    runtime = build_runtime(
        DESKTOP, "platformer", config, fault_plan=plan, supervision=SupervisorConfig()
    )
    result = runtime.run()
    assert result.logger.kill_count("application") == 1
    killed = [r for r in result.logger.for_plugin("application") if r.killed]
    assert killed[0].index == 5
    assert killed[0].missed_deadline
    assert killed[0].cpu_time == 0.0
    hangs = runtime.supervisor.events_of_kind("hang")
    assert len(hangs) == 1 and hangs[0].plugin == "application"
    # Recovery: invocations after the kill completed normally.
    later = [r for r in result.logger.for_plugin("application") if r.index > 5 and not r.killed]
    assert len(later) > 50
    # No leaked CPU slot: utilization stays meaningful (< 1 core pinned).
    assert 0.0 < result.utilization["cpu"] < 1.0


def test_watchdog_timeout_scales_with_deadline():
    sup = RuntimeSupervisor(SupervisorConfig(watchdog_factor=4.0, watchdog_default=0.25))
    assert sup.watchdog_timeout(0.01) == pytest.approx(0.04)
    assert sup.watchdog_timeout(None) == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Quarantine edges: empty history, stopped drivers, drop accounting
# ---------------------------------------------------------------------------


def test_quarantined_plugin_stops_running_and_inflating_drops():
    plan = FaultPlan(seed=0).crash("camera", rate=1.0)
    config = SystemConfig(duration_s=2.0, fidelity="model", seed=0)
    runtime = build_runtime(
        DESKTOP, "platformer", config, fault_plan=plan,
        supervision=SupervisorConfig(max_consecutive_failures=3,
                                     max_retries_per_invocation=0),
    )
    result = runtime.run()
    assert runtime.supervisor.is_quarantined("camera")
    quarantine_time = runtime.supervisor.plugin_health("camera").quarantined_at
    # The driver stopped: no camera record or drop after quarantine.
    for record in result.logger.for_plugin("camera"):
        assert record.scheduled_at <= quarantine_time
    for drop in result.logger.drops:
        if drop.plugin == "camera":
            assert drop.scheduled_at <= quarantine_time
    # Regression: crash-before-publish with zero retries means the camera
    # topic has an *empty history*; the bisect must answer None, not
    # IndexError, for every consumer that polls it after quarantine.
    camera_topic = runtime.switchboard.topic("camera")
    assert camera_topic.count == 0
    assert camera_topic.get_latest() is None
    assert camera_topic.get_latest_before(math.inf) is None
    empty = Topic("never_written")
    assert empty.get_latest_before(math.inf) is None
    assert empty.get_latest() is None


def test_get_latest_before_with_equal_timestamps_from_duplicates():
    # Regression for the duplicate-injection path: among equal publish
    # times the *latest-published* event must win, and bisect must not
    # step past the run of ties.
    topic = Topic("t")
    topic.put(1.0, "a")
    topic.put(2.0, "b1")
    topic.put(2.0, "b2")   # duplicate: equal timestamp, later sequence
    topic.put(3.0, "c")
    assert topic.get_latest_before(2.0).data == "b2"
    assert topic.get_latest_before(2.5).data == "b2"
    assert topic.get_latest_before(0.5) is None
    assert topic.get_latest_before(3.0).data == "c"


def test_ring_eviction_correct_under_reader_lag():
    # A topic with a tiny ring: the lagging synchronous reader still sees
    # every event exactly once even after the ring evicted them, and
    # get_latest_before answers from the retained window only.
    topic = Topic("t", history=4)
    reader = topic.subscribe_queue()
    for i in range(20):
        topic.put(float(i), i)
    assert len(list(topic.history())) == 4
    assert [e.data for e in topic.history()] == [16, 17, 18, 19]
    drained = reader.drain()
    assert [e.data for e in drained] == list(range(20))
    # Bisect agrees with a reference linear scan over the retained ring.
    for query in (15.5, 16.0, 17.3, 19.0, 25.0):
        reference = None
        for event in topic.history():
            if event.publish_time <= query:
                reference = event
        assert topic.get_latest_before(query) is reference
    # Older than the retained window: nothing to return.
    assert topic.get_latest_before(10.0) is None


# ---------------------------------------------------------------------------
# Deadline accounting on the fault paths
# ---------------------------------------------------------------------------


def test_retried_invocation_deadline_measured_from_original_schedule():
    # The backoff pushes the retried camera invocation past its 66.7 ms
    # period; the record must charge the miss against the *original*
    # scheduled_at, not the retry time.
    plan = FaultPlan(seed=0).crash_at("camera", index=2)
    config = SystemConfig(duration_s=1.0, fidelity="model", seed=0)
    runtime = build_runtime(
        DESKTOP, "platformer", config, fault_plan=plan,
        supervision=SupervisorConfig(backoff_initial=0.08),  # > camera period
    )
    result = runtime.run()
    record = next(r for r in result.logger.for_plugin("camera") if r.index == 2)
    assert record.scheduled_at == pytest.approx(2 * config.camera_period)
    assert record.end - record.scheduled_at > config.camera_period
    assert record.missed_deadline


def test_clock_skew_shifts_component_view_of_time():
    # Paired runs, identical seed: the only difference is the 4 ms skew
    # on the camera's clock, so every camera datum must be stamped
    # exactly 4 ms later than in the baseline run.
    def camera_data_times(plan):
        config = SystemConfig(duration_s=0.5, fidelity="model", seed=0)
        runtime = build_runtime(
            DESKTOP, "platformer", config, fault_plan=plan,
            supervision=SupervisorConfig() if plan is not None else None,
        )
        times = []
        runtime.switchboard.topic("camera").subscribe_callback(
            lambda e: times.append(e.effective_data_time)
        )
        runtime.run()
        return times

    plan = FaultPlan(seed=0).skew_clock("camera", offset=0.004)
    baseline = camera_data_times(None)
    skewed = camera_data_times(plan)
    assert len(baseline) == len(skewed) > 0
    for base, skew in zip(baseline, skewed):
        assert skew - base == pytest.approx(0.004, abs=1e-9)
    assert plan.injections("skew")  # logged at begin_run


# ---------------------------------------------------------------------------
# Poison events and the dead-letter topic
# ---------------------------------------------------------------------------


def test_poison_events_route_to_dead_letter_not_reader_death():
    # Full fidelity: corrupted camera frames make the real VIO front-end
    # raise; the supervisor must keep VIO alive, dead-letter the poison,
    # and VIO must keep producing estimates from the good frames.
    plan = FaultPlan(seed=5).corrupt("camera", rate=0.2)
    config = SystemConfig(duration_s=2.0, fidelity="full", seed=0)
    runtime = build_runtime(
        DESKTOP, "platformer", config, fault_plan=plan, supervision=SupervisorConfig()
    )
    result = runtime.run()
    corrupted = len(plan.injections("corrupt"))
    assert corrupted > 0
    dead_letters = runtime.switchboard.topic("dead_letter").count
    assert dead_letters == corrupted
    for event in runtime.switchboard.topic("dead_letter").history():
        assert isinstance(event.data.data, Corrupted)
    assert not runtime.supervisor.is_quarantined("vio")
    assert len(result.vio_trajectory) > 10  # still tracking on good frames


def test_zero_overhead_when_no_plan_installed():
    # The contract behind the perf gate: without a plan, no injector or
    # supervisor is attached anywhere.
    config = SystemConfig(duration_s=0.5, fidelity="model", seed=0)
    runtime = build_runtime(DESKTOP, "platformer", config)
    assert runtime.fault_plan is None
    assert runtime.supervisor is None
    assert runtime.scheduler.injector is None
    assert runtime.scheduler.supervisor is None
    assert runtime.switchboard.topic("imu")._injector is None
    sb = Switchboard()
    assert sb.topic("x")._injector is None
