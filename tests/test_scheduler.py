"""Unit tests for the runtime scheduler on the DES substrate."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.plugin import (
    InvocationContext,
    IterationResult,
    OnTopic,
    OnVsync,
    Periodic,
    Plugin,
)
from repro.core.records import RecordLogger
from repro.core.scheduler import Scheduler
from repro.core.switchboard import Switchboard
from repro.hardware.platform import DESKTOP, JETSON_LP, Platform
from repro.hardware.timing import TimingModel
from repro.sim.engine import Engine


class FixedCostTiming(TimingModel):
    """Deterministic timing for scheduler tests."""

    def __init__(self, platform, cpu_time, gpu_time=0.0):
        super().__init__(platform, seed=0)
        self._cpu = cpu_time
        self._gpu = gpu_time

    def sample(self, component, app=None, complexity=1.0):
        from repro.hardware.timing import CostSample

        return CostSample(self._cpu * complexity, self._gpu * complexity)


class CountingPlugin(Plugin):
    name = "counter"
    component = "camera"

    def __init__(self, trigger, publish_to=None):
        super().__init__(trigger)
        self.invocations = []
        self.publish_to = publish_to

    def iteration(self, ctx: InvocationContext) -> IterationResult:
        self.invocations.append(ctx.now)
        result = IterationResult()
        if self.publish_to:
            result.publish(self.publish_to, ctx.index, data_time=ctx.now)
        return result


def _scheduler(platform: Platform = DESKTOP, cpu_time=0.001, gpu_time=0.0):
    engine = Engine()
    switchboard = Switchboard()
    logger = RecordLogger()
    timing = FixedCostTiming(platform, cpu_time, gpu_time)
    scheduler = Scheduler(engine, platform, timing, switchboard, logger, app_name="sponza")
    return engine, switchboard, logger, scheduler


def test_periodic_plugin_runs_at_rate():
    engine, _sb, logger, scheduler = _scheduler(cpu_time=0.001)
    plugin = CountingPlugin(Periodic(0.01))
    scheduler.add_plugin(plugin)
    engine.run(until=1.0)
    assert len(plugin.invocations) == pytest.approx(100, abs=1)
    assert logger.frame_rate("counter", 1.0) == pytest.approx(100, abs=1)


def test_periodic_plugin_drops_when_overrunning():
    # 15 ms work on a 10 ms period: every other tick is dropped.
    engine, _sb, logger, scheduler = _scheduler(cpu_time=0.015)
    plugin = CountingPlugin(Periodic(0.01))
    scheduler.add_plugin(plugin)
    engine.run(until=1.0)
    assert logger.frame_rate("counter", 1.0) == pytest.approx(50, abs=2)
    assert logger.drop_count("counter") > 40
    assert logger.miss_rate("counter") > 0.9


def test_outputs_published_at_completion_time():
    engine, switchboard, _lg, scheduler = _scheduler(cpu_time=0.004)
    plugin = CountingPlugin(Periodic(0.01), publish_to="out")
    scheduler.add_plugin(plugin)
    engine.run(until=0.05)
    events = list(switchboard.topic("out").history())
    assert events[0].publish_time == pytest.approx(0.004)
    assert events[0].data_time == pytest.approx(0.0)


def test_on_topic_plugin_triggered_by_publish():
    engine, switchboard, _lg, scheduler = _scheduler(cpu_time=0.001)
    producer = CountingPlugin(Periodic(0.02), publish_to="stream")
    consumer = CountingPlugin(OnTopic("stream"))
    consumer.name = "consumer"
    scheduler.add_plugin(producer)
    scheduler.add_plugin(consumer)
    engine.run(until=0.5)
    assert len(consumer.invocations) == pytest.approx(len(producer.invocations), abs=1)


def test_on_topic_busy_consumer_drops():
    engine, switchboard, logger, scheduler = _scheduler(cpu_time=0.05)

    class DoublePublisher(CountingPlugin):
        """Publishes two events per invocation: the second always finds
        the consumer busy, so it must be dropped."""

        def iteration(self, ctx):
            result = super().iteration(ctx)
            result.publish("stream", -ctx.index, data_time=ctx.now)
            return result

    producer = DoublePublisher(Periodic(0.2), publish_to="stream")
    producer.name = "producer"
    consumer = CountingPlugin(OnTopic("stream"))
    consumer.name = "consumer"
    scheduler.add_plugin(producer)
    scheduler.add_plugin(consumer)
    engine.run(until=1.0)
    assert logger.drop_count("consumer") > 0
    assert len(consumer.invocations) > 0


def test_vsync_plugin_aligns_to_vsync():
    engine, switchboard, logger, scheduler = _scheduler(cpu_time=0.002)
    period = 1 / 120
    plugin = CountingPlugin(OnVsync(period, lead=0.004), publish_to="display")
    scheduler.add_plugin(plugin)
    engine.run(until=0.5)
    # Starts lead seconds before each vsync.
    first_start = plugin.invocations[0]
    assert first_start == pytest.approx(period - 0.004)
    # Outputs are released exactly on vsync boundaries.
    for event in switchboard.topic("display").history():
        remainder = event.publish_time % period
        assert min(remainder, period - remainder) < 1e-9


def test_vsync_plugin_slips_when_too_slow():
    engine, _sb, logger, scheduler = _scheduler(cpu_time=0.012)  # > 8.33 ms
    period = 1 / 120
    plugin = CountingPlugin(OnVsync(period, lead=0.007))
    scheduler.add_plugin(plugin)
    engine.run(until=1.0)
    # Runs at roughly half rate and misses every deadline.
    assert logger.frame_rate("counter", 1.0) < 70
    assert logger.miss_rate("counter") == 1.0


def test_skipped_iteration_charges_nothing():
    engine, _sb, logger, scheduler = _scheduler(cpu_time=0.001)

    class SkippingPlugin(Plugin):
        name = "skipper"
        component = "camera"

        def iteration(self, ctx):
            return IterationResult(skipped=True)

    scheduler.add_plugin(SkippingPlugin(Periodic(0.01)))
    engine.run(until=0.5)
    assert logger.for_plugin("skipper") == []
    assert scheduler.cpu.busy_time() == 0.0


def test_cpu_contention_serializes_on_one_core():
    single_core = Platform(
        key="desktop", name="d", cpu_description="", gpu_description="",
        cpu_cores=1, cpu_freq_ghz=3.0, gpu_concurrency=1,
        gpu_priority_contexts=True, cpu_scale=1.0, gpu_scale=1.0, approximates="",
    )
    engine, _sb, logger, scheduler = _scheduler(single_core, cpu_time=0.006)
    a = CountingPlugin(Periodic(0.01))
    a.name = "a"
    b = CountingPlugin(Periodic(0.01))
    b.name = "b"
    scheduler.add_plugin(a)
    scheduler.add_plugin(b)
    engine.run(until=1.0)
    # 2 x 6 ms of work per 10 ms period cannot fit one core: wall times
    # inflate beyond the pure cpu time for the queued plugin.
    mean_wall = max(logger.mean_execution_time("a"), logger.mean_execution_time("b"))
    assert mean_wall > 0.008


def test_gpu_quantum_on_jetson_scales_with_cost():
    engine, _sb, logger, scheduler = _scheduler(JETSON_LP, cpu_time=0.001, gpu_time=0.05)
    plugin = CountingPlugin(Periodic(0.1))
    plugin.uses_gpu = True
    scheduler.add_plugin(plugin)
    engine.run(until=0.5)
    assert scheduler.gpu.busy_time() > 0.1


def test_on_complete_hook_invoked():
    engine, _sb, _lg, scheduler = _scheduler(cpu_time=0.002)
    completions = []

    class Hooked(CountingPlugin):
        def on_complete(self, info):
            completions.append((info.start, info.end, info.swap_time))

    plugin = Hooked(Periodic(0.01))
    scheduler.add_plugin(plugin)
    engine.run(until=0.1)
    assert len(completions) >= 9
    start, end, swap = completions[0]
    assert end - start == pytest.approx(0.002)
    assert swap == end  # non-vsync plugins release immediately


def test_unknown_trigger_type_rejected():
    engine, _sb, _lg, scheduler = _scheduler()
    plugin = CountingPlugin(Periodic(0.01))
    plugin.trigger = "not a trigger"
    with pytest.raises(TypeError):
        scheduler.add_plugin(plugin)


def test_utilization_reporting():
    engine, _sb, _lg, scheduler = _scheduler(cpu_time=0.005)
    scheduler.add_plugin(CountingPlugin(Periodic(0.01)))
    engine.run(until=1.0)
    utilization = scheduler.utilization()
    assert 0.0 < utilization["cpu"] < 1.0
    assert utilization["gpu"] == 0.0
