"""Tests for the keyframe database and loop-closure behaviour (§IV-B1)."""

import numpy as np
import pytest

from repro.maths.quaternion import quat_from_axis_angle
from repro.maths.se3 import Pose
from repro.perception.reconstruction.keyframes import (
    KeyframeDatabase,
    depth_signature,
)
from repro.perception.reconstruction.pipeline import ReconstructionPipeline
from repro.sensors.depth import DepthCamera, DepthScene


@pytest.fixture(scope="module")
def camera():
    return DepthCamera(DepthScene.default(), width=48, height=36, noise_std=0.0)


def _orbit_pose(i, n):
    # Off-center: a square room viewed from its center aliases 90-degree
    # rotations onto near-identical depth signatures.
    yaw = 2 * np.pi * i / n
    return Pose(
        np.array([1.0, 0.5, 1.5]),
        quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), yaw),
        timestamp=i * 0.2,
    )


def test_signature_linear_in_depth(camera):
    """Fixed-reference normalization: scaling the scene scales the
    signature (absolute depth is intentionally preserved -- see the
    perceptual-aliasing note in keyframes.py)."""
    depth = camera.render(_orbit_pose(0, 40), noisy=False)
    near = depth_signature(depth)
    far = depth_signature(depth * 1.5)
    assert np.allclose(far, 1.5 * near, atol=1e-9)


def test_signature_differs_across_views(camera):
    a = depth_signature(camera.render(_orbit_pose(0, 40), noisy=False))
    b = depth_signature(camera.render(_orbit_pose(5, 40), noisy=False))
    assert np.abs(a - b).mean() > 0.06


def test_signature_validation():
    with pytest.raises(ValueError):
        depth_signature(np.ones((10, 10)), grid=1)


def test_database_matches_revisited_view(camera):
    database = KeyframeDatabase(every_n_frames=2, min_separation=10)
    matches = []
    n = 40
    for i in range(n + 8):  # go past a full orbit: revisit the start
        depth = camera.render(_orbit_pose(i, n), noisy=False)
        match, _ = database.observe(depth, _orbit_pose(i, n))
        if match is not None:
            matches.append((i, match.index))
    assert matches, "revisiting the start view must trigger a match"
    first_i, matched_index = matches[0]
    assert first_i >= n - 2                   # fires on the revisit
    assert first_i - matched_index >= 10      # against an old keyframe


def test_database_respects_cooldown(camera):
    database = KeyframeDatabase(every_n_frames=2, min_separation=10, cooldown=10)
    fires = []
    n = 40
    for i in range(n + 20):
        depth = camera.render(_orbit_pose(i, n), noisy=False)
        match, _ = database.observe(depth, _orbit_pose(i, n))
        if match is not None:
            fires.append(i)
    for a, b in zip(fires, fires[1:]):
        assert b - a > 10


def test_database_no_match_on_first_pass(camera):
    database = KeyframeDatabase(every_n_frames=2, min_separation=10)
    for i in range(30):
        depth = camera.render(_orbit_pose(i, 40), noisy=False)
        match, _ = database.observe(depth, _orbit_pose(i, 40))
        assert match is None  # nothing revisited yet


@pytest.mark.slow
def test_pipeline_loop_closure_causes_time_spike(camera):
    """The §IV-B1 observation: loop-closure frames cost several times the
    median frame."""
    pipeline = ReconstructionPipeline(camera)
    n = 40
    times, closure_times = [], []
    for i in range(n + 8):
        pose = _orbit_pose(i, n)
        result = pipeline.process_frame(camera.render(pose, noisy=False), pose)
        (closure_times if result.loop_closure else times).append(result.frame_time_s)
    assert pipeline.loop_closures >= 1
    assert closure_times
    # The spike factor shrank when TSDF fusion gained frustum culling (the
    # re-integration surcharge is exactly the accelerated kernel), so the
    # bound is 2x: closure frames must still clearly dominate the median.
    assert min(closure_times) > 2 * np.median(times)


@pytest.mark.slow
def test_pipeline_loop_closure_can_be_disabled(camera):
    pipeline = ReconstructionPipeline(camera, enable_loop_closure=False)
    n = 40
    for i in range(n + 8):
        pose = _orbit_pose(i, n)
        result = pipeline.process_frame(camera.render(pose, noisy=False), pose)
        assert not result.loop_closure
    assert pipeline.loop_closures == 0
