"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Engine, Interrupt, SimulationError


def test_timeout_advances_clock():
    engine = Engine()
    log = []

    def process(eng):
        yield eng.timeout(1.5)
        log.append(eng.now)

    engine.process(process(engine))
    engine.run()
    assert log == [1.5]


def test_timeouts_fire_in_time_order():
    engine = Engine()
    log = []

    def waiter(eng, delay, tag):
        yield eng.timeout(delay)
        log.append(tag)

    engine.process(waiter(engine, 3.0, "c"))
    engine.process(waiter(engine, 1.0, "a"))
    engine.process(waiter(engine, 2.0, "b"))
    engine.run()
    assert log == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    engine = Engine()
    log = []

    def waiter(eng, tag):
        yield eng.timeout(1.0)
        log.append(tag)

    for tag in "abc":
        engine.process(waiter(engine, tag))
    engine.run()
    assert log == ["a", "b", "c"]


def test_negative_timeout_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        engine.timeout(-0.1)


def test_run_until_stops_clock_exactly():
    engine = Engine()

    def ticker(eng):
        while True:
            yield eng.timeout(1.0)

    engine.process(ticker(engine))
    engine.run(until=3.5)
    assert engine.now == 3.5


def test_run_until_in_past_rejected():
    engine = Engine()
    engine.run(until=2.0)
    with pytest.raises(SimulationError):
        engine.run(until=1.0)


def test_run_with_empty_queue_sets_time():
    engine = Engine()
    engine.run(until=7.0)
    assert engine.now == 7.0


def test_event_succeed_delivers_value():
    engine = Engine()
    event = engine.event()
    got = []

    def consumer(eng):
        value = yield event
        got.append(value)

    def producer(eng):
        yield eng.timeout(2.0)
        event.succeed("payload")

    engine.process(consumer(engine))
    engine.process(producer(engine))
    engine.run()
    assert got == ["payload"]


def test_event_fail_raises_in_waiter():
    engine = Engine()
    event = engine.event()
    caught = []

    def consumer(eng):
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    def producer(eng):
        yield eng.timeout(1.0)
        event.fail(RuntimeError("boom"))

    engine.process(consumer(engine))
    engine.process(producer(engine))
    engine.run()
    assert caught == ["boom"]


def test_event_fail_requires_exception():
    engine = Engine()
    with pytest.raises(TypeError):
        engine.event().fail("not an exception")


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = engine.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_waiting_on_already_processed_event_resumes_immediately():
    engine = Engine()
    event = engine.event()
    event.succeed("early")
    engine.run()
    got = []

    def late_consumer(eng):
        value = yield event
        got.append((eng.now, value))

    engine.process(late_consumer(engine))
    engine.run()
    assert got == [(engine.now, "early")]


def test_process_completion_is_waitable():
    engine = Engine()
    log = []

    def child(eng):
        yield eng.timeout(2.0)
        return "done"

    def parent(eng):
        result = yield eng.process(child(eng))
        log.append((eng.now, result))

    engine.process(parent(engine))
    engine.run()
    assert log == [(2.0, "done")]


def test_process_exception_propagates_to_waiter():
    engine = Engine()
    caught = []

    def child(eng):
        yield eng.timeout(1.0)
        raise ValueError("child died")

    def parent(eng):
        try:
            yield eng.process(child(eng))
        except ValueError as exc:
            caught.append(str(exc))

    engine.process(parent(engine))
    engine.run()
    assert caught == ["child died"]


def test_unwaited_process_exception_raises_at_run():
    engine = Engine()

    def child(eng):
        yield eng.timeout(1.0)
        raise ValueError("unhandled")

    engine.process(child(engine))
    with pytest.raises(ValueError):
        engine.run()


def test_process_yielding_non_waitable_is_error():
    engine = Engine()

    def bad(eng):
        yield 42

    engine.process(bad(engine))
    with pytest.raises(SimulationError):
        engine.run()


def test_interrupt_raises_inside_process():
    engine = Engine()
    log = []

    def sleeper(eng):
        try:
            yield eng.timeout(100.0)
        except Interrupt as interrupt:
            log.append((eng.now, interrupt.cause))

    proc = engine.process(sleeper(engine))

    def interrupter(eng):
        yield eng.timeout(2.0)
        proc.interrupt("wakeup")

    engine.process(interrupter(engine))
    engine.run()
    assert log == [(2.0, "wakeup")]


def test_interrupt_dead_process_rejected():
    engine = Engine()

    def quick(eng):
        yield eng.timeout(0.5)

    proc = engine.process(quick(engine))
    engine.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_all_of_waits_for_every_waitable():
    engine = Engine()
    log = []

    def waiter(eng):
        timeouts = [eng.timeout(d) for d in (1.0, 3.0, 2.0)]
        yield eng.all_of(timeouts)
        log.append(eng.now)

    engine.process(waiter(engine))
    engine.run()
    assert log == [3.0]


def test_all_of_empty_completes_immediately():
    engine = Engine()
    log = []

    def waiter(eng):
        yield eng.all_of([])
        log.append(eng.now)

    engine.process(waiter(engine))
    engine.run()
    assert log == [0.0]


def test_is_alive_lifecycle():
    engine = Engine()

    def proc(eng):
        yield eng.timeout(1.0)

    process = engine.process(proc(engine))
    assert process.is_alive
    engine.run()
    assert not process.is_alive


def test_nested_processes_share_clock():
    engine = Engine()
    times = []

    def grandchild(eng):
        yield eng.timeout(1.0)
        times.append(("gc", eng.now))

    def child(eng):
        yield eng.process(grandchild(eng))
        yield eng.timeout(1.0)
        times.append(("c", eng.now))

    def parent(eng):
        yield eng.process(child(eng))
        times.append(("p", eng.now))

    engine.process(parent(engine))
    engine.run()
    assert times == [("gc", 1.0), ("c", 2.0), ("p", 2.0)]
