"""Unit tests for the offline dataset (record/replay)."""

import numpy as np
import pytest

from repro.sensors.dataset import make_vicon_room_dataset


def test_dataset_rates(small_dataset):
    duration = 6.0
    assert len(small_dataset.camera_frames) == pytest.approx(duration * 15, abs=1)
    assert len(small_dataset.imu_samples) == pytest.approx(duration * 500, abs=2)


def test_imu_between_windows(small_dataset):
    window = small_dataset.imu_between(1.0, 1.1)
    assert len(window) == pytest.approx(50, abs=1)
    assert all(1.0 < s.timestamp <= 1.1 for s in window)


def test_imu_between_empty_window(small_dataset):
    assert small_dataset.imu_between(2.0, 2.0) == []


def test_frames_between(small_dataset):
    frames = small_dataset.frames_between(0.0, 1.0)
    assert len(frames) == pytest.approx(15, abs=1)
    assert all(0.0 < f.timestamp <= 1.0 for f in frames)


def test_ground_truth_matches_trajectory(small_dataset):
    pose = small_dataset.ground_truth(2.5)
    sample = small_dataset.trajectory.sample(2.5)
    assert np.allclose(pose.position, sample.position)
    assert pose.timestamp == 2.5


def test_dataset_deterministic():
    a = make_vicon_room_dataset(duration=2.0, seed=7)
    b = make_vicon_room_dataset(duration=2.0, seed=7)
    frame_a = a.camera_frames[10]
    frame_b = b.camera_frames[10]
    assert frame_a.observations == frame_b.observations


def test_dataset_exposure_knob():
    noisy = make_vicon_room_dataset(duration=1.0, seed=1, exposure_ms=0.25)
    assert noisy.camera.pixel_noise > make_vicon_room_dataset(
        duration=1.0, seed=1, exposure_ms=4.0
    ).camera.pixel_noise


def test_dataset_duration_property(small_dataset):
    assert small_dataset.duration >= 6.0
