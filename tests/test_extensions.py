"""Tests for the paper's documented extensions: offloading (§II fn. 2),
trace record/replay (§V.G), pose prediction (fn. 3), exposure sweep
(§V.C), the extended plugins, and the analysis CLI."""

import os

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.runtime import build_runtime
from repro.hardware.platform import DESKTOP, JETSON_LP
from repro.plugins.offload import (
    NetworkLink,
    OffloadedVioPlugin,
    build_offloaded_runtime,
)


# ---------------------------------------------------------------------------
# Offloading
# ---------------------------------------------------------------------------


def test_network_link_times_scale_with_payload():
    link = NetworkLink(latency_s=0.005, uplink_bps=1e6, jitter_s=0.0)
    rng = np.random.default_rng(0)
    small = link.uplink_time(1000, rng)
    large = link.uplink_time(100_000, rng)
    assert large > small
    assert small == pytest.approx(0.005 + 8e-3, rel=0.01)


def test_network_link_validation():
    with pytest.raises(ValueError):
        NetworkLink(latency_s=-1.0)
    with pytest.raises(ValueError):
        NetworkLink(uplink_bps=0.0)


@pytest.fixture(scope="module")
def offloaded_run():
    config = SystemConfig(duration_s=3.0, fidelity="full", seed=0)
    runtime = build_offloaded_runtime(JETSON_LP, DESKTOP, "platformer", config)
    result = runtime.run()
    plugin = next(p for p in runtime.plugins if isinstance(p, OffloadedVioPlugin))
    return result, plugin


def test_offloaded_vio_restores_camera_rate(offloaded_run):
    result, plugin = offloaded_run
    # Local Jetson-LP VIO drops frames; offloaded keeps camera rate.
    assert result.frame_rate("vio") > 14.0
    assert len(plugin.round_trips) > 30


def test_offloaded_vio_frees_local_cpu(offloaded_run):
    result, _plugin = offloaded_run
    assert result.cpu_share().get("vio", 1.0) < 0.1


def test_offloaded_round_trip_includes_all_legs(offloaded_run):
    _result, plugin = offloaded_run
    rtt = np.mean(plugin.round_trips)
    # Two 4 ms legs + desktop VIO (~12 ms) plus transfer time.
    assert 0.015 < rtt < 0.05


def test_offloaded_estimates_still_track_truth(offloaded_run):
    result, _plugin = offloaded_run
    errors = [
        est.pose.translation_error(result.ground_truth(est.timestamp))
        for _, est in result.vio_trajectory
    ]
    assert np.mean(errors) < 0.1


def test_high_latency_link_degrades_vio_rate():
    config = SystemConfig(duration_s=2.0, fidelity="full", seed=0)
    slow = NetworkLink(latency_s=0.040)
    runtime = build_offloaded_runtime(JETSON_LP, DESKTOP, "platformer", config, link=slow)
    result = runtime.run()
    # Round trip > camera period: every other frame is dropped.
    assert result.frame_rate("vio") < 10.0


# ---------------------------------------------------------------------------
# Trace record / replay
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def recorded_trace():
    from repro.analysis.trace import TraceRecorder

    config = SystemConfig(duration_s=1.0, fidelity="full", seed=3)
    runtime = build_runtime(DESKTOP, "ar_demo", config)
    recorder = TraceRecorder(runtime.switchboard, ["camera", "imu"])
    runtime.run()
    return recorder.trace


def test_trace_records_all_topics(recorded_trace):
    counts = recorded_trace.counts()
    assert counts["imu"] == pytest.approx(500, abs=5)
    assert counts["camera"] == pytest.approx(15, abs=1)
    assert recorded_trace.duration <= 1.01


def test_trace_events_ordered(recorded_trace):
    times = [e.publish_time for e in recorded_trace.events]
    assert times == sorted(times)


def test_trace_save_load_roundtrip(recorded_trace, tmp_path):
    from repro.analysis.trace import Trace

    path = os.path.join(tmp_path, "sensors.trace")
    recorded_trace.save(path)
    loaded = Trace.load(path)
    assert loaded.counts() == recorded_trace.counts()
    assert loaded.events[0].topic == recorded_trace.events[0].topic


def test_trace_load_rejects_garbage(tmp_path):
    import pickle

    from repro.analysis.trace import Trace

    path = os.path.join(tmp_path, "junk.trace")
    with open(path, "wb") as handle:
        pickle.dump({"not": "a trace"}, handle)
    with pytest.raises(TypeError):
        Trace.load(path)


def test_trace_replay_drives_consumer(recorded_trace):
    """Replay the recorded camera+IMU into a fresh switchboard and count
    what a consumer sees -- the rosbag-style component-driving flow."""
    from repro.analysis.trace import install_replay
    from repro.core.switchboard import Switchboard
    from repro.sim.engine import Engine

    engine = Engine()
    switchboard = Switchboard()
    seen = {"camera": 0, "imu": 0}
    switchboard.topic("camera").subscribe_callback(
        lambda e: seen.__setitem__("camera", seen["camera"] + 1)
    )
    switchboard.topic("imu").subscribe_callback(
        lambda e: seen.__setitem__("imu", seen["imu"] + 1)
    )
    install_replay(engine, switchboard, recorded_trace)
    engine.run()
    assert seen == recorded_trace.counts()
    assert engine.now == pytest.approx(recorded_trace.duration)


def test_trace_recorder_requires_topics():
    from repro.analysis.trace import TraceRecorder
    from repro.core.switchboard import Switchboard

    with pytest.raises(ValueError):
        TraceRecorder(Switchboard(), [])


def test_trace_replay_reproduces_vio():
    """Driving the real VIO from a trace gives the same estimates as the
    original run (determinism of the record/replay path)."""
    from repro.analysis.trace import TraceRecorder, install_replay
    from repro.core.switchboard import Switchboard
    from repro.perception.vio.msckf import Msckf, MsckfConfig
    from repro.sensors.dataset import make_vicon_room_dataset
    from repro.sim.engine import Engine

    dataset = make_vicon_room_dataset(duration=2.0, seed=4)

    def run_vio(camera_events, imu_events):
        vio = Msckf(
            MsckfConfig.standard(),
            dataset.camera.intrinsics,
            dataset.camera.baseline_m,
            dataset.ground_truth(0.0),
            initial_velocity=dataset.trajectory.sample(0.0).velocity,
        )
        estimates = []
        imu_iter = iter(imu_events)
        pending = next(imu_iter, None)
        for frame in camera_events:
            while pending is not None and pending.timestamp <= frame.timestamp:
                if pending.timestamp > vio.state.timestamp:
                    vio.process_imu(pending)
                pending = next(imu_iter, None)
            estimates.append(vio.process_frame(frame))
        return estimates

    direct = run_vio(dataset.camera_frames, dataset.imu_samples)

    # Record the dataset through a switchboard, then replay it.
    from repro.analysis.trace import Trace, TraceEvent

    trace = Trace(topics=("camera", "imu"))
    for sample in dataset.imu_samples:
        trace.events.append(TraceEvent("imu", sample.timestamp, sample.timestamp, sample))
    for frame in dataset.camera_frames:
        trace.events.append(TraceEvent("camera", frame.timestamp, frame.timestamp, frame))
    trace.events.sort(key=lambda e: e.publish_time)

    engine = Engine()
    switchboard = Switchboard()
    replayed_frames, replayed_imu = [], []
    switchboard.topic("camera").subscribe_callback(lambda e: replayed_frames.append(e.data))
    switchboard.topic("imu").subscribe_callback(lambda e: replayed_imu.append(e.data))
    install_replay(engine, switchboard, trace)
    engine.run()
    replayed = run_vio(replayed_frames, replayed_imu)

    assert len(direct) == len(replayed)
    for a, b in zip(direct[-3:], replayed[-3:]):
        assert a.pose.translation_error(b.pose) < 1e-12


# ---------------------------------------------------------------------------
# Pose prediction (footnote 3)
# ---------------------------------------------------------------------------


def _display_pose_error(result):
    errors = []
    for event in result.display_events:
        truth = result.ground_truth(event.submit_time)
        errors.append(event.warp_pose.rotation_error(truth))
    return float(np.mean(errors))


def test_pose_prediction_removes_staleness():
    """Model fidelity isolates staleness (poses are exact but stale):
    prediction should nearly eliminate the display-time pose error."""
    base = SystemConfig(duration_s=3.0, fidelity="model", seed=1)
    without = build_runtime(DESKTOP, "platformer", base).run()
    predicted = build_runtime(
        DESKTOP, "platformer", base.with_overrides(pose_prediction=True)
    ).run()
    assert _display_pose_error(predicted) < 0.1 * _display_pose_error(without)


def test_pose_prediction_full_fidelity_tradeoff():
    """With real (noisy) VIO poses, prediction trades a small translation
    gain against derivative noise in rotation -- the misprediction risk
    footnote 6 warns about.  Assert it at least does not explode."""
    base = SystemConfig(duration_s=2.0, fidelity="full", seed=1)
    without = build_runtime(DESKTOP, "platformer", base).run()
    predicted = build_runtime(
        DESKTOP, "platformer", base.with_overrides(pose_prediction=True)
    ).run()

    def translation_error(result):
        return float(np.mean([
            e.warp_pose.translation_error(result.ground_truth(e.submit_time))
            for e in result.display_events
        ]))

    assert translation_error(predicted) < 1.2 * translation_error(without)
    assert _display_pose_error(predicted) < 3 * _display_pose_error(without)


def test_pose_prediction_does_not_change_mtp_accounting():
    """Footnote 6: MTP does not account for prediction."""
    base = SystemConfig(duration_s=2.0, fidelity="full", seed=1)
    without = build_runtime(DESKTOP, "platformer", base).run().mtp_summary()
    predicted = build_runtime(
        DESKTOP, "platformer", base.with_overrides(pose_prediction=True)
    ).run().mtp_summary()
    assert predicted.mean_ms == pytest.approx(without.mean_ms, rel=0.05)


# ---------------------------------------------------------------------------
# §V.C exposure sweep
# ---------------------------------------------------------------------------


def test_exposure_sweep_tradeoff():
    from repro.analysis.experiments import camera_exposure_sweep

    points = camera_exposure_sweep(exposures_ms=(0.25, 4.0), duration_s=4.0)
    short, long = points
    assert short.sensor_power_w < long.sensor_power_w       # less power...
    assert short.pixel_noise_px > long.pixel_noise_px       # ...noisier pixels
    assert short.vio_ate_cm > long.vio_ate_cm               # ...worse tracking


def test_offload_comparison_structure():
    from repro.analysis.experiments import offload_comparison

    comparison = offload_comparison(duration_s=2.0)
    assert comparison.offloaded_vio_rate_hz >= comparison.local_vio_rate_hz
    assert comparison.offloaded_vio_cpu_share < comparison.local_vio_cpu_share
    assert comparison.mean_round_trip_ms > 5.0


# ---------------------------------------------------------------------------
# Analysis CLI
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_analysis_cli_static_tables_only(tmp_path, monkeypatch, capsys):
    """Exercise the CLI argument parsing + static-table path cheaply by
    running the full quick pipeline on a tiny grid via monkeypatching."""
    import repro.analysis.main as main_module

    def tiny_matrix(duration_s, fidelity, seed):
        from repro.analysis.experiments import run_matrix

        return run_matrix(
            duration_s=1.0, fidelity="full",
            platforms=["desktop", "jetson-hp", "jetson-lp"],
            apps=["sponza", "platformer"], seed=seed,
        )

    monkeypatch.setattr(main_module, "run_matrix", tiny_matrix)
    monkeypatch.setattr(
        main_module, "vio_accuracy_ablation",
        lambda duration_s: __import__("repro.analysis.experiments", fromlist=["x"]).vio_accuracy_ablation(duration_s=2.0),
    )
    out = os.path.join(tmp_path, "reports")
    code = main_module.main(["--quick", "--out", out])
    assert code == 0
    written = set(os.listdir(out))
    assert {"table1_requirements.txt", "fig3_framerates.txt", "table4_mtp.txt",
            "table5_image_quality.txt", "ablation_vio_params.txt"} <= written
