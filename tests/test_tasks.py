"""Tests for the per-task descriptor tables and the §V-B shared-primitive
analysis."""

import pytest

from repro.analysis.tasks import (
    TASK_DESCRIPTORS,
    descriptor,
    descriptors_for,
    shared_primitives,
)


def test_every_measured_task_has_a_descriptor():
    """The descriptor table must cover every task name the timed
    implementations emit (Tables VI/VII stay renderable in full)."""
    from repro.audio.encoding import AudioEncoder  # noqa: F401 - import check
    from repro.perception.reconstruction.pipeline import TASK_NAMES as RECON_TASKS
    from repro.perception.vio.msckf import TASK_NAMES as VIO_TASKS
    from repro.visual.hologram import TASK_NAMES as HOLOGRAM_TASKS

    expectations = {
        "vio": set(VIO_TASKS),
        "scene_reconstruction": set(RECON_TASKS),
        "hologram": set(HOLOGRAM_TASKS),
        "audio_encoding": {"normalization", "encoding", "summation"},
        "audio_playback": {"psychoacoustic_filter", "rotation", "zoom", "binauralization"},
        "timewarp": {"fbo", "opengl_state", "reprojection"},
        "eye_tracking": {"convolution", "batch_copy", "activation", "misc"},
    }
    for component, tasks in expectations.items():
        described = {d.task for d in descriptors_for(component)}
        assert tasks <= described, (component, tasks - described)


def test_descriptor_lookup():
    entry = descriptor("vio", "msckf_update")
    assert "QR nullspace projection" in entry.computation
    with pytest.raises(KeyError):
        descriptor("vio", "warp_drive")


def test_no_duplicate_rows():
    keys = [(d.component, d.task) for d in TASK_DESCRIPTORS]
    assert len(keys) == len(set(keys))


def test_shared_primitives_match_paper_claims():
    """§V-B names Cholesky (VIO + scene reconstruction) explicitly; FFT
    and GEMM are the other obvious cross-component blocks."""
    shared = shared_primitives()
    assert set(shared["Cholesky solve"]) == {"vio", "scene_reconstruction"}
    assert {"audio_playback", "hologram"} <= set(shared["FFT"])
    assert {"vio", "eye_tracking"} <= set(shared["GEMM"])


def test_shared_primitives_threshold():
    all_primitives = shared_primitives(min_components=1)
    multi = shared_primitives(min_components=2)
    assert set(multi) < set(all_primitives)
    strict = shared_primitives(min_components=3)
    assert set(strict) <= set(multi)


def test_render_includes_descriptor_columns():
    from repro.analysis.report import render_task_breakdown
    from repro.analysis.standalone import TaskBreakdown

    breakdown = TaskBreakdown(
        component="audio_encoding",
        task_seconds={"normalization": 0.1, "encoding": 0.8, "summation": 0.1},
        frames=10,
        mean_frame_ms=1.0,
        extras={},
    )
    text = render_task_breakdown(breakdown)
    assert "Memory pattern" in text
    assert "column-major" in text


def test_render_shared_primitives_report():
    from repro.analysis.report import render_shared_primitives

    text = render_shared_primitives()
    assert "Cholesky" in text and "vio" in text
