"""End-to-end chaos soak: 10 s of sim-time under each canned fault plan.

The system-level promise under test (the resilience counterpart of the
paper's §IV results): whatever a single misbehaving component does, the
runtime keeps the fast path alive and degrades *measurably* rather than
crashing -- MTP stays finite, the pose stream stays within 10% of
nominal, and the supervision report names what went wrong.
"""

import math

import pytest

pytestmark = pytest.mark.slow

DURATION = 10.0
# Nominal fast-path pose rate: one pose per IMU sample (Fig. 2 of the
# paper -- the integrator republishes on every IMU tick at 500 Hz).
NOMINAL_FAST_POSE_RATE = 500.0


@pytest.fixture(scope="module", params=["vio_crash_loop", "renderer_stall", "imu_dropout", "corrupted_camera"])
def soaked(request):
    """One 10 s full-fidelity desktop soak per canned plan (module-cached)."""
    from repro.core.config import SystemConfig
    from repro.core.runtime import build_runtime
    from repro.hardware.platform import DESKTOP
    from repro.resilience import CANNED_PLANS, SupervisorConfig

    plan = CANNED_PLANS[request.param](seed=3)
    config = SystemConfig(duration_s=DURATION, fidelity="full", seed=0)
    runtime = build_runtime(
        DESKTOP, "platformer", config, fault_plan=plan, supervision=SupervisorConfig()
    )
    # .run() completing at all asserts "no uncaught exception escapes a
    # supervised plugin" for every plan.
    result = runtime.run()
    return request.param, runtime, result


def test_soak_mtp_stays_finite(soaked):
    name, runtime, result = soaked
    mtp = result.mtp_summary()
    assert mtp.count > 0, f"{name}: no frames ever displayed"
    assert math.isfinite(mtp.p99_ms), f"{name}: MTP p99 not finite"
    assert math.isfinite(mtp.mean_ms)
    assert 0.0 < mtp.p99_ms < 100.0, f"{name}: p99 {mtp.p99_ms} ms out of range"


def test_soak_fast_path_stays_near_nominal(soaked):
    name, runtime, result = soaked
    rate = result.fast_pose_count / DURATION
    assert rate >= 0.9 * NOMINAL_FAST_POSE_RATE, (
        f"{name}: fast path at {rate:.0f} Hz < 90% of nominal "
        f"{NOMINAL_FAST_POSE_RATE:.0f} Hz"
    )


def test_soak_summary_reports_what_happened(soaked):
    name, runtime, result = soaked
    summary = result.summary()
    assert summary["faults_injected"] == len(runtime.fault_plan.log) > 0
    supervision = summary["supervision"]
    assert supervision is result.supervision
    # Plans that break a plugin must surface degradation events in the
    # summary; the pure-loss plan (imu_dropout) must NOT cry wolf.
    if name in ("vio_crash_loop", "renderer_stall"):
        assert supervision["degradations"], f"{name}: no degradation reported"
    if name == "imu_dropout":
        assert not supervision["quarantined"]
        assert supervision["event_counts"].get("crash", 0) == 0
    # The MTP degraded fraction is part of the summary either way.
    assert 0.0 <= summary["mtp_ms"]["degraded_fraction"] <= 1.0


def test_soak_injection_is_deterministic(soaked):
    # Same plan factory + seed against the same workload: the event-level
    # injection log replays bit-identically (acceptance criterion).
    name, runtime, result = soaked
    from repro.core.config import SystemConfig
    from repro.core.runtime import build_runtime
    from repro.hardware.platform import DESKTOP
    from repro.resilience import CANNED_PLANS, SupervisorConfig

    replay = CANNED_PLANS[name](seed=3)
    config = SystemConfig(duration_s=DURATION, fidelity="full", seed=0)
    build_runtime(
        DESKTOP, "platformer", config, fault_plan=replay, supervision=SupervisorConfig()
    ).run()
    assert list(replay.log) == list(runtime.fault_plan.log)
    assert replay.log, f"{name}: plan injected nothing in {DURATION} s"


def test_vio_crash_loop_degrades_to_imu_only(soaked):
    name, runtime, result = soaked
    if name != "vio_crash_loop":
        pytest.skip("vio_crash_loop-specific assertions")
    sup = runtime.supervisor
    # The crash loop must end in quarantine, not run forever.
    assert sup.is_quarantined("vio")
    assert sup.plugin_health("vio").state == "quarantined"
    # The degradation policy fired: the integrator announced IMU-only
    # fallback on the supervision topic and it shows up in the report.
    details = [e.detail for e in sup.events_of_kind("degraded")]
    assert any("imu-only fallback" in d for d in details)
    report = sup.report()
    assert any(
        "imu-only fallback" in d["detail"] for d in report["degradations"]
    )
    # VIO stopped publishing after quarantine but the fast path kept
    # producing poses for the rest of the run.
    quarantine_time = sup.plugin_health("vio").quarantined_at
    assert quarantine_time < DURATION / 2
    fast_pose = runtime.switchboard.topic("fast_pose")
    assert fast_pose.get_latest().publish_time > 0.98 * DURATION


def test_renderer_stall_covered_by_timewarp(soaked):
    name, runtime, result = soaked
    if name != "renderer_stall":
        pytest.skip("renderer_stall-specific assertions")
    # The watchdog reaped stalled application invocations...
    assert result.logger.kill_count("application") > 0
    # ...timewarp covered by re-reprojecting stale frames, and the MTP
    # summary accounts for those frames as degraded.
    timewarp = next(p for p in runtime.plugins if p.name == "timewarp")
    assert timewarp.stale_frame_count > 0
    assert result.mtp_summary().degraded_fraction > 0.0
    # Still displaying: the compositor never went down.
    assert result.frame_rate("timewarp") > 0.9 * 120.0
