"""Unit tests for the sensor substrate: trajectory, IMU, cameras, eye."""

import numpy as np
import pytest

from repro.maths.quaternion import quat_rotate
from repro.maths.se3 import Pose
from repro.sensors.camera import (
    CameraIntrinsics,
    LandmarkField,
    StereoCamera,
    ZED_MINI_BASELINE_M,
)
from repro.sensors.depth import BoxObject, DepthCamera, DepthScene, SphereObject
from repro.sensors.eye import EyeImageGenerator
from repro.sensors.imu import GRAVITY_W, ImuModel, ImuSample
from repro.sensors.trajectory import lab_walk_trajectory, vicon_room_trajectory


# ---------------------------------------------------------------------------
# Trajectories
# ---------------------------------------------------------------------------


def test_lab_walk_stays_in_room():
    trajectory = lab_walk_trajectory(duration=20.0, seed=0, room_half_extent=3.0)
    for t in np.linspace(0, 20, 80):
        position = trajectory.sample(t).position
        assert np.all(np.abs(position[:2]) <= 3.0 + 0.6)  # slight spline overshoot ok
        assert 1.3 <= position[2] <= 2.1


def test_lab_walk_speed_is_walking_pace():
    trajectory = lab_walk_trajectory(duration=20.0, seed=1)
    speeds = [np.linalg.norm(trajectory.sample(t).velocity) for t in np.linspace(1, 19, 50)]
    assert 0.05 < np.mean(speeds) < 2.5


def test_trajectories_deterministic_per_seed():
    a = lab_walk_trajectory(duration=10.0, seed=5).sample(3.0)
    b = lab_walk_trajectory(duration=10.0, seed=5).sample(3.0)
    c = lab_walk_trajectory(duration=10.0, seed=6).sample(3.0)
    assert np.allclose(a.position, b.position)
    assert not np.allclose(a.position, c.position)


def test_vicon_room_covers_more_ground():
    trajectory = vicon_room_trajectory(duration=20.0, seed=1)
    speeds = [np.linalg.norm(trajectory.sample(t).velocity) for t in np.linspace(1, 19, 50)]
    assert np.max(speeds) > 0.8


def test_trajectory_rejects_nonpositive_duration():
    with pytest.raises(ValueError):
        lab_walk_trajectory(duration=0.0)
    with pytest.raises(ValueError):
        vicon_room_trajectory(duration=-1.0)


# ---------------------------------------------------------------------------
# IMU
# ---------------------------------------------------------------------------


def _static_trajectory():
    """A trajectory that barely moves (for gravity checks)."""
    from repro.maths.splines import TrajectorySpline

    times = np.linspace(0.0, 10.0, 8)
    positions = np.tile([0.0, 0.0, 1.7], (8, 1)) + 1e-9 * np.random.default_rng(0).normal(size=(8, 3))
    eulers = np.zeros((8, 3))
    return TrajectorySpline(times, positions, eulers)


def test_imu_measures_gravity_at_rest():
    imu = ImuModel(_static_trajectory(), rate_hz=500.0, seed=0)
    samples = imu.sequence(1.0, 3.0)
    mean_accel = np.mean([s.accel for s in samples], axis=0)
    # Specific force at rest = -g in body frame = +9.81 up (plus bias).
    assert mean_accel[2] == pytest.approx(9.81, abs=0.15)
    assert np.all(np.abs(mean_accel[:2]) < 0.15)


def test_imu_gyro_zero_mean_at_rest():
    imu = ImuModel(_static_trajectory(), rate_hz=500.0, seed=1)
    samples = imu.sequence(0.0, 3.0)
    mean_gyro = np.mean([s.gyro for s in samples], axis=0)
    assert np.all(np.abs(mean_gyro) < 0.02)  # bias-dominated, small


def test_imu_sample_rate_and_timestamps():
    imu = ImuModel(_static_trajectory(), rate_hz=200.0, seed=0)
    samples = imu.sequence(0.0, 1.0)
    assert len(samples) == 200
    deltas = np.diff([s.timestamp for s in samples])
    assert np.allclose(deltas, 1 / 200)


def test_imu_noise_scales_with_density():
    from repro.sensors.imu import ImuNoise

    quiet = ImuModel(_static_trajectory(), seed=2, noise=ImuNoise(gyro_noise_density=1e-5))
    loud = ImuModel(_static_trajectory(), seed=2, noise=ImuNoise(gyro_noise_density=1e-3))
    std_quiet = np.std([s.gyro[0] for s in quiet.sequence(0, 1)])
    std_loud = np.std([s.gyro[0] for s in loud.sequence(0, 1)])
    assert std_loud > 10 * std_quiet


def test_imu_rejects_bad_rate_and_window():
    with pytest.raises(ValueError):
        ImuModel(_static_trajectory(), rate_hz=0.0)
    imu = ImuModel(_static_trajectory())
    with pytest.raises(ValueError):
        imu.sequence(2.0, 1.0)


def test_gravity_constant():
    assert GRAVITY_W[2] == -9.81


# ---------------------------------------------------------------------------
# Stereo camera
# ---------------------------------------------------------------------------


def test_intrinsics_project_center_point():
    intr = CameraIntrinsics()
    pixels, valid = intr.project(np.array([[0.0, 0.0, 2.0]]))
    assert valid[0]
    assert pixels[0] == pytest.approx([intr.cx, intr.cy])


def test_intrinsics_rejects_points_behind():
    intr = CameraIntrinsics()
    _pixels, valid = intr.project(np.array([[0.0, 0.0, -1.0]]))
    assert not valid[0]


def test_back_project_inverts_project():
    intr = CameraIntrinsics()
    point = np.array([[0.4, -0.2, 3.0]])
    pixels, valid = intr.project(point)
    assert valid[0]
    ray = intr.back_project(pixels[0])
    assert np.allclose(ray * 3.0, point[0], atol=1e-9)


def test_landmark_field_on_room_shell():
    field = LandmarkField(count=100, room_half_extent=4.0, room_height=3.0, seed=0)
    points = field.points
    on_wall = np.isclose(np.abs(points[:, 0]), 4.0) | np.isclose(np.abs(points[:, 1]), 4.0)
    on_ceiling = np.isclose(points[:, 2], 3.0)
    assert np.all(on_wall | on_ceiling)


def test_landmark_field_minimum_count():
    with pytest.raises(ValueError):
        LandmarkField(count=4)


def _camera(**kwargs):
    return StereoCamera(landmarks=LandmarkField(seed=3), seed=4, **kwargs)


def test_observation_disparity_sign():
    """The right eye sees every landmark at a smaller u (camera x shifts)."""
    camera = _camera()
    camera._rng = np.random.default_rng(0)
    frame = camera.observe(Pose(np.array([0.0, 0.0, 1.7])), timestamp=0.0)
    assert frame.feature_count > 10
    for u_l, _v_l, u_r, _v_r in frame.observations.values():
        assert u_l - u_r > -3 * camera.pixel_noise  # disparity >= 0 up to noise


def test_observation_matches_projection_of_known_landmark():
    camera = _camera(pixel_noise_at_1ms=1e-9)
    pose = Pose(np.array([0.0, 0.0, 1.7]))
    frame = camera.observe(pose, timestamp=0.0)
    feature_id, (u_l, v_l, _ur, _vr) = next(iter(frame.observations.items()))
    landmark = camera.landmark_position(feature_id)
    cam_pt = camera.world_to_camera(pose)[feature_id]
    expected_u = camera.intrinsics.fx * cam_pt[0] / cam_pt[2] + camera.intrinsics.cx
    expected_v = camera.intrinsics.fy * cam_pt[1] / cam_pt[2] + camera.intrinsics.cy
    assert (u_l, v_l) == pytest.approx((expected_u, expected_v), abs=1e-6)
    assert landmark is not None


def test_feature_budget_enforced():
    camera = _camera(max_features=12)
    frame = camera.observe(Pose(np.array([0.0, 0.0, 1.7])), timestamp=0.0)
    assert frame.feature_count <= 12


def test_exposure_noise_tradeoff():
    short = _camera(exposure_ms=0.25)
    long = _camera(exposure_ms=4.0)
    assert short.pixel_noise > long.pixel_noise
    assert short.sensor_power_w() < long.sensor_power_w()


def test_exposure_out_of_range():
    with pytest.raises(ValueError):
        _camera(exposure_ms=0.05)


def test_zed_baseline_constant():
    assert ZED_MINI_BASELINE_M == pytest.approx(0.063)


def test_landmark_position_out_of_range_is_none():
    camera = _camera()
    assert camera.landmark_position(10**6) is None


# ---------------------------------------------------------------------------
# Depth camera
# ---------------------------------------------------------------------------


def test_depth_camera_sees_room_walls():
    camera = DepthCamera(DepthScene(), width=32, height=24, noise_std=0.0)
    depth = camera.render(Pose(np.array([0.0, 0.0, 1.4])), noisy=False)
    assert depth.shape == (24, 32)
    valid = depth[depth > 0]
    assert len(valid) > 0.9 * depth.size
    assert np.all(valid < 10.0)


def test_depth_camera_sphere_closer_than_wall():
    scene = DepthScene(spheres=[SphereObject(center=np.array([1.5, 0.0, 1.4]), radius=0.4)])
    camera = DepthCamera(scene, width=32, height=24, noise_std=0.0)
    # Looking along +x from origin: sphere at 1.1 m, wall at 3.5 m.
    depth = camera.render(Pose(np.array([0.0, 0.0, 1.4])), noisy=False)
    center = depth[12, 16]
    assert center == pytest.approx(1.1, abs=0.05)


def test_depth_camera_box_intersection():
    scene = DepthScene(boxes=[BoxObject(minimum=np.array([1.0, -0.5, 0.8]),
                                        maximum=np.array([1.6, 0.5, 2.0]))])
    camera = DepthCamera(scene, width=32, height=24, noise_std=0.0)
    depth = camera.render(Pose(np.array([0.0, 0.0, 1.4])), noisy=False)
    assert depth[12, 16] == pytest.approx(1.0, abs=0.05)


def test_depth_noise_applied_when_requested():
    camera = DepthCamera(DepthScene.default(), width=32, height=24, noise_std=0.02)
    pose = Pose(np.array([0.0, 0.0, 1.4]))
    clean = camera.render(pose, noisy=False)
    noisy = camera.render(pose, noisy=True)
    assert not np.allclose(clean, noisy)


def test_depth_camera_rejects_tiny_images():
    with pytest.raises(ValueError):
        DepthCamera(DepthScene(), width=2, height=2)


# ---------------------------------------------------------------------------
# Eye images
# ---------------------------------------------------------------------------


def test_eye_sample_shapes_and_ranges():
    generator = EyeImageGenerator(seed=0)
    sample = generator.sample()
    assert sample.image.shape == (48, 64)
    assert sample.mask.shape == (48, 64)
    assert 0.0 <= sample.image.min() and sample.image.max() <= 1.0
    assert np.all(np.abs(sample.gaze) <= 1.0)


def test_eye_pupil_darker_than_sclera():
    generator = EyeImageGenerator(seed=1, noise_std=0.0)
    sample = generator.sample(gaze=(0.0, 0.0))
    pupil_mean = sample.image[sample.mask].mean()
    outside_mean = sample.image[~sample.mask].mean()
    assert pupil_mean < outside_mean - 0.2


def test_eye_gaze_moves_pupil():
    generator = EyeImageGenerator(seed=2, noise_std=0.0)
    left = generator.sample(gaze=(-0.8, 0.0))
    right = generator.sample(gaze=(0.8, 0.0))
    left_cx = np.nonzero(left.mask)[1].mean()
    right_cx = np.nonzero(right.mask)[1].mean()
    assert right_cx - left_cx > 10


def test_eye_gaze_out_of_range():
    with pytest.raises(ValueError):
        EyeImageGenerator(seed=0).sample(gaze=(2.0, 0.0))


def test_eye_batch():
    samples = EyeImageGenerator(seed=3).batch(5)
    assert len(samples) == 5
    with pytest.raises(ValueError):
        EyeImageGenerator(seed=3).batch(0)


# ---------------------------------------------------------------------------
# ImuSample dataclass
# ---------------------------------------------------------------------------


def test_imu_sample_coerces_arrays():
    sample = ImuSample(timestamp=1.0, gyro=[0.1, 0.2, 0.3], accel=[1.0, 2.0, 3.0])
    assert isinstance(sample.gyro, np.ndarray)
    assert quat_rotate(np.array([1.0, 0, 0, 0]), sample.accel) == pytest.approx([1.0, 2.0, 3.0])
