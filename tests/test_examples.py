"""Smoke tests: every example script runs end-to-end with small inputs.

Examples are part of the public API surface; these tests keep them from
rotting.  Each main() is invoked with tiny arguments via argv patching.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run_example(monkeypatch, capsys, name, argv):
    monkeypatch.setattr(sys, "argv", [name] + argv)
    path = os.path.join(EXAMPLES_DIR, name)
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "quickstart.py", ["platformer", "desktop", "2"])
    assert "Motion-to-photon latency" in out
    assert "vio" in out


@pytest.mark.slow
def test_platform_comparison(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "platform_comparison.py", ["ar_demo", "2"])
    assert "Jetson-LP" in out
    assert "Targets" in out


def test_openxr_app(monkeypatch, capsys, tmp_path):
    out = _run_example(monkeypatch, capsys, "openxr_app.py", [str(tmp_path)])
    assert "Timewarp improved SSIM by +" in out
    assert any(f.endswith(".ppm") for f in os.listdir(tmp_path))


def test_spatial_audio(monkeypatch, capsys, tmp_path):
    wav = os.path.join(tmp_path, "out.wav")
    out = _run_example(monkeypatch, capsys, "spatial_audio.py", ["1.5", wav])
    assert "stereo" in out
    assert os.path.exists(wav)
    # Valid RIFF/WAVE header.
    with open(wav, "rb") as handle:
        header = handle.read(12)
    assert header[:4] == b"RIFF" and header[8:12] == b"WAVE"


@pytest.mark.slow
def test_offload_vio(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "offload_vio.py", ["2"])
    assert "offloaded" in out
    assert "round trip" in out


@pytest.mark.slow
def test_full_xr_system(monkeypatch, capsys, tmp_path):
    ply = os.path.join(tmp_path, "map.ply")
    out = _run_example(monkeypatch, capsys, "full_xr_system.py", ["1.5", ply])
    assert "eye_tracking" in out
    assert "scene_reconstruction" in out


@pytest.mark.slow
def test_standalone_components_quick(monkeypatch, capsys):
    out = _run_example(monkeypatch, capsys, "standalone_components.py", ["--quick"])
    assert "Table VI" in out
    assert "cycle breakdown" in out
