"""Observability layer: tracing, metrics, export, and MTP attribution.

Covers the acceptance criteria of the causal-tracing work:

- traced integrated runs export valid Chrome trace JSON whose flow
  arrows link >= 95% of displayed frames back to an IMU sample;
- the trace-derived critical-path decomposition reproduces the online
  MTP metric per frame to 1e-6 s;
- supervisor lifecycle events are routed onto ``sys/observability``;
- every core hook is a None-check: untraced runs see no trace state;
- the profiler nests ``@profiled`` kernels as spans and survives
  ``parallel_map``.
"""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.runtime import build_runtime
from repro.hardware.platform import DESKTOP
from repro.obs import (
    MetricsRegistry,
    SpanLink,
    TraceContext,
    Tracer,
    chrome_trace,
    decomposition_summary,
    lineage_fraction,
    render_report,
    validate_chrome_trace,
)
from repro.perf import profile
from repro.perf.parallel import parallel_map
from repro.resilience import FaultPlan, SupervisorConfig


@pytest.fixture(scope="module")
def traced_run():
    """One short full-fidelity traced run shared by the e2e assertions."""
    config = SystemConfig(duration_s=2.0, fidelity="full", seed=0)
    runtime = build_runtime(DESKTOP, "sponza", config, observability=True)
    poses = []
    runtime.switchboard.topic("fast_pose").subscribe_callback(poses.append)
    result = runtime.run()
    return runtime, result, poses


# ---------------------------------------------------------------------------
# Tracer unit behaviour
# ---------------------------------------------------------------------------


def test_span_parenting_explicit_active_fresh():
    tracer = Tracer()
    root = tracer.start_span("root", track="a", kind="invocation")
    assert root.parent_id is None  # fresh trace
    with tracer.activate(root):
        child = tracer.start_span("child", track="a")
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id
    other = tracer.start_span("sibling", track="b", parent=root.context)
    assert other.parent_id == root.span_id
    fresh = tracer.start_span("fresh", track="c")
    assert fresh.trace_id != root.trace_id


def test_activation_stack_nesting_and_current():
    tracer = Tracer()
    assert tracer.current() is None
    with tracer.span("outer", track="t") as outer:
        assert tracer.current() is outer
        with tracer.span("inner", track="t") as inner:
            assert tracer.current() is inner
            assert inner.parent_id == outer.span_id
        assert tracer.current() is outer
    assert tracer.current() is None
    assert all(s.finished for s in tracer.spans)


def test_annotate_and_link_noop_outside_activation():
    tracer = Tracer()
    tracer.annotate(ignored=True)  # must not raise
    tracer.link(SpanLink("t", 0, 0.0, None, None))
    assert tracer.spans == []


def test_mark_is_instant_and_ancestry_walks_to_root():
    tracer = Tracer()
    mark = tracer.mark("crash", track="supervisor/vio")
    assert mark.duration == 0.0 and mark.finished
    a = tracer.start_span("a", track="x", kind="invocation")
    with tracer.activate(a):
        b = tracer.start_span("b", track="x")
        with tracer.activate(b):
            c = tracer.start_span("c", track="x")
    assert [s.name for s in tracer.ancestry(c)] == ["b", "a"]


def test_trace_context_child_of():
    parent = TraceContext(trace_id=7, span_id=3)
    child = parent.child_of()
    assert child.trace_id == 7 and child.parent_id == 3


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


def test_counter_labels_and_monotonicity():
    registry = MetricsRegistry()
    c = registry.counter("demo_total")
    c.inc(topic="imu")
    c.inc(2.0, topic="imu")
    c.inc(topic="camera")
    assert c.value(topic="imu") == 3.0
    assert c.total() == 4.0
    assert c.series() == {"topic=camera": 1.0, "topic=imu": 3.0}
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_high_water():
    g = MetricsRegistry().gauge("depth")
    g.set(3.0, topic="imu")
    g.set(1.0, topic="imu")
    assert g.value(topic="imu") == 1.0
    assert g.high_water(topic="imu") == 3.0


def test_histogram_quantiles_bracket_exact_percentiles():
    h = MetricsRegistry().histogram("lat_seconds", buckets=[b / 1000 for b in range(1, 101)])
    rng = np.random.default_rng(0)
    samples = rng.uniform(0.001, 0.09, size=2000)
    for s in samples:
        h.observe(float(s))
    # With 1 ms buckets the interpolated quantile is within one bucket
    # width of the exact percentile.
    for q in (0.5, 0.95, 0.99):
        exact = float(np.quantile(samples, q))
        assert h.quantile(q) == pytest.approx(exact, abs=1.5e-3)
    assert h.count() == 2000
    assert h.mean() == pytest.approx(float(samples.mean()), rel=1e-9)


def test_histogram_bucket_validation_and_overflow():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("bad", buckets=[2.0, 1.0])
    h = registry.histogram("ok_seconds", buckets=[1.0, 2.0])
    h.observe(99.0)  # overflow bucket
    assert h.quantile(1.0) == 99.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_registry_rejects_cross_type_name_collisions():
    registry = MetricsRegistry()
    registry.counter("thing_total")
    with pytest.raises(ValueError):
        registry.gauge("thing_total")
    with pytest.raises(ValueError):
        registry.histogram("thing_total", buckets=[1.0])
    # Re-registration with the same type is get-or-create.
    assert registry.counter("thing_total") is registry.counter("thing_total")
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("needs_buckets")


# ---------------------------------------------------------------------------
# End-to-end: traced integrated run
# ---------------------------------------------------------------------------


def test_events_carry_trace_contexts(traced_run):
    _, _, poses = traced_run
    assert poses, "expected fast_pose traffic"
    # Every pose published from inside an invocation span is stamped.
    assert all(isinstance(e.trace, TraceContext) for e in poses)


def test_invocation_spans_cover_every_logged_invocation(traced_run):
    runtime, result, _ = traced_run
    tracer = result.observability.tracer
    for plugin in ("imu", "camera", "vio", "integrator", "timewarp"):
        # A record is logged for every finished, non-skipped invocation;
        # an invocation still in flight when the engine stops leaves an
        # unfinished span and no record.
        spans = [
            s
            for s in tracer.by_track(plugin)
            if s.kind == "invocation" and s.finished and not s.attributes.get("skipped")
        ]
        records = result.logger.for_plugin(plugin)
        assert len(spans) == len(records)


def test_exported_chrome_trace_is_valid(traced_run):
    _, result, _ = traced_run
    payload = result.chrome_trace()
    assert validate_chrome_trace(payload) == []
    events = payload["traceEvents"]
    thread_names = {
        e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"imu", "vio", "integrator", "timewarp"} <= thread_names
    assert any(e["ph"] == "s" for e in events), "expected flow arrows"
    assert payload["otherData"]["clock"] == "simulated"


def test_lineage_links_at_least_95_percent_of_frames(traced_run):
    _, result, _ = traced_run
    frames = result.critical_paths()
    assert len(frames) == len(result.mtp_samples)
    assert lineage_fraction(frames) >= 0.95


def test_critical_path_matches_online_mtp_within_1e6(traced_run):
    _, result, _ = traced_run
    frames = result.critical_paths()
    online = {round(s.frame_time, 9): s for s in result.mtp_samples}
    assert len(frames) == len(online)
    for frame in frames:
        sample = online[round(frame.frame_time, 9)]
        assert frame.imu_age == pytest.approx(sample.imu_age, abs=1e-6)
        assert frame.reprojection == pytest.approx(sample.reprojection_time, abs=1e-6)
        assert frame.swap == pytest.approx(sample.swap_wait, abs=1e-6)
        assert frame.total == pytest.approx(sample.total, abs=1e-6)


def test_decomposition_summary_and_report(traced_run):
    _, result, _ = traced_run
    frames = result.critical_paths()
    summary = decomposition_summary(frames)
    assert summary["count"] == len(frames)
    segs = summary["segment_mean_ms"]
    assert summary["mean_ms"] == pytest.approx(
        segs["imu_age"] + segs["reprojection"] + segs["swap"], rel=1e-9
    )
    assert summary["slowest_edge"] in ("imu_age", "reprojection", "swap")
    text = render_report(frames)
    assert "Critical-path MTP attribution" in text
    assert render_report([]).startswith("critical path: no displayed frames")


def test_online_mtp_histogram_tracks_sample_percentiles(traced_run):
    _, result, _ = traced_run
    obs = result.observability
    totals = np.array([s.total for s in result.mtp_samples])
    percentiles = obs.mtp_percentiles()
    # Fixed-bucket estimation: within one bucket width of the exact value.
    assert percentiles["p50_ms"] == pytest.approx(float(np.quantile(totals, 0.5)) * 1e3, abs=2.5)
    assert percentiles["p99_ms"] == pytest.approx(float(np.quantile(totals, 0.99)) * 1e3, abs=5.0)


def test_scheduler_and_switchboard_metrics_populated(traced_run):
    _, result, _ = traced_run
    m = result.observability.metrics
    assert m.counter("switchboard_publishes_total").value(topic="imu") > 0
    assert m.counter("scheduler_invocations_total").value(plugin="timewarp") > 0
    snapshot = m.snapshot()
    assert "mtp_seconds" in snapshot["histograms"]
    assert result.summary()["observability"]["spans"] > 0


def test_kernel_spans_nest_inside_invocations():
    """@profiled kernels fire as kernel spans inside the active plugin span
    when profiling is enabled -- and stay span-free outside activations."""
    tracer = Tracer()
    profile.set_tracer(tracer)
    profile.enable_profiling(True)
    invocation = tracer.start_span("timewarp#0", track="timewarp", kind="invocation")
    with tracer.activate(invocation):
        profile_square(3)
    profile_square(4)  # outside any span: recorded, but no span emitted
    kernels = [s for s in tracer.spans if s.kind == "kernel"]
    assert len(kernels) == 1
    kernel = kernels[0]
    assert kernel.parent_id == invocation.span_id
    assert kernel.track == "timewarp"
    assert kernel.attributes["wall_s"] > 0
    assert kernel.duration == 0.0  # zero simulated time; wall_s carries cost
    assert profile.profile_summary()["obs_test.square"]["calls"] == 2


def test_traced_runtime_installs_profile_tracer():
    config = SystemConfig(duration_s=0.5, fidelity="model", seed=0)
    runtime = build_runtime(DESKTOP, "platformer", config, observability=True)
    assert profile._tracer is runtime.observability.tracer


# ---------------------------------------------------------------------------
# Zero overhead when off
# ---------------------------------------------------------------------------


def test_untraced_run_sees_no_trace_state():
    config = SystemConfig(duration_s=0.5, fidelity="model", seed=0)
    runtime = build_runtime(DESKTOP, "platformer", config)
    captured = {name: [] for name in ("imu", "fast_pose", "frame")}
    for name, log in captured.items():
        runtime.switchboard.topic(name).subscribe_callback(log.append)
    result = runtime.run()
    assert result.observability is None
    assert runtime.scheduler.obs is None
    assert all(p.obs is None for p in runtime.plugins)
    for name, log in captured.items():
        assert log, f"expected {name} traffic"
        assert all(e.trace is None for e in log)
    with pytest.raises(RuntimeError, match="observability"):
        result.chrome_trace()
    with pytest.raises(RuntimeError, match="observability"):
        result.critical_paths()
    assert "observability" not in result.summary()


# ---------------------------------------------------------------------------
# Supervisor lifecycle events on sys/observability (regression)
# ---------------------------------------------------------------------------


def test_supervisor_events_routed_to_sys_observability():
    # vio crashes on every invocation: each poison frame produces crash ->
    # retry -> crash -> dead_letter, and the sixth consecutive failure
    # quarantines the plugin.  All of it must appear on sys/observability.
    plan = FaultPlan(seed=0).crash("vio", rate=1.0)
    config = SystemConfig(duration_s=1.5, fidelity="model", seed=0)
    runtime = build_runtime(
        DESKTOP,
        "platformer",
        config,
        fault_plan=plan,
        supervision=SupervisorConfig(),
        observability=True,
    )
    seen = []
    runtime.switchboard.topic("sys/observability").subscribe_callback(
        lambda e: seen.append(e.data)
    )
    result = runtime.run()

    kinds = {event.kind for event in seen}
    assert {"crash", "retry", "dead_letter", "quarantine"} <= kinds
    # The ledger and the topic agree event-for-event.
    assert [e.kind for e in seen] == [e.kind for e in runtime.supervisor.events]

    obs = result.observability
    counter = obs.metrics.counter("supervisor_events_total")
    assert counter.value(kind="crash", plugin="vio") >= 1
    assert counter.value(kind="quarantine", plugin="vio") == 1
    # Each event also lands as an instant span on the supervisor lane.
    marks = [s for s in obs.tracer.by_track("supervisor/vio") if s.kind == "mark"]
    assert len(marks) == len(seen)
    # And the exported trace stays structurally valid under chaos.
    assert validate_chrome_trace(result.chrome_trace()) == []


def test_standalone_supervisor_works_without_switchboard():
    from repro.resilience import RuntimeSupervisor

    sup = RuntimeSupervisor(SupervisorConfig())
    assert sup.record_failure("vio", 0.1, RuntimeError("boom")) == "retry"
    sup.record_retry("vio", 0.1, delay=0.02)
    assert [e.kind for e in sup.events] == ["crash", "retry"]


# ---------------------------------------------------------------------------
# Profiler under parallel_map + test isolation (satellite)
# ---------------------------------------------------------------------------


def _square(x):
    return profile_square(x)


@profile.profiled("obs_test.square")
def profile_square(x):
    return x * x


def test_parallel_map_merges_worker_profile_records():
    profile.enable_profiling(True)
    profile.reset_profile()
    results = parallel_map(_square, list(range(10)), processes=2)
    assert results == [x * x for x in range(10)]
    summary = profile.profile_summary()
    assert summary["obs_test.square"]["calls"] == 10
    assert summary["obs_test.square"]["total_s"] > 0


def test_profiler_state_isolated_between_tests():
    # The autouse fixture must have cleared the previous test's registry
    # and restored the disabled default.
    assert not profile.profiling_enabled()
    assert profile.profile_summary() == {}


def test_determinism_same_seed_same_trace():
    config = SystemConfig(duration_s=1.0, fidelity="model", seed=3)

    def run_once():
        runtime = build_runtime(DESKTOP, "platformer", config, observability=True)
        result = runtime.run()
        return chrome_trace(result.observability.tracer)

    assert run_once() == run_once()
