"""Integration tests for the full MSCKF filter on the offline dataset."""

import numpy as np
import pytest

from repro.perception.vio.msckf import TASK_NAMES, Msckf, MsckfConfig
from repro.perception.vio.tracker import FeatureTracker, Track


def _run_filter(dataset, config=None, skip_frames=frozenset()):
    config = config or MsckfConfig.standard()
    vio = Msckf(
        config,
        dataset.camera.intrinsics,
        dataset.camera.baseline_m,
        dataset.ground_truth(0.0),
        initial_velocity=dataset.trajectory.sample(0.0).velocity,
    )
    t_last = 0.0
    errors = []
    for index, frame in enumerate(dataset.camera_frames):
        for sample in dataset.imu_between(t_last, frame.timestamp):
            vio.process_imu(sample)
        t_last = frame.timestamp
        if index in skip_frames:
            continue
        estimate = vio.process_frame(frame)
        errors.append(
            estimate.pose.translation_error(dataset.ground_truth(frame.timestamp))
        )
    return vio, np.asarray(errors)


def test_filter_converges_on_dataset(small_dataset):
    vio, errors = _run_filter(small_dataset)
    assert errors.mean() < 0.12
    assert errors.max() < 0.35
    # Error must not grow without bound: the last quarter is comparable
    # to the middle (no divergence).
    n = len(errors)
    assert errors[3 * n // 4 :].mean() < 4 * errors[n // 4 : n // 2].mean() + 0.05


def test_filter_window_bounded(small_dataset):
    vio, _ = _run_filter(small_dataset)
    assert len(vio.state.clones) <= MsckfConfig.standard().max_clones
    assert len(vio.state.landmarks) <= MsckfConfig.standard().max_slam_landmarks


def test_filter_covariance_stays_symmetric_psd(small_dataset):
    vio, _ = _run_filter(small_dataset)
    cov = vio.state.covariance
    assert np.allclose(cov, cov.T, atol=1e-9)
    eigenvalues = np.linalg.eigvalsh(cov)
    assert eigenvalues.min() > -1e-8


def test_task_breakdown_covers_all_rows(small_dataset):
    vio, _ = _run_filter(small_dataset)
    breakdown = vio.task_breakdown()
    assert set(breakdown) == set(TASK_NAMES)
    # Every task actually ran.
    for name in ("feature_matching", "feature_initialization", "msckf_update", "marginalization"):
        assert breakdown[name] > 0.0, name


def test_filter_tolerates_dropped_frames(small_dataset):
    skip = set(range(10, len(small_dataset.camera_frames), 4))
    _, errors = _run_filter(small_dataset, skip_frames=skip)
    assert errors.mean() < 0.2


def test_high_accuracy_preset_tracks_more_features(small_dataset):
    standard, _ = _run_filter(small_dataset, MsckfConfig.standard())
    high, _ = _run_filter(small_dataset, MsckfConfig.high_accuracy())
    assert high.tracker.max_features > standard.tracker.max_features


def test_config_validation():
    with pytest.raises(ValueError):
        MsckfConfig(max_clones=2)
    with pytest.raises(ValueError):
        MsckfConfig(max_clones=5, slam_promotion_length=9)


def test_estimate_fields(small_dataset):
    vio, _ = _run_filter(small_dataset)
    estimate = vio.estimate()
    assert estimate.position_sigma > 0
    assert estimate.tracked_features >= 0
    assert estimate.slam_landmarks == len(vio.state.landmarks)


# ---------------------------------------------------------------------------
# Tracker
# ---------------------------------------------------------------------------


def _frame(ids, timestamp=0.0):
    from repro.sensors.camera import CameraFrame

    return CameraFrame(
        timestamp=timestamp,
        observations={i: (100.0 + i, 100.0, 95.0 + i, 100.0) for i in ids},
    )


def test_tracker_match_extends_and_retires():
    tracker = FeatureTracker(max_features=10)
    tracker.detect(_frame([1, 2, 3]), clone_id=0)
    matched, lost = tracker.match(_frame([2, 3, 4]), clone_id=1)
    assert matched == 2
    assert [t.feature_id for t in lost] == [1]
    assert tracker.active[2].length == 2


def test_tracker_budget():
    tracker = FeatureTracker(max_features=5)
    detected = tracker.detect(_frame(range(20)), clone_id=0)
    assert detected == 5
    assert len(tracker.active) == 5


def test_tracker_exclusion():
    tracker = FeatureTracker(max_features=10)
    tracker.detect(_frame([1, 2, 3]), clone_id=0, exclude={2})
    assert 2 not in tracker.active


def test_tracker_drop_clone():
    tracker = FeatureTracker(max_features=10)
    tracker.detect(_frame([1]), clone_id=0)
    tracker.match(_frame([1]), clone_id=1)
    tracker.drop_clone(0)
    assert list(tracker.active[1].observations) == [1]


def test_tracker_minimum_budget():
    with pytest.raises(ValueError):
        FeatureTracker(max_features=2)


def test_track_add_and_drop():
    track = Track(feature_id=9)
    track.add(0, np.array([1.0, 2.0]), np.array([0.5, 2.0]))
    track.add(1, np.array([1.1, 2.1]), np.array([0.6, 2.1]))
    assert track.length == 2
    track.drop_clone(0)
    assert track.length == 1
    track.drop_clone(42)  # no-op
    assert track.length == 1


def test_tracker_process_frame_wrapper():
    tracker = FeatureTracker(max_features=10)
    report = tracker.process_frame(_frame([1, 2]), clone_id=0)
    assert report.detected == 2 and report.matched == 0 and report.lost == []
