"""Unit tests for the numpy CNN eye tracker (RITnet stand-in)."""

import numpy as np
import pytest

from repro.perception.eye_tracking import ConvLayer, EyeTracker, _im2col
from repro.sensors.eye import EyeImageGenerator


def test_im2col_shapes():
    x = np.random.default_rng(0).random((2, 3, 8, 10))
    cols = _im2col(x, kernel=3)
    assert cols.shape == (2, 8, 10, 27)


def test_conv_layer_forward_matches_scipy():
    from scipy.signal import correlate2d

    rng = np.random.default_rng(1)
    layer = ConvLayer.create(1, 1, 3, rng)
    x = rng.random((1, 1, 6, 7))
    out, _ = layer.forward(x)
    kernel = layer.weight.reshape(3, 3)
    expected = correlate2d(x[0, 0], kernel, mode="same") + layer.bias[0]
    assert np.allclose(out[0, 0], expected, atol=1e-10)


def test_conv_backward_matches_numeric_gradient():
    rng = np.random.default_rng(2)
    layer = ConvLayer.create(2, 3, 3, rng)
    x = rng.random((1, 2, 5, 5))
    out, cols = layer.forward(x)
    grad_out = rng.random(out.shape)
    _grad_x, grad_w, _grad_b = layer.backward(grad_out, cols, x.shape)

    eps = 1e-6
    i, j = 1, 7
    perturbed = ConvLayer(layer.weight.copy(), layer.bias.copy(), 3)
    perturbed.weight[i, j] += eps
    out2, _ = perturbed.forward(x)
    numeric = ((out2 - out) * grad_out).sum() / eps
    assert grad_w[i, j] == pytest.approx(numeric, rel=1e-4)


def test_conv_backward_input_gradient_numeric():
    rng = np.random.default_rng(3)
    layer = ConvLayer.create(1, 2, 3, rng)
    x = rng.random((1, 1, 5, 5))
    out, cols = layer.forward(x)
    grad_out = rng.random(out.shape)
    grad_x, _gw, _gb = layer.backward(grad_out, cols, x.shape)
    eps = 1e-6
    x2 = x.copy()
    x2[0, 0, 2, 3] += eps
    out2, _ = layer.forward(x2)
    numeric = ((out2 - out) * grad_out).sum() / eps
    assert grad_x[0, 0, 2, 3] == pytest.approx(numeric, rel=1e-4)


@pytest.fixture(scope="module")
def trained_tracker():
    tracker = EyeTracker(seed=1)
    tracker.train(EyeImageGenerator(seed=0), steps=80)
    return tracker


def test_training_reduces_loss():
    tracker = EyeTracker(seed=2)
    losses = tracker.train(EyeImageGenerator(seed=5), steps=60)
    assert losses[-1] < 0.4 * losses[0]
    assert tracker.trained


def test_trained_tracker_segments_pupil(trained_tracker):
    samples = EyeImageGenerator(seed=77).batch(10)
    metrics = trained_tracker.evaluate(samples)
    assert metrics["mean_iou"] > 0.6
    assert metrics["mean_gaze_error"] < 0.3


def test_predict_shapes_and_batch_of_two(trained_tracker):
    generator = EyeImageGenerator(seed=9)
    pair = np.stack([generator.sample().image, generator.sample().image])
    result = trained_tracker.predict(pair)
    assert result.masks.shape == (2, 48, 64)
    assert result.gaze.shape == (2, 2)
    assert result.probabilities.min() >= 0 and result.probabilities.max() <= 1


def test_predict_single_image_promoted_to_batch(trained_tracker):
    image = EyeImageGenerator(seed=10).sample().image
    result = trained_tracker.predict(image)
    assert result.masks.shape == (1, 48, 64)


def test_gaze_estimate_tracks_direction(trained_tracker):
    generator = EyeImageGenerator(seed=11, noise_std=0.0)
    left = generator.sample(gaze=(-0.7, 0.0))
    right = generator.sample(gaze=(0.7, 0.0))
    gaze_left = trained_tracker.predict(left.image).gaze[0, 0]
    gaze_right = trained_tracker.predict(right.image).gaze[0, 0]
    assert gaze_right > gaze_left + 0.5


def test_task_breakdown_rows(trained_tracker):
    trained_tracker.predict(EyeImageGenerator(seed=12).sample().image)
    breakdown = trained_tracker.task_breakdown()
    assert set(breakdown) == {"convolution", "batch_copy", "activation", "misc"}
    assert breakdown["convolution"] > 0


def test_weight_bytes_small():
    # RITnet is ~1 MB; our stand-in is deliberately tiny.
    assert EyeTracker(seed=0).weight_bytes() < 64 * 1024
