"""Unit tests for the OpenXR-style application interface."""

import numpy as np
import pytest

from repro.core.switchboard import Switchboard
from repro.maths.quaternion import quat_from_axis_angle
from repro.maths.se3 import Pose
from repro.openxr import Instance
from repro.openxr.api import CompositionLayer, XrError


@pytest.fixture
def session():
    switchboard = Switchboard()
    clock = {"now": 0.0}
    instance = Instance.create("test app")
    sess = instance.create_session(switchboard, now_fn=lambda: clock["now"])
    return sess, switchboard, clock


def _publish_pose(switchboard, t, position=(0.0, 0.0, 1.7), orientation=None):
    pose = Pose(np.array(position), orientation if orientation is not None else np.array([1.0, 0, 0, 0]),
                timestamp=t)
    switchboard.topic("fast_pose").put(t, pose, data_time=t)
    return pose


def test_instance_requires_name():
    with pytest.raises(XrError):
        Instance.create("")


def test_wait_frame_predicts_next_vsync(session):
    sess, _sb, clock = session
    clock["now"] = 0.01
    frame = sess.wait_frame()
    assert frame.predicted_display_time == pytest.approx(2 / 120)
    assert frame.predicted_display_period == pytest.approx(1 / 120)


def test_frame_loop_state_machine(session):
    sess, switchboard, _clock = session
    _publish_pose(switchboard, 0.0)
    frame = sess.wait_frame()
    sess.begin_frame()
    with pytest.raises(XrError):
        sess.begin_frame()  # double begin
    views = sess.locate_views(frame.predicted_display_time)
    sess.end_frame(frame, [CompositionLayer(pose=views[0].pose)])
    # end without begin
    with pytest.raises(XrError):
        sess.end_frame(frame, [])


def test_locate_views_returns_stereo_pair(session):
    sess, switchboard, _clock = session
    _publish_pose(switchboard, 0.0)
    views = sess.locate_views(0.0)
    assert [v.eye for v in views] == ["left", "right"]
    separation = np.linalg.norm(views[0].pose.position - views[1].pose.position)
    assert separation == pytest.approx(sess.ipd_m)


def test_locate_views_without_pose_uses_default(session):
    sess, _sb, _clock = session
    views = sess.locate_views(0.0)
    assert views[0].pose.position[2] == pytest.approx(1.7, abs=0.1)


def test_pose_prediction_extrapolates_rotation(session):
    sess, switchboard, _clock = session
    # Two poses rotating about z at 1 rad/s.
    _publish_pose(switchboard, 0.00)
    q = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), 0.01)
    switchboard.topic("fast_pose").put(0.01, Pose(np.array([0.0, 0.0, 1.7]), q, timestamp=0.01), data_time=0.01)
    views = sess.locate_views(display_time=0.03)  # 20 ms ahead
    from repro.maths.quaternion import quat_angle_between

    predicted_angle = quat_angle_between(np.array([1.0, 0, 0, 0]), views[0].pose.orientation)
    assert predicted_angle > 0.02  # beyond the last measured 0.01 rad


def test_end_frame_publishes_submitted_frame(session):
    sess, switchboard, clock = session
    pose = _publish_pose(switchboard, 0.0)
    clock["now"] = 0.001
    frame = sess.wait_frame()
    sess.begin_frame()
    sess.end_frame(frame, [CompositionLayer(pose=pose)])
    submitted = switchboard.topic("frame").get_latest()
    assert submitted is not None
    assert submitted.data.pose.translation_error(pose) == 0.0
    assert sess.frames_submitted == 1


def test_end_frame_with_no_layers_is_noop(session):
    sess, switchboard, _clock = session
    frame = sess.wait_frame()
    sess.begin_frame()
    sess.end_frame(frame, [])
    assert switchboard.topic("frame").get_latest() is None


def test_request_exit_stops_loop(session):
    sess, _sb, _clock = session
    sess.request_exit()
    assert not sess.running
    with pytest.raises(XrError):
        sess.wait_frame()


def test_invalid_display_rate():
    with pytest.raises(XrError):
        Instance.create("x").create_session(Switchboard(), display_rate_hz=0.0)
