"""Unit tests for the visual pipeline: scenes, renderer, reprojection,
distortion, holography."""

import numpy as np
import pytest

from repro.maths.quaternion import quat_from_axis_angle, quat_multiply
from repro.maths.se3 import Pose
from repro.visual.distortion import (
    DEFAULT_K1,
    DEFAULT_K2,
    apply_lens_correction,
    mesh_approximation_error,
    mesh_warp_coordinates,
    radial_warp_coordinates,
)
from repro.visual.hologram import WeightedGerchbergSaxton, focal_stack_from_frame
from repro.visual.renderer import RenderCamera, Renderer
from repro.visual.reprojection import (
    bilinear_sample,
    reprojection_artifact_mask,
    rotational_reproject,
    translational_reproject,
)
from repro.visual.scenes import APPLICATION_ORDER, APPLICATIONS, scene_by_name


CAMERA = RenderCamera(width=96, height=54)
POSE = Pose(np.array([0.0, 0.0, 1.7]))


@pytest.fixture(scope="module")
def sponza_frame():
    return Renderer(scene_by_name("sponza"), CAMERA).render(POSE)


# ---------------------------------------------------------------------------
# Scenes
# ---------------------------------------------------------------------------


def test_four_applications_registered():
    assert set(APPLICATION_ORDER) == set(APPLICATIONS)
    assert len(APPLICATIONS) == 4


def test_render_complexity_ordering():
    # Sponza > Materials > Platformer > AR Demo (§III-C).
    complexities = [APPLICATIONS[a].render_complexity for a in APPLICATION_ORDER]
    assert complexities == sorted(complexities, reverse=True)


def test_unknown_scene_raises():
    with pytest.raises(KeyError):
        scene_by_name("halflife3")


def test_ar_demo_is_see_through():
    assert not APPLICATIONS["ar_demo"].textured_room
    assert APPLICATIONS["sponza"].textured_room


# ---------------------------------------------------------------------------
# Renderer
# ---------------------------------------------------------------------------


def test_render_shapes_and_range(sponza_frame):
    assert sponza_frame.image.shape == (54, 96, 3)
    assert sponza_frame.depth.shape == (54, 96)
    assert sponza_frame.image.min() >= 0.0 and sponza_frame.image.max() <= 1.0


def test_render_deterministic():
    a = Renderer(scene_by_name("sponza"), CAMERA).render(POSE)
    b = Renderer(scene_by_name("sponza"), CAMERA).render(POSE)
    assert np.array_equal(a.image, b.image)


def test_render_depends_on_pose(sponza_frame):
    moved = Renderer(scene_by_name("sponza"), CAMERA).render(
        Pose(np.array([0.5, 0.3, 1.7]))
    )
    assert not np.allclose(moved.image, sponza_frame.image)


def test_ar_demo_mostly_black():
    frame = Renderer(scene_by_name("ar_demo"), CAMERA).render(POSE)
    assert (frame.image.sum(axis=-1) == 0).mean() > 0.5


def test_depth_positive_for_room_hits(sponza_frame):
    assert (sponza_frame.depth > 0).mean() > 0.95
    assert sponza_frame.depth.max() < 20.0


def test_view_complexity_in_bounds():
    renderer = Renderer(scene_by_name("sponza"), CAMERA)
    for yaw in np.linspace(0, 2 * np.pi, 8):
        pose = Pose(np.zeros(3) + [0, 0, 1.7], quat_from_axis_angle(np.array([0, 0, 1.0]), yaw))
        assert 0.4 <= renderer.view_complexity(pose) <= 2.5


def test_camera_validation():
    with pytest.raises(ValueError):
        RenderCamera(width=4, height=4)
    with pytest.raises(ValueError):
        RenderCamera(fov_deg=5.0)


def test_intrinsic_matrix_structure():
    k = CAMERA.intrinsic_matrix()
    assert k[0, 0] == k[1, 1] == pytest.approx(CAMERA.focal_px)
    assert k[0, 2] == pytest.approx(CAMERA.width / 2)


# ---------------------------------------------------------------------------
# Bilinear sampling + reprojection
# ---------------------------------------------------------------------------


def test_bilinear_exact_at_integer_coords():
    rng = np.random.default_rng(0)
    image = rng.random((8, 10))
    u, v = np.meshgrid(np.arange(10, dtype=float), np.arange(8, dtype=float))
    coords = np.stack([u, v], axis=-1)
    assert np.allclose(bilinear_sample(image, coords), image)


def test_bilinear_interpolates_midpoints():
    image = np.array([[0.0, 1.0]])
    value = bilinear_sample(image, np.array([[0.5, 0.0]]))
    assert value[0] == pytest.approx(0.5)


def test_bilinear_out_of_bounds_black():
    image = np.ones((4, 4))
    coords = np.array([[-1.0, 0.0], [5.0, 0.0], [0.0, -2.0]])
    assert np.allclose(bilinear_sample(image, coords), 0.0)


def test_rotational_identity_warp_is_exact(sponza_frame):
    k = CAMERA.intrinsic_matrix()
    warped = rotational_reproject(sponza_frame.image, k, POSE, POSE)
    assert np.allclose(warped, sponza_frame.image)


def test_rotational_warp_matches_rerender_for_pure_rotation(sponza_frame):
    """The defining property of TimeWarp: for a pure rotation the warped
    image equals a fresh render from the new pose (away from borders)."""
    k = CAMERA.intrinsic_matrix()
    turned = Pose(POSE.position, quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), 0.06))
    warped = rotational_reproject(sponza_frame.image, k, POSE, turned)
    rerendered = Renderer(scene_by_name("sponza"), CAMERA).render(turned).image
    interior = (slice(8, -8), slice(12, -12))
    error = np.abs(warped[interior] - rerendered[interior]).mean()
    assert error < 0.03


def test_translational_beats_rotational_under_translation(sponza_frame):
    k = CAMERA.intrinsic_matrix()
    moved = Pose(POSE.position + np.array([0.0, 0.25, 0.0]), POSE.orientation)
    rerendered = Renderer(scene_by_name("sponza"), CAMERA).render(moved).image
    rot = rotational_reproject(sponza_frame.image, k, POSE, moved)
    trans = translational_reproject(sponza_frame.image, sponza_frame.depth, k, POSE, moved)
    interior = (slice(8, -8), slice(12, -12))
    err_rot = np.abs(rot[interior] - rerendered[interior]).mean()
    err_trans = np.abs(trans[interior] - rerendered[interior]).mean()
    assert err_trans < err_rot


def test_translational_validation(sponza_frame):
    k = CAMERA.intrinsic_matrix()
    with pytest.raises(ValueError):
        translational_reproject(sponza_frame.image, sponza_frame.depth[:10], k, POSE, POSE)
    with pytest.raises(ValueError):
        translational_reproject(
            sponza_frame.image, sponza_frame.depth, k, POSE, POSE, iterations=0
        )


def test_artifact_mask_grows_with_rotation():
    k = CAMERA.intrinsic_matrix()
    small = reprojection_artifact_mask(
        k, (54, 96), POSE,
        Pose(POSE.position, quat_from_axis_angle(np.array([0, 0, 1.0]), 0.02)),
    )
    large = reprojection_artifact_mask(
        k, (54, 96), POSE,
        Pose(POSE.position, quat_from_axis_angle(np.array([0, 0, 1.0]), 0.2)),
    )
    assert large.mean() > small.mean()
    assert small.dtype == bool


# ---------------------------------------------------------------------------
# Distortion / chromatic aberration
# ---------------------------------------------------------------------------


def test_zero_coefficients_are_identity_warp():
    coords = radial_warp_coordinates(32, 24, 0.0, 0.0)
    u, v = np.meshgrid(np.arange(32, dtype=float), np.arange(24, dtype=float))
    assert np.allclose(coords[..., 0], u)
    assert np.allclose(coords[..., 1], v)


def test_image_center_is_fixed_point():
    coords = radial_warp_coordinates(33, 25, DEFAULT_K1, DEFAULT_K2)
    # Pixel nearest the center barely moves.
    assert np.allclose(coords[12, 16], [16, 12], atol=0.05)


def test_barrel_pulls_corners_inward():
    coords = radial_warp_coordinates(32, 24, -0.2, 0.0)
    # Source coordinate of the display corner lies inside the image corner
    # (toward the center) for a barrel pre-correction... the warp factor
    # < 1 maps display corners to interior source pixels.
    corner_source = coords[0, 0]
    assert corner_source[0] > 0 and corner_source[1] > 0


def test_mesh_matches_exact_to_subpixel():
    mean, maximum = mesh_approximation_error(96, 54, mesh_step=8)
    assert mean < 0.3
    assert maximum < 1.0


def test_finer_mesh_is_more_accurate():
    coarse_mean, _ = mesh_approximation_error(96, 54, mesh_step=24)
    fine_mean, _ = mesh_approximation_error(96, 54, mesh_step=6)
    assert fine_mean < coarse_mean


def test_mesh_step_validation():
    with pytest.raises(ValueError):
        mesh_warp_coordinates(32, 24, -0.1, 0.0, mesh_step=1)


def test_lens_correction_shifts_channels_differently(sponza_frame):
    corrected = apply_lens_correction(sponza_frame.image)
    assert corrected.shape == sponza_frame.image.shape
    red_shift = np.abs(corrected[..., 0] - sponza_frame.image[..., 0]).mean()
    assert red_shift > 0  # channels moved


def test_lens_correction_validation(sponza_frame):
    with pytest.raises(ValueError):
        apply_lens_correction(sponza_frame.image[..., 0])
    with pytest.raises(ValueError):
        apply_lens_correction(sponza_frame.image, chromatic_scales=(1.0, 1.0))


# ---------------------------------------------------------------------------
# Hologram (Weighted Gerchberg-Saxton)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def hologram_solver():
    return WeightedGerchbergSaxton(resolution=64, depths_m=(0.05, 0.12))


def _targets(solver, seed=0):
    rng = np.random.default_rng(seed)
    targets = []
    for _ in solver.depths_m:
        t = np.zeros((solver.resolution, solver.resolution))
        t[16:48, 16:48] = rng.random((32, 32)) > 0.6
        targets.append(t.astype(float))
    return targets


def test_wgs_converges_toward_targets(hologram_solver):
    targets = _targets(hologram_solver)
    few = hologram_solver.solve(targets, iterations=1, seed=0)
    many = hologram_solver.solve(targets, iterations=10, seed=0)
    assert many.efficiency > few.efficiency
    assert 0.0 < many.efficiency <= 1.0
    assert 0.0 <= many.uniformity <= 1.0


def test_wgs_uniformity_non_decreasing():
    """The point of the *weighted* GS variant: per-plane weighting drives
    inter-plane uniformity up across iterations.  Solved repeatedly with
    the same seed, the trajectory must never dip more than numerical
    jitter near convergence, and must improve overall."""
    solver = WeightedGerchbergSaxton(resolution=64, depths_m=(0.05, 0.12))
    targets = [np.zeros((64, 64)), np.zeros((64, 64))]
    targets[0][12:28, 12:28] = 1.0   # near-plane square
    targets[1][36:52, 36:52] = 1.0   # far-plane square, disjoint
    uniformities = [
        solver.solve(targets, iterations=k, seed=0).uniformity
        for k in range(1, 9)
    ]
    for earlier, later in zip(uniformities, uniformities[1:]):
        assert later >= earlier - 5e-3
    assert uniformities[-1] > uniformities[0]


def test_wgs_phase_output_range(hologram_solver):
    result = hologram_solver.solve(_targets(hologram_solver), iterations=2)
    assert result.phase.shape == (64, 64)
    assert result.phase.min() >= -np.pi and result.phase.max() <= np.pi


def test_wgs_task_times_cover_table_vii(hologram_solver):
    result = hologram_solver.solve(_targets(hologram_solver), iterations=2)
    assert set(result.task_times) == {"hologram_to_depth", "sum", "depth_to_hologram"}


def test_propagation_is_unitary(hologram_solver):
    rng = np.random.default_rng(3)
    field = np.exp(1j * rng.uniform(-np.pi, np.pi, (64, 64)))
    propagated = hologram_solver.propagate(field, hologram_solver.depths_m[0])
    # Angular-spectrum propagation conserves energy (no evanescent loss
    # for a propagating field at this sampling).
    energy_in = (np.abs(field) ** 2).sum()
    energy_out = (np.abs(propagated) ** 2).sum()
    assert energy_out <= energy_in + 1e-6
    assert energy_out > 0.5 * energy_in


def test_propagation_roundtrip(hologram_solver):
    rng = np.random.default_rng(4)
    field = np.exp(1j * rng.uniform(-np.pi, np.pi, (64, 64)))
    z = hologram_solver.depths_m[0]
    roundtrip = hologram_solver.propagate(
        hologram_solver.propagate(field, z, forward=True), z, forward=False
    )
    # Forward then backward is identity on the propagating subspace.
    assert np.abs(roundtrip - field).mean() < 0.2


def test_wgs_validation():
    with pytest.raises(ValueError):
        WeightedGerchbergSaxton(resolution=100)  # not a power of two
    with pytest.raises(ValueError):
        WeightedGerchbergSaxton(resolution=64, depths_m=())
    solver = WeightedGerchbergSaxton(resolution=64, depths_m=(0.05,))
    with pytest.raises(ValueError):
        solver.solve([np.zeros((32, 32))])  # wrong target shape
    with pytest.raises(ValueError):
        solver.solve([np.zeros((64, 64)), np.zeros((64, 64))])  # wrong count


def test_focal_stack_partitions_luminance(sponza_frame):
    depths = (0.05, 0.1, 0.2)
    stack = focal_stack_from_frame(sponza_frame.image, sponza_frame.depth, depths, 64)
    assert len(stack) == 3
    for target in stack:
        assert target.shape == (64, 64)
        assert target.min() >= 0.0
    # Every bright pixel lands in exactly one plane.
    coverage = sum((t > 0).astype(int) for t in stack)
    assert coverage.max() <= 1
