"""Unit + property tests for the audio pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio.ambisonics import (
    ambisonic_channels,
    decode_matrix,
    encode_block,
    fibonacci_directions,
    real_sh_matrix,
)
from repro.audio.encoding import AudioEncoder
from repro.audio.hrtf import (
    HrtfSet,
    head_shadow_gain,
    interaural_delay,
)
from repro.audio.playback import AudioPlayback
from repro.audio.rotation import rotate_soundfield, sh_rotation_matrix, zoom_soundfield
from repro.audio.sources import MusicLikeSource, SpeechLikeSource
from repro.maths.quaternion import quat_from_axis_angle, quat_to_matrix
from repro.maths.se3 import Pose

directions = st.tuples(
    st.floats(-1, 1, allow_nan=False),
    st.floats(-1, 1, allow_nan=False),
    st.floats(-1, 1, allow_nan=False),
).map(np.array).filter(lambda v: np.linalg.norm(v) > 0.15)


# ---------------------------------------------------------------------------
# Spherical harmonics
# ---------------------------------------------------------------------------


def test_channel_counts():
    assert [ambisonic_channels(o) for o in range(4)] == [1, 4, 9, 16]
    with pytest.raises(ValueError):
        ambisonic_channels(-1)


def test_sh_matrix_shape_and_order_limit():
    y = real_sh_matrix(3, np.array([[1.0, 0.0, 0.0]]))
    assert y.shape == (1, 16)
    with pytest.raises(ValueError):
        real_sh_matrix(4, np.array([1.0, 0.0, 0.0]))


def test_sh_orthonormality_n3d():
    """N3D real SH integrate to 4*pi*I over the sphere (Monte Carlo)."""
    rng = np.random.default_rng(0)
    n = 40000
    points = rng.normal(size=(n, 3))
    points /= np.linalg.norm(points, axis=1, keepdims=True)
    y = real_sh_matrix(3, points)
    gram = (y.T @ y) / n  # E[Y_i Y_j]; N3D => identity
    assert np.allclose(gram, np.eye(16), atol=0.05)


def test_sh_zero_direction_rejected():
    with pytest.raises(ValueError):
        real_sh_matrix(1, np.zeros(3))


def test_encode_block_is_outer_product():
    signal = np.array([1.0, -0.5, 0.25])
    direction = np.array([0.0, 1.0, 0.0])
    encoded = encode_block(signal, direction, order=1)
    assert encoded.shape == (4, 3)
    gains = real_sh_matrix(1, direction)[0]
    assert np.allclose(encoded, np.outer(gains, signal))


def test_encode_requires_mono():
    with pytest.raises(ValueError):
        encode_block(np.zeros((2, 10)), np.array([1.0, 0, 0]), order=1)


def test_decode_matrix_reconstructs_plane_wave():
    speakers = fibonacci_directions(16)
    decoder = decode_matrix(3, speakers)
    # Encoding from a speaker direction should decode loudest at that
    # speaker.
    y = real_sh_matrix(3, speakers[3])[0]
    gains = decoder @ y
    assert np.argmax(gains) == 3


def test_fibonacci_directions_unit_and_spread():
    points = fibonacci_directions(32)
    assert np.allclose(np.linalg.norm(points, axis=1), 1.0)
    assert points[:, 2].min() < -0.8 and points[:, 2].max() > 0.8
    with pytest.raises(ValueError):
        fibonacci_directions(2)


# ---------------------------------------------------------------------------
# SH rotation
# ---------------------------------------------------------------------------


def test_rotation_identity():
    m = sh_rotation_matrix(3, np.eye(3))
    assert np.allclose(m, np.eye(16), atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(directions, st.floats(-3.0, 3.0, allow_nan=False))
def test_rotation_consistent_with_direction_rotation(axis, angle):
    rotation = quat_to_matrix(quat_from_axis_angle(axis, angle))
    m = sh_rotation_matrix(3, rotation)
    direction = np.array([0.3, -0.5, 0.81])
    lhs = real_sh_matrix(3, rotation @ direction)[0]
    rhs = m @ real_sh_matrix(3, direction)[0]
    assert np.allclose(lhs, rhs, atol=1e-8)


def test_rotation_matrix_orthogonal():
    rotation = quat_to_matrix(quat_from_axis_angle(np.array([1.0, 2.0, 0.5]), 1.1))
    m = sh_rotation_matrix(3, rotation)
    assert np.allclose(m @ m.T, np.eye(16), atol=1e-9)


def test_rotation_composition():
    a = quat_to_matrix(quat_from_axis_angle(np.array([0, 0, 1.0]), 0.6))
    b = quat_to_matrix(quat_from_axis_angle(np.array([1.0, 0, 0]), -0.4))
    composed = sh_rotation_matrix(3, a @ b)
    product = sh_rotation_matrix(3, a) @ sh_rotation_matrix(3, b)
    assert np.allclose(composed, product, atol=1e-9)


def test_rotation_block_diagonal():
    rotation = quat_to_matrix(quat_from_axis_angle(np.array([0, 1.0, 0]), 0.8))
    m = sh_rotation_matrix(2, rotation)
    # Degree-0 x degree-1 cross block must be zero.
    assert np.allclose(m[0, 1:], 0.0)
    assert np.allclose(m[1:4, 4:], 0.0)


def test_rotation_validation():
    with pytest.raises(ValueError):
        sh_rotation_matrix(2, np.eye(4))


def test_rotate_soundfield_channel_check():
    with pytest.raises(ValueError):
        rotate_soundfield(np.zeros((9, 16)), order=3, rotation=np.eye(3))


def test_zoom_preserves_energy_roughly():
    rng = np.random.default_rng(1)
    soundfield = rng.normal(size=(16, 256))
    zoomed = zoom_soundfield(soundfield, 0.5)
    assert zoomed.shape == soundfield.shape
    ratio = (zoomed**2).sum() / (soundfield**2).sum()
    assert 0.5 < ratio < 2.0


def test_zoom_identity_at_zero():
    soundfield = np.random.default_rng(2).normal(size=(16, 64))
    assert np.allclose(zoom_soundfield(soundfield, 0.0), soundfield)


def test_zoom_validation():
    with pytest.raises(ValueError):
        zoom_soundfield(np.zeros((16, 8)), 1.5)
    with pytest.raises(ValueError):
        zoom_soundfield(np.zeros((1, 8)), 0.5)


# ---------------------------------------------------------------------------
# HRTF / binauralization
# ---------------------------------------------------------------------------


def test_itd_signs():
    left_ear = np.array([0.0, 1.0, 0.0])
    # Source at the left: shorter path to the left ear.
    assert interaural_delay(np.array([0.0, 1.0, 0.0]), left_ear) < 0
    # Source at the right: creeping wave, longer delay to the left ear.
    assert interaural_delay(np.array([0.0, -1.0, 0.0]), left_ear) > 0
    # Frontal source: equal-ish.
    assert abs(interaural_delay(np.array([1.0, 0.0, 0.0]), left_ear)) < 1e-9


def test_itd_magnitude_physical():
    left_ear = np.array([0.0, 1.0, 0.0])
    delay = interaural_delay(np.array([0.0, -1.0, 0.0]), left_ear) - interaural_delay(
        np.array([0.0, 1.0, 0.0]), left_ear
    )
    assert 0.4e-3 < delay < 1.0e-3  # human ITD ~0.6-0.9 ms (Woodworth)


def test_head_shadow_attenuates_contralateral_highs():
    left_ear = np.array([0.0, 1.0, 0.0])
    freqs = np.array([500.0, 8000.0])
    ipsi = head_shadow_gain(np.array([0.0, 1.0, 0.0]), left_ear, freqs)
    contra = head_shadow_gain(np.array([0.0, -1.0, 0.0]), left_ear, freqs)
    assert contra[1] < ipsi[1]
    assert contra[1] < contra[0]  # highs shadowed more than lows


def test_binauralize_lateral_source_louder_on_near_ear():
    # Broadband noise: single tones are phase-interference lotteries when
    # summed over delayed virtual speakers.
    hrtf = HrtfSet(n_speakers=16, fft_size=2048)
    rng = np.random.default_rng(0)
    signal = rng.normal(size=512)
    left_source = encode_block(signal, np.array([0.0, 1.0, 0.0]), order=3)
    stereo, _tail = hrtf.binauralize_block(left_source)
    rms = np.sqrt((stereo**2).mean(axis=1))
    assert rms[0] > 1.2 * rms[1]
    right_source = encode_block(signal, np.array([0.0, -1.0, 0.0]), order=3)
    stereo_r, _ = hrtf.binauralize_block(right_source)
    rms_r = np.sqrt((stereo_r**2).mean(axis=1))
    assert rms_r[1] > 1.2 * rms_r[0]


def test_binauralize_overlap_add_continuity():
    """Streaming block-by-block must equal one long convolution: verify the
    tail carry produces no seams (energy at block boundaries)."""
    hrtf = HrtfSet(n_speakers=8, fft_size=2048)
    rng = np.random.default_rng(5)
    block = 512
    signal = rng.normal(size=3 * block)
    direction = np.array([0.5, 0.5, 0.0])
    # Streamed.
    tail = None
    streamed = []
    for i in range(3):
        sf = encode_block(signal[i * block : (i + 1) * block], direction, order=3)
        out, tail = hrtf.binauralize_block(sf, tail)
        streamed.append(out)
    streamed = np.concatenate(streamed, axis=1)
    # One shot (big block in one FFT): process with fresh HRTF of larger fft.
    big = HrtfSet(n_speakers=8, fft_size=8192)
    sf_all = encode_block(signal, direction, order=3)
    oneshot, _ = big.binauralize_block(sf_all)
    # Compare overlapping region (ignore group-delay edge effects).
    seg = slice(block, 2 * block)
    err = np.abs(streamed[:, seg] - oneshot[:, seg]).max()
    scale = np.abs(oneshot[:, seg]).max()
    assert err < 0.05 * scale


def test_binauralize_validation():
    hrtf = HrtfSet(n_speakers=8, fft_size=2048)
    with pytest.raises(ValueError):
        hrtf.binauralize_block(np.zeros((9, 64)))
    with pytest.raises(ValueError):
        hrtf.binauralize_block(np.zeros((16, 2000)))
    with pytest.raises(ValueError):
        HrtfSet(fft_size=1000)


# ---------------------------------------------------------------------------
# Encoder / playback components
# ---------------------------------------------------------------------------


def test_sources_are_deterministic_int16():
    a = SpeechLikeSource(seed=1).block(256)
    b = SpeechLikeSource(seed=1).block(256)
    assert a.dtype == np.int16
    assert np.array_equal(a, b)
    m = MusicLikeSource(seed=1).block(256)
    assert m.dtype == np.int16 and np.abs(m).max() > 1000


def test_encoder_produces_hoa_block():
    encoder = AudioEncoder([SpeechLikeSource(), MusicLikeSource()], order=3, block_size=512)
    soundfield = encoder.encode_next_block()
    assert soundfield.shape == (16, 512)
    assert np.abs(soundfield).max() > 0


def test_encoder_task_breakdown_rows():
    encoder = AudioEncoder([SpeechLikeSource()], block_size=256)
    encoder.encode_next_block()
    breakdown = encoder.task_breakdown()
    assert set(breakdown) == {"normalization", "encoding", "summation"}
    assert breakdown["encoding"] > 0


def test_encoder_validation():
    with pytest.raises(ValueError):
        AudioEncoder([], block_size=512)
    with pytest.raises(ValueError):
        AudioEncoder([SpeechLikeSource()], block_size=100)


def test_playback_renders_stereo_and_tracks_tasks():
    playback = AudioPlayback(block_size=512)
    encoder = AudioEncoder([SpeechLikeSource()], block_size=512)
    stereo = playback.render_block(encoder.encode_next_block(), Pose(np.zeros(3)))
    assert stereo.shape == (2, 512)
    tasks = playback.task_breakdown()
    assert set(tasks) == {"psychoacoustic_filter", "rotation", "zoom", "binauralization"}
    assert all(v > 0 for v in tasks.values())


def test_playback_rotation_changes_output():
    encoder = AudioEncoder([SpeechLikeSource()], block_size=512)
    soundfield = encoder.encode_next_block()
    forward = AudioPlayback(block_size=512).render_block(soundfield, Pose(np.zeros(3)))
    turned_pose = Pose(np.zeros(3), quat_from_axis_angle(np.array([0, 0, 1.0]), np.pi / 2))
    turned = AudioPlayback(block_size=512).render_block(soundfield, turned_pose)
    assert not np.allclose(forward, turned)


def test_playback_shape_validation():
    playback = AudioPlayback(block_size=512)
    with pytest.raises(ValueError):
        playback.render_block(np.zeros((16, 256)), Pose(np.zeros(3)))
