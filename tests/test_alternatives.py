"""Tests for the alternative implementations and auxiliary outputs:
EKF-SLAM VIO (Table II's second VIO slot), surfel extraction, and the
temporal / audio quality metrics."""

import os

import numpy as np
import pytest

from repro.maths.se3 import Pose
from repro.perception.vio.ekf_slam import TASK_NAMES as EKF_TASKS
from repro.perception.vio.ekf_slam import EkfSlamVio
from repro.perception.vio.msckf import Msckf, MsckfConfig


def _run(filter_class, dataset, **kwargs):
    vio = filter_class(
        MsckfConfig.standard(),
        dataset.camera.intrinsics,
        dataset.camera.baseline_m,
        dataset.ground_truth(0.0),
        initial_velocity=dataset.trajectory.sample(0.0).velocity,
        **kwargs,
    )
    t_last = 0.0
    errors = []
    for frame in dataset.camera_frames:
        for sample in dataset.imu_between(t_last, frame.timestamp):
            vio.process_imu(sample)
        t_last = frame.timestamp
        estimate = vio.process_frame(frame)
        errors.append(estimate.pose.translation_error(dataset.ground_truth(frame.timestamp)))
    return vio, np.asarray(errors)


# ---------------------------------------------------------------------------
# EKF-SLAM VIO
# ---------------------------------------------------------------------------


def test_ekf_slam_converges(small_dataset):
    vio, errors = _run(EkfSlamVio, small_dataset)
    assert errors.mean() < 0.15
    assert errors.max() < 0.5
    assert len(vio.state.landmarks) > 5


def test_ekf_slam_same_interface_as_msckf(small_dataset):
    """The two implementations are drop-in interchangeable (Table II)."""
    ekf, _ = _run(EkfSlamVio, small_dataset)
    msckf, _ = _run(Msckf, small_dataset)
    for attribute in ("process_imu", "process_frame", "estimate", "task_breakdown"):
        assert hasattr(ekf, attribute) and hasattr(msckf, attribute)
    assert type(ekf.estimate()) is type(msckf.estimate())


def test_ekf_slam_no_clone_window(small_dataset):
    """Structural difference: the EKF-SLAM carries no persistent clones."""
    ekf, _ = _run(EkfSlamVio, small_dataset)
    assert len(ekf.state.clones) == 0
    assert len(ekf.state.landmarks) > 0


def test_ekf_slam_task_breakdown(small_dataset):
    ekf, _ = _run(EkfSlamVio, small_dataset)
    breakdown = ekf.task_breakdown()
    assert set(breakdown) == set(EKF_TASKS)
    assert breakdown["slam_update"] > 0
    assert breakdown["landmark_initialization"] > 0


def test_ekf_slam_in_vio_plugin(small_dataset):
    """The VIO plugin accepts the alternative filter (modularity claim)."""
    from repro.core.config import SystemConfig
    from repro.core.runtime import Runtime, build_runtime
    from repro.hardware.platform import DESKTOP
    from repro.plugins.perception import VioPlugin

    config = SystemConfig(duration_s=2.0, fidelity="full", seed=0)
    base = build_runtime(DESKTOP, "ar_demo", config)
    for plugin in base.plugins:
        if isinstance(plugin, VioPlugin):
            camera, trajectory = plugin.camera, plugin.trajectory

    class EkfVioPlugin(VioPlugin):
        def _ensure_filter(self, now):
            if self.filter is None:
                truth = self.trajectory.sample(now)
                self.filter = EkfSlamVio(
                    self.msckf_config,
                    self.camera.intrinsics,
                    self.camera.baseline_m,
                    Pose(truth.position, truth.orientation, timestamp=now),
                    initial_velocity=truth.velocity,
                )
            return self.filter

    plugins = [
        EkfVioPlugin(config, camera, trajectory) if isinstance(p, VioPlugin) else p
        for p in base.plugins
    ]
    runtime = Runtime(base.platform, config, "ar_demo", plugins, base.trajectory,
                      timing=base.timing)
    result = runtime.run()
    assert result.frame_rate("vio") > 13
    errors = [
        est.pose.translation_error(result.ground_truth(est.timestamp))
        for _, est in result.vio_trajectory
    ]
    assert np.mean(errors) < 0.15


# ---------------------------------------------------------------------------
# Surfel extraction
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fused_volume_and_camera():
    from repro.perception.reconstruction.tsdf import TsdfVolume
    from repro.sensors.depth import DepthCamera, DepthScene

    camera = DepthCamera(DepthScene.default(seed=3), width=48, height=36, noise_std=0.0)
    volume = TsdfVolume(resolution=64)
    for yaw in (0.0, 1.5, 3.0, 4.5):
        from repro.maths.quaternion import quat_from_axis_angle

        pose = Pose(
            np.array([0.0, 0.0, 1.5]),
            quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), yaw),
        )
        volume.integrate(camera.render(pose, noisy=False), pose, camera)
    return volume, camera


def test_surfel_extraction_nonempty(fused_volume_and_camera):
    from repro.perception.reconstruction.surface import extract_surfels

    volume, _camera = fused_volume_and_camera
    cloud = extract_surfels(volume)
    assert len(cloud) > 500
    assert np.allclose(np.linalg.norm(cloud.normals, axis=1), 1.0, atol=1e-6)
    assert np.all(cloud.confidences >= 1.0)


def test_surfels_lie_on_scene_surface(fused_volume_and_camera):
    from repro.perception.reconstruction.surface import extract_surfels, surface_error_vs_scene

    volume, camera = fused_volume_and_camera
    cloud = extract_surfels(volume)
    error = surface_error_vs_scene(cloud, camera)
    assert error < 2.5 * volume.voxel_size  # within a couple of voxels


def test_surfel_ply_export(fused_volume_and_camera, tmp_path):
    from repro.perception.reconstruction.surface import extract_surfels

    volume, _camera = fused_volume_and_camera
    cloud = extract_surfels(volume, max_surfels=500)
    path = os.path.join(tmp_path, "map.ply")
    cloud.save_ply(path)
    with open(path) as handle:
        header = handle.readline().strip()
        assert header == "ply"
        text = handle.read()
    assert f"element vertex {len(cloud)}" in text


def test_surfel_empty_volume():
    from repro.perception.reconstruction.surface import extract_surfels
    from repro.perception.reconstruction.tsdf import TsdfVolume

    cloud = extract_surfels(TsdfVolume(resolution=16))
    assert len(cloud) == 0
    with pytest.raises(ValueError):
        extract_surfels(TsdfVolume(resolution=16), min_weight=0.0)


# ---------------------------------------------------------------------------
# Temporal quality metrics
# ---------------------------------------------------------------------------


def _make_events(times, yaw_rates=None):
    from repro.maths.quaternion import quat_from_axis_angle
    from repro.plugins.visual import DisplayEvent

    events = []
    yaw = 0.0
    previous = times[0]
    for i, t in enumerate(times):
        rate = yaw_rates[i] if yaw_rates is not None else 0.5
        yaw += rate * (t - previous)
        previous = t
        events.append(
            DisplayEvent(
                submit_time=t,
                frame_pose=Pose(np.zeros(3)),
                warp_pose=Pose(
                    np.zeros(3), quat_from_axis_angle(np.array([0, 0, 1.0]), yaw)
                ),
                imu_age=0.001,
            )
        )
    return events


def test_temporal_quality_smooth_stream():
    from repro.metrics.mtp import MtpSample
    from repro.metrics.temporal import temporal_quality

    vsync = 1 / 120
    times = np.arange(60) * vsync
    events = _make_events(times)
    samples = [MtpSample(t, 0.001, 0.002, 0.0005) for t in times]
    quality = temporal_quality(events, samples, vsync)
    assert quality.frame_interval_mean_ms == pytest.approx(vsync * 1e3, rel=1e-6)
    assert quality.frame_interval_jitter_ms == pytest.approx(0.0, abs=1e-9)
    assert quality.dropped_vsync_fraction == 0.0
    assert quality.pose_jerk_rad_s2 == pytest.approx(0.0, abs=1e-6)


def test_temporal_quality_detects_drops_and_judder():
    from repro.metrics.mtp import MtpSample
    from repro.metrics.temporal import temporal_quality

    vsync = 1 / 120
    rng = np.random.default_rng(0)
    # Every third frame slips one vsync; yaw rate oscillates (judder).
    times = []
    t = 0.0
    for i in range(60):
        t += vsync * (2 if i % 3 == 0 else 1)
        times.append(t)
    rates = 0.5 + 0.8 * rng.standard_normal(60)
    events = _make_events(np.array(times), yaw_rates=rates)
    samples = [MtpSample(t, 0.001, 0.002, rng.uniform(0, 0.008)) for t in times]
    quality = temporal_quality(events, samples, vsync)
    assert quality.dropped_vsync_fraction > 0.25
    assert quality.frame_interval_jitter_ms > 1.0
    assert quality.pose_jerk_rad_s2 > 10.0
    assert quality.mtp_cov > 0.2


def test_temporal_quality_validation():
    from repro.metrics.temporal import temporal_quality

    with pytest.raises(ValueError):
        temporal_quality([], [], 1 / 120)
    events = _make_events(np.arange(5) / 120)
    with pytest.raises(ValueError):
        temporal_quality(events, [], 0.0)


# ---------------------------------------------------------------------------
# Audio spatial similarity (AMBIQUAL stand-in)
# ---------------------------------------------------------------------------


def _binaural(yaw, seed=0):
    from repro.audio.encoding import AudioEncoder
    from repro.audio.playback import AudioPlayback
    from repro.audio.sources import SpeechLikeSource
    from repro.maths.quaternion import quat_from_axis_angle

    encoder = AudioEncoder([SpeechLikeSource(seed=seed)], block_size=1024)
    playback = AudioPlayback(block_size=1024)
    pose = Pose(np.zeros(3), quat_from_axis_angle(np.array([0, 0, 1.0]), yaw))
    blocks = [playback.render_block(encoder.encode_next_block(), pose) for _ in range(4)]
    return np.concatenate(blocks, axis=1)


def test_audio_similarity_identity_is_high():
    from repro.metrics.temporal import audio_spatial_similarity

    render = _binaural(0.0)
    assert audio_spatial_similarity(render, render) > 0.95


def test_audio_similarity_penalizes_rotated_render():
    from repro.metrics.temporal import audio_spatial_similarity

    front = _binaural(0.0)
    turned = _binaural(np.pi / 2)
    assert audio_spatial_similarity(front, turned) < audio_spatial_similarity(front, front)


def test_audio_similarity_validation():
    from repro.metrics.temporal import audio_spatial_similarity

    with pytest.raises(ValueError):
        audio_spatial_similarity(np.zeros((2, 100)), np.zeros((2, 200)))
    with pytest.raises(ValueError):
        audio_spatial_similarity(np.zeros((2, 10)), np.zeros((2, 10)))
