"""Unit + property tests for SO(3)/SE(3) utilities and trajectory splines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maths.quaternion import quat_from_axis_angle
from repro.maths.se3 import Pose, skew, so3_exp, so3_log
from repro.maths.splines import (
    TrajectorySpline,
    euler_rates_to_body_omega,
    euler_zyx_to_quat,
)

# exp/log roundtrips only hold inside the principal ball |phi| < pi.
rotvecs = st.tuples(
    st.floats(-1.7, 1.7, allow_nan=False),
    st.floats(-1.7, 1.7, allow_nan=False),
    st.floats(-1.7, 1.7, allow_nan=False),
).map(np.array).filter(lambda v: np.linalg.norm(v) < np.pi - 0.05)


# ---------------------------------------------------------------------------
# skew / exp / log
# ---------------------------------------------------------------------------


def test_skew_realizes_cross_product():
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([-0.5, 0.7, 0.2])
    assert np.allclose(skew(a) @ b, np.cross(a, b))


def test_skew_is_antisymmetric():
    m = skew(np.array([0.3, -0.2, 0.9]))
    assert np.allclose(m, -m.T)


@settings(max_examples=60)
@given(rotvecs)
def test_so3_exp_log_roundtrip(phi):
    assert np.allclose(so3_log(so3_exp(phi)), phi, atol=1e-6)


def test_so3_exp_zero_is_identity():
    assert np.allclose(so3_exp(np.zeros(3)), np.eye(3))


def test_so3_log_near_pi():
    phi = np.array([0.0, 0.0, np.pi - 1e-8])
    recovered = so3_log(so3_exp(phi))
    assert np.linalg.norm(recovered) == pytest.approx(np.pi - 1e-8, abs=1e-5)
    assert abs(abs(recovered[2]) - (np.pi - 1e-8)) < 1e-5


@settings(max_examples=40)
@given(rotvecs)
def test_so3_exp_is_rotation(phi):
    r = so3_exp(phi)
    assert np.allclose(r @ r.T, np.eye(3), atol=1e-10)
    assert np.linalg.det(r) == pytest.approx(1.0, abs=1e-9)


# ---------------------------------------------------------------------------
# Pose
# ---------------------------------------------------------------------------


def test_pose_transform_roundtrip():
    pose = Pose(np.array([1.0, -2.0, 0.5]), quat_from_axis_angle(np.array([0, 0, 1.0]), 0.8))
    point = np.array([0.3, 0.4, 0.5])
    world = pose.transform_point(point)
    assert np.allclose(pose.inverse_transform_point(world), point, atol=1e-12)


def test_pose_compose_and_relative_inverse():
    a = Pose(np.array([1.0, 0.0, 0.0]), quat_from_axis_angle(np.array([0, 0, 1.0]), 0.5))
    b = Pose(np.array([0.0, 2.0, 0.0]), quat_from_axis_angle(np.array([1.0, 0, 0]), -0.3))
    composed = a.compose(b)
    recovered = composed.relative_to(a)
    assert recovered.translation_error(b) < 1e-12
    assert recovered.rotation_error(b) < 1e-12


def test_pose_errors():
    a = Pose(np.zeros(3))
    b = Pose(np.array([3.0, 4.0, 0.0]), quat_from_axis_angle(np.array([0, 0, 1.0]), 0.2))
    assert a.translation_error(b) == pytest.approx(5.0)
    assert a.rotation_error(b) == pytest.approx(0.2, abs=1e-9)


def test_pose_normalizes_orientation():
    pose = Pose(np.zeros(3), np.array([2.0, 0.0, 0.0, 0.0]))
    assert np.allclose(pose.orientation, [1.0, 0.0, 0.0, 0.0])


def test_pose_rejects_bad_position_shape():
    with pytest.raises(ValueError):
        Pose(np.zeros(2))


# ---------------------------------------------------------------------------
# Euler conversions
# ---------------------------------------------------------------------------


def test_euler_zyx_pure_yaw():
    q = euler_zyx_to_quat(np.pi / 2, 0.0, 0.0)
    expected = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), np.pi / 2)
    assert np.allclose(q, expected, atol=1e-12)


def test_euler_rates_pure_roll():
    omega = euler_rates_to_body_omega(0.0, 0.0, 0.0, 0.0, 0.0, 2.0)
    assert np.allclose(omega, [2.0, 0.0, 0.0])


def test_euler_rates_pure_yaw_at_zero_attitude():
    omega = euler_rates_to_body_omega(0.3, 0.0, 0.0, 1.5, 0.0, 0.0)
    assert np.allclose(omega, [0.0, 0.0, 1.5])


# ---------------------------------------------------------------------------
# TrajectorySpline
# ---------------------------------------------------------------------------


def _spline():
    times = np.linspace(0.0, 4.0, 9)
    positions = np.column_stack(
        [np.sin(times), np.cos(times), 1.5 + 0.1 * times]
    )
    eulers = np.column_stack(
        [0.3 * times, 0.1 * np.sin(times), 0.05 * np.cos(times)]
    )
    return TrajectorySpline(times, positions, eulers)


def test_spline_velocity_matches_finite_difference():
    spline = _spline()
    t, h = 1.7, 1e-5
    numeric = (spline.sample(t + h).position - spline.sample(t - h).position) / (2 * h)
    assert np.allclose(spline.sample(t).velocity, numeric, atol=1e-5)


def test_spline_acceleration_matches_finite_difference():
    spline = _spline()
    t, h = 2.3, 1e-4
    numeric = (spline.sample(t + h).velocity - spline.sample(t - h).velocity) / (2 * h)
    assert np.allclose(spline.sample(t).acceleration, numeric, atol=1e-4)


def test_spline_omega_consistent_with_orientation_derivative():
    from repro.maths.quaternion import quat_conjugate, quat_log, quat_multiply

    spline = _spline()
    t, h = 1.1, 1e-5
    q0 = spline.sample(t - h).orientation
    q1 = spline.sample(t + h).orientation
    omega_numeric = quat_log(quat_multiply(quat_conjugate(q0), q1)) / (2 * h)
    assert np.allclose(spline.sample(t).omega_body, omega_numeric, atol=1e-4)


def test_spline_clamps_outside_domain():
    spline = _spline()
    before = spline.sample(-1.0)
    start = spline.sample(0.0)
    assert np.allclose(before.position, start.position)


def test_spline_rejects_bad_inputs():
    times = np.array([0.0, 1.0, 2.0, 3.0])
    good_pos = np.zeros((4, 3))
    good_eul = np.zeros((4, 3))
    with pytest.raises(ValueError):
        TrajectorySpline(times[:3], good_pos[:3], good_eul[:3])
    with pytest.raises(ValueError):
        TrajectorySpline(times[::-1], good_pos, good_eul)
    with pytest.raises(ValueError):
        TrajectorySpline(times, good_pos[:, :2], good_eul)
    near_gimbal = good_eul.copy()
    near_gimbal[:, 1] = np.pi / 2
    with pytest.raises(ValueError):
        TrajectorySpline(times, good_pos, near_gimbal)


def test_spline_duration():
    assert _spline().duration == pytest.approx(4.0)
