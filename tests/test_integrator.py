"""Unit tests for the RK4 / complementary IMU integrators."""

import numpy as np
import pytest

from repro.maths.quaternion import quat_from_axis_angle, quat_identity
from repro.perception.integrator import (
    ComplementaryIntegrator,
    IntegratorState,
    Rk4Integrator,
)
from repro.sensors.imu import GRAVITY_W, ImuSample


def _state(**kwargs):
    defaults = dict(
        timestamp=0.0,
        orientation=quat_identity(),
        position=np.zeros(3),
        velocity=np.zeros(3),
    )
    defaults.update(kwargs)
    return IntegratorState(**defaults)


def _stationary_sample(t):
    # Specific force cancels gravity exactly: the body is at rest.
    return ImuSample(timestamp=t, gyro=np.zeros(3), accel=-GRAVITY_W)


def test_stationary_body_stays_put():
    integrator = Rk4Integrator(_state())
    for i in range(1, 101):
        integrator.step(_stationary_sample(i * 0.002))
    assert np.allclose(integrator.state.position, 0.0, atol=1e-12)
    assert np.allclose(integrator.state.velocity, 0.0, atol=1e-12)


def test_free_fall():
    integrator = Rk4Integrator(_state())
    # Zero specific force = free fall.
    for i in range(1, 501):
        integrator.step(ImuSample(timestamp=i * 0.002, gyro=np.zeros(3), accel=np.zeros(3)))
    t = 1.0
    assert integrator.state.position[2] == pytest.approx(-0.5 * 9.81 * t * t, rel=1e-6)
    assert integrator.state.velocity[2] == pytest.approx(-9.81 * t, rel=1e-9)


def test_constant_velocity():
    integrator = Rk4Integrator(_state(velocity=np.array([1.0, -0.5, 0.0])))
    for i in range(1, 501):
        integrator.step(_stationary_sample(i * 0.002))
    assert np.allclose(integrator.state.position, [1.0, -0.5, 0.0], atol=1e-9)


def test_pure_rotation_matches_closed_form():
    omega = np.array([0.0, 0.0, 1.2])
    integrator = Rk4Integrator(_state())
    # Rotating body at rest: specific force rotates with the body, but the
    # body frame z stays aligned with gravity for yaw rotation.
    for i in range(1, 501):
        integrator.step(ImuSample(timestamp=i * 0.002, gyro=omega, accel=-GRAVITY_W))
    expected = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), 1.2)
    from repro.maths.quaternion import quat_angle_between

    assert quat_angle_between(integrator.state.orientation, expected) < 1e-6


def test_circular_motion_accuracy():
    """A body on a circle: RK4 should track the analytic path closely."""
    radius, omega = 1.0, 2.0
    integrator = Rk4Integrator(
        _state(position=np.array([radius, 0.0, 0.0]), velocity=np.array([0.0, radius * omega, 0.0]))
    )
    dt = 0.002
    for i in range(1, 1001):
        t = i * dt
        # World-frame centripetal accel, body frame = world (no rotation).
        accel_w = np.array(
            [-radius * omega**2 * np.cos(omega * (t - dt / 2)),
             -radius * omega**2 * np.sin(omega * (t - dt / 2)), 0.0]
        )
        integrator.step(ImuSample(timestamp=t, gyro=np.zeros(3), accel=accel_w - GRAVITY_W))
    t_final = 2.0
    expected = np.array([radius * np.cos(omega * t_final), radius * np.sin(omega * t_final), 0.0])
    assert np.linalg.norm(integrator.state.position - expected) < 0.01


def test_bias_subtraction():
    bias = np.array([0.05, -0.02, 0.01])
    integrator = Rk4Integrator(_state(gyro_bias=bias))
    for i in range(1, 101):
        integrator.step(ImuSample(timestamp=i * 0.002, gyro=bias, accel=-GRAVITY_W))
    # Measured gyro equals the bias -> true rotation is zero.
    assert np.allclose(integrator.state.orientation, quat_identity(), atol=1e-9)


def test_out_of_order_sample_rejected():
    integrator = Rk4Integrator(_state(timestamp=1.0))
    with pytest.raises(ValueError):
        integrator.step(_stationary_sample(0.5))


def test_zero_dt_is_noop():
    integrator = Rk4Integrator(_state(timestamp=1.0))
    before = integrator.state
    after = integrator.step(_stationary_sample(1.0))
    assert after is before


def test_reset_reanchors():
    integrator = Rk4Integrator(_state())
    integrator.step(_stationary_sample(0.002))
    new_anchor = _state(timestamp=5.0, position=np.array([1.0, 2.0, 3.0]))
    integrator.reset(new_anchor)
    assert integrator.state.timestamp == 5.0
    assert np.allclose(integrator.state.position, [1.0, 2.0, 3.0])


def test_complementary_close_to_rk4_over_short_horizon():
    rk4 = Rk4Integrator(_state(velocity=np.array([0.5, 0.0, 0.0])))
    euler = ComplementaryIntegrator(_state(velocity=np.array([0.5, 0.0, 0.0])))
    rng = np.random.default_rng(0)
    for i in range(1, 101):
        sample = ImuSample(
            timestamp=i * 0.002,
            gyro=rng.normal(0, 0.3, 3),
            accel=-GRAVITY_W + rng.normal(0, 0.5, 3),
        )
        rk4.step(sample)
        euler.step(sample)
    assert np.linalg.norm(rk4.state.position - euler.state.position) < 1e-3


def test_complementary_rejects_old_samples():
    euler = ComplementaryIntegrator(_state(timestamp=1.0))
    with pytest.raises(ValueError):
        euler.step(_stationary_sample(0.2))


def test_state_pose_carries_timestamp():
    state = _state(timestamp=2.5)
    assert state.pose().timestamp == 2.5
