"""Aggregation edges of the telemetry layer (repro.core.records).

Complements test_phonebook_plugin_records.py with the corner cases the
observability work leans on: killed invocations carrying no cost,
per-pipeline grouping, and empty-logger summaries.
"""

import math

import pytest

from repro.core.records import DropRecord, InvocationRecord, RecordLogger, mean_std


def _record(
    plugin="p",
    pipeline="perception",
    index=0,
    start=0.0,
    end=0.01,
    cpu=0.01,
    gpu=0.0,
    missed=False,
    killed=False,
):
    return InvocationRecord(
        plugin=plugin,
        component=plugin,
        pipeline=pipeline,
        index=index,
        scheduled_at=start,
        start=start,
        end=end,
        cpu_time=cpu,
        gpu_time=gpu,
        deadline=0.1,
        missed_deadline=missed,
        killed=killed,
    )


# ---------------------------------------------------------------------------
# Killed invocations are excluded from cost accounting
# ---------------------------------------------------------------------------


def test_killed_invocations_excluded_from_cpu_totals():
    logger = RecordLogger()
    logger.log(_record(index=0, cpu=0.02))
    # A killed record *should* arrive with zero cost, but the accounting
    # must not depend on the producer honouring that.
    logger.log(_record(index=1, cpu=0.5, killed=True))
    assert logger.cpu_time_totals() == pytest.approx({"p": 0.02})


def test_killed_invocations_excluded_from_cpu_share():
    logger = RecordLogger()
    logger.log(_record(plugin="a", index=0, cpu=0.03))
    logger.log(_record(plugin="b", index=0, cpu=0.01))
    logger.log(_record(plugin="b", index=1, cpu=9.0, killed=True))
    share = logger.cpu_share()
    assert share["a"] == pytest.approx(0.75)
    assert share["b"] == pytest.approx(0.25)


def test_killed_invocations_not_counted_as_frames_but_counted_as_kills():
    logger = RecordLogger()
    for i in range(4):
        logger.log(_record(index=i, killed=(i == 3)))
    assert logger.frame_rate("p", duration=1.0) == pytest.approx(3.0)
    assert logger.kill_count("p") == 1
    # Execution-time stats also skip the killed invocation.
    assert len(logger.execution_times("p")) == 3


def test_all_killed_behaves_like_empty_logger():
    logger = RecordLogger()
    logger.log(_record(index=0, cpu=0.1, killed=True))
    # A plugin whose every invocation was reaped consumed nothing; the
    # cost accounting treats it as if it never ran (no NaN shares).
    assert logger.cpu_time_totals() == {}
    assert logger.cpu_share() == {}
    assert logger.kill_count("p") == 1


# ---------------------------------------------------------------------------
# Per-pipeline grouping
# ---------------------------------------------------------------------------


def _three_pipeline_logger():
    logger = RecordLogger()
    logger.log(_record(plugin="vio", pipeline="perception", index=0, cpu=0.06))
    logger.log(_record(plugin="integrator", pipeline="perception", index=0, cpu=0.02))
    logger.log(_record(plugin="timewarp", pipeline="visual", index=0, cpu=0.01))
    logger.log(_record(plugin="audio", pipeline="audio", index=0, cpu=0.01))
    return logger


def test_for_pipeline_groups_records():
    logger = _three_pipeline_logger()
    perception = logger.for_pipeline("perception")
    assert [r.plugin for r in perception] == ["vio", "integrator"]
    assert [r.plugin for r in logger.for_pipeline("visual")] == ["timewarp"]
    assert logger.for_pipeline("ghost") == []


def test_pipelines_listing_sorted():
    assert _three_pipeline_logger().pipelines() == ["audio", "perception", "visual"]


def test_pipeline_cpu_share_sums_to_one():
    logger = _three_pipeline_logger()
    share = logger.pipeline_cpu_share()
    assert sum(share.values()) == pytest.approx(1.0)
    assert share["perception"] == pytest.approx(0.8)
    assert share["visual"] == pytest.approx(0.1)
    assert share["audio"] == pytest.approx(0.1)


def test_pipeline_cpu_share_excludes_killed():
    logger = _three_pipeline_logger()
    logger.log(_record(plugin="vio", pipeline="perception", index=1, cpu=5.0, killed=True))
    assert logger.pipeline_cpu_share()["perception"] == pytest.approx(0.8)


# ---------------------------------------------------------------------------
# Empty-logger summaries
# ---------------------------------------------------------------------------


def test_empty_logger_summaries():
    logger = RecordLogger()
    assert logger.plugins() == []
    assert logger.pipelines() == []
    assert logger.cpu_time_totals() == {}
    assert logger.cpu_share() == {}
    assert logger.pipeline_cpu_share() == {}
    assert logger.miss_rate("anything") == 0.0
    assert logger.drop_count("anything") == 0
    assert logger.kill_count("anything") == 0
    assert math.isnan(logger.mean_execution_time("anything"))


def test_drop_records_grouped_per_plugin():
    logger = RecordLogger()
    for t in (0.1, 0.2, 0.3):
        logger.log_drop("vio", t)
    logger.log_drop("timewarp", 0.4)
    assert logger.drop_count("vio") == 3
    assert logger.drop_count("timewarp") == 1
    assert logger.drops[0] == DropRecord("vio", 0.1)


def test_mean_std_empty_sequence_is_nan_pair():
    mean, std = mean_std([])
    assert math.isnan(mean) and math.isnan(std)
    mean, std = mean_std([2.0, 4.0])
    assert mean == pytest.approx(3.0)
    assert std == pytest.approx(1.0)
