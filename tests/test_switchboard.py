"""Unit tests for the switchboard event streams."""

import pytest

from repro.core.switchboard import StampedEvent, Switchboard, Topic


def test_put_and_get_latest():
    topic = Topic("t")
    topic.put(1.0, "a")
    topic.put(2.0, "b")
    latest = topic.get_latest()
    assert latest.data == "b"
    assert latest.publish_time == 2.0


def test_get_latest_empty_is_none():
    assert Topic("t").get_latest() is None


def test_non_monotonic_publish_rejected():
    topic = Topic("t")
    topic.put(2.0, "a")
    with pytest.raises(ValueError):
        topic.put(1.0, "b")


def test_equal_time_publish_allowed():
    topic = Topic("t")
    topic.put(1.0, "a")
    topic.put(1.0, "b")
    assert topic.get_latest().data == "b"


def test_sequence_numbers_increment():
    topic = Topic("t")
    events = [topic.put(float(i), i) for i in range(4)]
    assert [e.sequence for e in events] == [0, 1, 2, 3]


def test_data_time_defaults_to_publish_time():
    event = StampedEvent(publish_time=5.0, data="x")
    assert event.effective_data_time == 5.0


def test_data_time_override():
    event = StampedEvent(publish_time=5.0, data="x", data_time=4.2)
    assert event.effective_data_time == 4.2


def test_get_latest_before():
    topic = Topic("t")
    for t in (1.0, 2.0, 3.0):
        topic.put(t, t)
    assert topic.get_latest_before(2.5).data == 2.0
    assert topic.get_latest_before(0.5) is None
    assert topic.get_latest_before(3.0).data == 3.0


def test_sync_reader_sees_every_event():
    topic = Topic("t")
    reader = topic.subscribe_queue()
    for i in range(5):
        topic.put(float(i), i)
    assert [e.data for e in reader.drain()] == [0, 1, 2, 3, 4]


def test_sync_reader_misses_nothing_even_past_history_cap():
    topic = Topic("t", history=2)
    reader = topic.subscribe_queue()
    for i in range(10):
        topic.put(float(i), i)
    assert len(reader) == 10  # queue unaffected by the async history cap


def test_sync_reader_starts_at_subscription():
    topic = Topic("t")
    topic.put(0.0, "before")
    reader = topic.subscribe_queue()
    topic.put(1.0, "after")
    assert [e.data for e in reader.drain()] == ["after"]


def test_sync_reader_pop_and_peek():
    topic = Topic("t")
    reader = topic.subscribe_queue()
    topic.put(0.0, "a")
    topic.put(1.0, "b")
    assert reader.peek().data == "a"
    assert reader.pop().data == "a"
    assert reader.pop().data == "b"
    assert reader.peek() is None
    with pytest.raises(IndexError):
        reader.pop()


def test_async_history_keeps_only_latest_n():
    topic = Topic("t", history=3)
    for i in range(10):
        topic.put(float(i), i)
    assert [e.data for e in topic.history()] == [7, 8, 9]


def test_get_latest_before_after_ring_eviction():
    """The bisect must stay correct once the ring has wrapped: events
    older than the retained window are gone, so queries before the oldest
    surviving event return None, not a stale entry."""
    topic = Topic("t", history=4)
    for i in range(10):
        topic.put(float(i), i)
    # Retained window is publish times 6..9.
    assert topic.get_latest_before(5.9) is None          # older than window
    assert topic.get_latest_before(6.0).data == 6        # oldest boundary
    assert topic.get_latest_before(7.5).data == 7        # interior
    assert topic.get_latest_before(9.0).data == 9        # newest boundary
    assert topic.get_latest_before(100.0).data == 9      # beyond newest


def test_get_latest_before_equal_times_returns_latest():
    topic = Topic("t", history=3)
    topic.put(1.0, "a")
    topic.put(2.0, "b")
    topic.put(2.0, "c")
    assert topic.get_latest_before(2.0).data == "c"


def test_get_latest_before_matches_linear_scan():
    topic = Topic("t", history=16)
    times = [0.0, 0.5, 0.5, 1.25, 2.0, 2.0, 2.0, 3.5]
    for i, t in enumerate(times):
        topic.put(t, i)
    for query in (-1.0, 0.0, 0.4, 0.5, 1.0, 2.0, 2.1, 3.5, 9.0):
        expected = None
        for event in topic.history():
            if event.publish_time <= query:
                expected = event
        got = topic.get_latest_before(query)
        assert got is expected, f"query {query}"


def test_callback_invoked_on_publish():
    topic = Topic("t")
    seen = []
    topic.subscribe_callback(lambda e: seen.append(e.data))
    topic.put(0.0, "x")
    assert seen == ["x"]


def test_invalid_history_rejected():
    with pytest.raises(ValueError):
        Topic("t", history=0)


def test_switchboard_creates_and_reuses_topics():
    sb = Switchboard()
    t1 = sb.topic("pose")
    t2 = sb.topic("pose")
    assert t1 is t2
    assert "pose" in sb
    assert "other" not in sb


def test_switchboard_topic_names_sorted():
    sb = Switchboard()
    sb.topic("b")
    sb.topic("a")
    assert sb.topic_names() == ["a", "b"]


def test_count_tracks_total_publishes():
    topic = Topic("t", history=2)
    for i in range(7):
        topic.put(float(i), i)
    assert topic.count == 7
