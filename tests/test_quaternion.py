"""Unit + property tests for quaternion algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maths.quaternion import (
    matrix_to_quat,
    quat_angle_between,
    quat_conjugate,
    quat_exp,
    quat_from_axis_angle,
    quat_identity,
    quat_log,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_slerp,
    quat_to_matrix,
)

unit_quats = st.builds(
    lambda v, w: quat_normalize(np.array([w, v[0], v[1], v[2]])),
    st.tuples(
        st.floats(-1, 1, allow_nan=False),
        st.floats(-1, 1, allow_nan=False),
        st.floats(-1, 1, allow_nan=False),
    ),
    st.floats(-1, 1, allow_nan=False).filter(lambda w: abs(w) > 1e-3),
)

vectors = st.tuples(
    st.floats(-10, 10, allow_nan=False),
    st.floats(-10, 10, allow_nan=False),
    st.floats(-10, 10, allow_nan=False),
).map(np.array)

# exp/log roundtrips only hold inside the principal ball |phi| < pi.
rotvecs = st.tuples(
    st.floats(-1.7, 1.7, allow_nan=False),
    st.floats(-1.7, 1.7, allow_nan=False),
    st.floats(-1.7, 1.7, allow_nan=False),
).map(np.array).filter(lambda v: np.linalg.norm(v) < np.pi - 0.05)


def test_identity_rotates_nothing():
    v = np.array([1.0, 2.0, 3.0])
    assert np.allclose(quat_rotate(quat_identity(), v), v)


def test_normalize_zero_raises():
    with pytest.raises(ValueError):
        quat_normalize(np.zeros(4))


def test_axis_angle_90_degrees():
    q = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), np.pi / 2)
    rotated = quat_rotate(q, np.array([1.0, 0.0, 0.0]))
    assert np.allclose(rotated, [0.0, 1.0, 0.0], atol=1e-12)


def test_axis_angle_zero_axis_raises():
    with pytest.raises(ValueError):
        quat_from_axis_angle(np.zeros(3), 0.3)


def test_multiply_matches_matrix_product():
    a = quat_from_axis_angle(np.array([1.0, 0.0, 0.0]), 0.4)
    b = quat_from_axis_angle(np.array([0.0, 1.0, 0.0]), -0.7)
    lhs = quat_to_matrix(quat_multiply(a, b))
    rhs = quat_to_matrix(a) @ quat_to_matrix(b)
    assert np.allclose(lhs, rhs, atol=1e-12)


@settings(max_examples=60)
@given(unit_quats, vectors)
def test_rotation_preserves_norm(q, v):
    assert np.linalg.norm(quat_rotate(q, v)) == pytest.approx(
        np.linalg.norm(v), rel=1e-9, abs=1e-9
    )


@settings(max_examples=60)
@given(unit_quats)
def test_conjugate_is_inverse(q):
    product = quat_multiply(q, quat_conjugate(q))
    assert np.allclose(product, quat_identity(), atol=1e-9)


@settings(max_examples=60)
@given(unit_quats)
def test_matrix_roundtrip(q):
    recovered = matrix_to_quat(quat_to_matrix(q))
    # q and -q represent the same rotation.
    assert np.allclose(recovered, q, atol=1e-8) or np.allclose(recovered, -q, atol=1e-8)


@settings(max_examples=60)
@given(unit_quats)
def test_rotation_matrix_is_orthonormal(q):
    r = quat_to_matrix(q)
    assert np.allclose(r @ r.T, np.eye(3), atol=1e-10)
    assert np.linalg.det(r) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=60)
@given(rotvecs)
def test_exp_log_roundtrip(phi):
    recovered = quat_log(quat_exp(phi))
    assert np.allclose(recovered, phi, atol=1e-7)


def test_exp_small_angle_stays_unit():
    q = quat_exp(np.array([1e-10, 0.0, 0.0]))
    assert np.linalg.norm(q) == pytest.approx(1.0)


def test_log_identity_is_zero():
    assert np.allclose(quat_log(quat_identity()), np.zeros(3))


def test_log_picks_shortest_rotation():
    q = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), 0.5)
    assert np.allclose(quat_log(-q), quat_log(q), atol=1e-9)


def test_matrix_to_quat_branch_coverage():
    # Exercise all four Shepperd branches via rotations near 180 degrees
    # about each axis.
    for axis in np.eye(3):
        q = quat_from_axis_angle(axis, np.pi - 1e-4)
        recovered = matrix_to_quat(quat_to_matrix(q))
        assert quat_angle_between(q, recovered) < 1e-6


def test_matrix_to_quat_wrong_shape():
    with pytest.raises(ValueError):
        matrix_to_quat(np.eye(4))


def test_slerp_endpoints():
    a = quat_identity()
    b = quat_from_axis_angle(np.array([0.0, 1.0, 0.0]), 1.0)
    assert np.allclose(quat_slerp(a, b, 0.0), a)
    assert np.allclose(quat_slerp(a, b, 1.0), b, atol=1e-12)


def test_slerp_midpoint_half_angle():
    b = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), 1.0)
    mid = quat_slerp(quat_identity(), b, 0.5)
    assert quat_angle_between(quat_identity(), mid) == pytest.approx(0.5, abs=1e-9)


def test_slerp_t_out_of_range():
    with pytest.raises(ValueError):
        quat_slerp(quat_identity(), quat_identity(), 1.5)


def test_slerp_handles_antipodal_representation():
    b = quat_from_axis_angle(np.array([1.0, 0.0, 0.0]), 0.8)
    mid1 = quat_slerp(quat_identity(), b, 0.5)
    mid2 = quat_slerp(quat_identity(), -b, 0.5)
    assert quat_angle_between(mid1, mid2) < 1e-9


def test_angle_between():
    q = quat_from_axis_angle(np.array([1.0, 1.0, 0.0]), 0.7)
    assert quat_angle_between(quat_identity(), q) == pytest.approx(0.7, abs=1e-9)


def test_rotate_batch_of_vectors():
    q = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), np.pi / 2)
    batch = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
    rotated = quat_rotate(q, batch)
    assert np.allclose(rotated, [[0.0, 1.0, 0.0], [-1.0, 0.0, 0.0]], atol=1e-12)
