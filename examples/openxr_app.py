"""An OpenXR-style application: render, reproject, inspect image quality.

Writes a real application against the :mod:`repro.openxr` shim -- the same
wait_frame / locate_views / end_frame loop a Godot or Unreal app would run
against Monado -- then replays the visual pipeline offline: renders the
Sponza scene at the app's (stale) pose, timewarps to the display pose, and
saves before/after images as PPM files you can open with any viewer.

Usage::

    python examples/openxr_app.py [output_dir]
"""

import os
import sys

import numpy as np

from repro.maths.se3 import Pose
from repro.metrics.flip import one_minus_flip
from repro.metrics.ssim import ssim
from repro.openxr import Instance
from repro.openxr.api import CompositionLayer
from repro.openxr.swapchain import Swapchain
from repro.core.switchboard import Switchboard
from repro.sensors.trajectory import lab_walk_trajectory
from repro.visual.distortion import apply_lens_correction
from repro.visual.renderer import RenderCamera, Renderer
from repro.visual.reprojection import rotational_reproject
from repro.visual.scenes import scene_by_name


def save_ppm(path: str, image: np.ndarray) -> None:
    """Write an (H, W, 3) float image in [0,1] as a binary PPM."""
    data = (np.clip(image, 0.0, 1.0) * 255).astype(np.uint8)
    height, width = data.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode())
        handle.write(data.tobytes())


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "openxr_app_output"
    os.makedirs(out_dir, exist_ok=True)

    # A tiny standalone "runtime": a switchboard fed with trajectory poses.
    switchboard = Switchboard()
    trajectory = lab_walk_trajectory(duration=10.0, seed=2)
    clock = {"now": 0.0}

    def publish_pose(t: float) -> None:
        sample = trajectory.sample(t)
        clock["now"] = t
        switchboard.topic("fast_pose").put(
            t, Pose(sample.position, sample.orientation, timestamp=t), data_time=t
        )

    instance = Instance.create("repro example app")
    session = instance.create_session(switchboard, now_fn=lambda: clock["now"])
    print(f"Runtime: {instance.runtime_name}")

    camera = RenderCamera(width=320, height=180)
    renderer = Renderer(scene_by_name("sponza"), camera)
    k = camera.intrinsic_matrix()
    swapchain = Swapchain(width=camera.width, height=camera.height)

    # The app runs its frame loop; rendering is "slow" (50 ms) and the
    # user is turning their head briskly (~90 deg/s) -- the regime
    # asynchronous reprojection exists for.
    from repro.maths.quaternion import quat_from_axis_angle, quat_multiply

    render_latency = 0.050
    yaw_rate = 1.6  # rad/s head turn
    t = 0.5
    results = []
    for frame_index in range(4):
        publish_pose(t)
        frame = session.wait_frame()
        session.begin_frame()
        views = session.locate_views(frame.predicted_display_time)
        render_pose = views[0].pose
        # Render into a swapchain image (acquire -> wait -> write -> release).
        image_index = swapchain.acquire_image()
        target = swapchain.wait_image(image_index)
        rendered = renderer.render(render_pose)
        target.buffer[:] = rendered.image
        swapchain.release_image(image_index)
        submitted = swapchain.latest_released()
        session.end_frame(frame, [CompositionLayer(pose=render_pose, image=submitted.buffer)])
        swapchain.recycle()

        # While the frame rendered, the head swept yaw_rate * latency.
        turn = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), yaw_rate * render_latency)
        base = trajectory.sample(t + render_latency)
        display_pose = Pose(
            base.position,
            quat_multiply(turn, render_pose.orientation),
            timestamp=t + render_latency,
        )

        stale = rendered.image                       # what you'd see without timewarp
        warped = rotational_reproject(rendered.image, k, render_pose, display_pose)
        corrected = apply_lens_correction(warped)    # lens + chromatic correction
        truth = renderer.render(display_pose).image  # what a zero-latency system shows

        # Compare the central region: the warp's black border is a known,
        # expected artifact (the headset over-renders FoV to hide it).
        def crop(img):
            h, w = img.shape[:2]
            return img[int(0.15 * h) : int(0.85 * h), int(0.15 * w) : int(0.85 * w)]

        quality_stale = ssim(crop(truth), crop(stale))
        quality_warped = ssim(crop(truth), crop(warped))
        results.append((quality_stale, quality_warped))
        save_ppm(os.path.join(out_dir, f"frame{frame_index}_stale.ppm"), stale)
        save_ppm(os.path.join(out_dir, f"frame{frame_index}_warped.ppm"), warped)
        save_ppm(os.path.join(out_dir, f"frame{frame_index}_corrected.ppm"), corrected)
        print(
            f"frame {frame_index}: SSIM vs zero-latency -- "
            f"no warp {quality_stale:.3f}, with timewarp {quality_warped:.3f}, "
            f"1-FLIP warped {one_minus_flip(crop(truth), crop(warped)):.3f}"
        )
        t += 0.35

    improvement = np.mean([w - s for s, w in results])
    print(f"\nTimewarp improved SSIM by {improvement:+.3f} on average.")
    print(f"Submitted {session.frames_submitted} frames; images in {out_dir}/")


if __name__ == "__main__":
    main()
