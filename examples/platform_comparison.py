"""Platform comparison: the paper's headline experiment in miniature.

Runs one application across all three hardware configurations (desktop,
Jetson-HP, Jetson-LP) and prints the Fig. 3 / Fig. 6 / Table IV picture:
how frame rates, power, and motion-to-photon latency degrade as the
platform's power budget shrinks -- the performance/power/QoE gap of §V-A.

Usage::

    python examples/platform_comparison.py [app] [duration_s]
"""

import sys

from repro import PLATFORMS, SystemConfig, build_runtime
from repro.hardware.platform import TARGET_MTP_AR_MS, TARGET_MTP_VR_MS


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "sponza"
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 5.0

    print(f"Application: {app}, {duration:g} virtual seconds per platform\n")
    header = (
        f"{'platform':12s} {'app Hz':>7s} {'warp Hz':>8s} {'VIO Hz':>7s} "
        f"{'MTP (ms)':>14s} {'power (W)':>10s} {'SoC+Sys %':>10s}"
    )
    print(header)
    print("-" * len(header))
    for key in ("desktop", "jetson-hp", "jetson-lp"):
        platform = PLATFORMS[key]
        config = SystemConfig(duration_s=duration, fidelity="full")
        result = build_runtime(platform, app, config).run()
        rates = result.frame_rates()
        mtp = result.mtp_summary()
        shares = result.power.share()
        soc_sys = (shares.get("SoC", 0.0) + shares.get("Sys", 0.0)) * 100
        print(
            f"{platform.name:12s} {rates.get('application', 0):7.1f} "
            f"{rates.get('timewarp', 0):8.1f} {rates.get('vio', 0):7.1f} "
            f"{mtp.mean_ms:6.1f}+-{mtp.std_ms:5.1f} {result.power.total:10.1f} "
            f"{soc_sys:10.0f}"
        )
    print(
        f"\nTargets: MTP < {TARGET_MTP_VR_MS:g} ms (VR) / < {TARGET_MTP_AR_MS:g} ms (AR); "
        "ideal power 1-2 W (VR) / 0.1-0.2 W (AR)  [Table I]"
    )
    print("Note how SoC+Sys become the majority of power as compute rails shrink (§IV-A2).")


if __name__ == "__main__":
    main()
