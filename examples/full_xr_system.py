"""The full Fig. 1 workflow: all eleven components in one system.

Boots the extended configuration (the standard eight plugins plus eye
tracking, depth camera + scene reconstruction, and holographic display),
runs it with real algorithms, prints every component's achieved rate, and
exports the reconstructed map as a PLY surfel cloud you can open in any
point-cloud viewer.

Usage::

    python examples/full_xr_system.py [duration_s] [output.ply]
"""

import sys

import numpy as np

from repro.core.config import SystemConfig
from repro.hardware.platform import DESKTOP
from repro.perception.reconstruction.surface import extract_surfels, surface_error_vs_scene
from repro.plugins.extended import (
    EyeTrackingPlugin,
    SceneReconstructionPlugin,
    build_extended_runtime,
)


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 3.0
    ply_path = sys.argv[2] if len(sys.argv) > 2 else "scene_map.ply"

    print(f"Booting all eleven components on the desktop for {duration:g} virtual seconds...")
    config = SystemConfig(duration_s=duration, fidelity="full", seed=0)
    runtime = build_extended_runtime(DESKTOP, "sponza", config)
    result = runtime.run()

    print("\nComponent frame rates (achieved Hz):")
    for name, rate in sorted(result.frame_rates().items()):
        print(f"  {name:22s} {rate:7.1f}")

    recon = next(p for p in runtime.plugins if isinstance(p, SceneReconstructionPlugin))
    eye = next(p for p in runtime.plugins if isinstance(p, EyeTrackingPlugin))
    print(f"\nEye tracking: {eye.predictions} stereo predictions")
    print(f"Scene reconstruction: {recon.frames_fused} depth frames fused, "
          f"{recon.pipeline_impl.volume.occupied_fraction:.1%} of volume observed")

    cloud = extract_surfels(recon.pipeline_impl.volume)
    if len(cloud) > 0:
        error = surface_error_vs_scene(cloud, recon.pipeline_impl.camera)
        cloud.save_ply(ply_path)
        print(f"Surfel map: {len(cloud)} surfels, "
              f"mean surface error {error * 100:.1f} cm -> {ply_path}")
    else:
        print("Surfel map empty (run longer to accumulate depth frames).")

    if result.vio_trajectory:
        errors = [
            est.pose.translation_error(result.ground_truth(est.timestamp))
            for _, est in result.vio_trajectory
        ]
        print(f"VIO: mean position error {np.mean(errors) * 100:.1f} cm "
              f"over {len(errors)} estimates")
    mtp = result.mtp_summary()
    print(f"MTP: {mtp.mean_ms:.1f} +- {mtp.std_ms:.1f} ms; "
          f"power {result.power.total:.0f} W")


if __name__ == "__main__":
    main()
