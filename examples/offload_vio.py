"""VIO offloading demo (§II, footnote 2 of the paper).

Runs the same integrated system on Jetson-LP twice -- once with VIO local,
once with VIO offloaded across a modeled wireless link to a desktop-class
edge server -- and prints the trade: the device gets its camera-rate pose
stream and its CPU back, in exchange for a network round trip on every
estimate.  Also sweeps link latency to find where offloading stops paying.

Usage::

    python examples/offload_vio.py [duration_s]
"""

import sys

from repro.analysis.experiments import offload_comparison
from repro.core.config import SystemConfig
from repro.hardware.platform import DESKTOP, JETSON_LP
from repro.plugins.offload import NetworkLink, OffloadedVioPlugin, build_offloaded_runtime


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 6.0

    print(f"Jetson-LP running Platformer, VIO local vs offloaded to desktop "
          f"({duration:g}s virtual)\n")
    comparison = offload_comparison(duration_s=duration)
    print(f"{'':24s} {'local':>10s} {'offloaded':>10s}")
    print(f"{'VIO rate (Hz)':24s} {comparison.local_vio_rate_hz:10.1f} "
          f"{comparison.offloaded_vio_rate_hz:10.1f}")
    print(f"{'VIO CPU share':24s} {comparison.local_vio_cpu_share:10.1%} "
          f"{comparison.offloaded_vio_cpu_share:10.1%}")
    print(f"{'VIO ATE (cm)':24s} {comparison.local_ate_cm:10.1f} "
          f"{comparison.offloaded_ate_cm:10.1f}")
    print(f"\nmean round trip: {comparison.mean_round_trip_ms:.1f} ms "
          "(uplink + desktop VIO + downlink)")

    print("\nLink-latency sweep (one-way ms -> pose-stream staleness):")
    config = SystemConfig(duration_s=duration, fidelity="full")
    for latency_ms in (2.0, 10.0, 30.0):
        link = NetworkLink(latency_s=latency_ms / 1e3)
        runtime = build_offloaded_runtime(JETSON_LP, DESKTOP, "platformer", config, link=link)
        result = runtime.run()
        plugin = next(p for p in runtime.plugins if isinstance(p, OffloadedVioPlugin))
        import numpy as np

        rtt = np.mean(plugin.round_trips) * 1e3 if plugin.round_trips else float("nan")
        errors = [
            est.pose.translation_error(result.ground_truth(est.timestamp))
            for _, est in result.vio_trajectory
        ]
        print(f"  one-way {latency_ms:5.1f} ms: rtt {rtt:6.1f} ms, "
              f"VIO rate {result.frame_rate('vio'):5.1f} Hz, "
              f"ATE {np.mean(errors) * 100:5.1f} cm")
    print("\nAt high latency the pose anchor goes stale and the IMU "
          "integrator must bridge longer gaps -- the §II trade-off.")


if __name__ == "__main__":
    main()
