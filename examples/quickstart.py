"""Quickstart: boot the integrated XR system and read its vital signs.

Runs the paper's integrated configuration (camera, IMU, VIO, integrator,
application, reprojection, spatial audio) for a few virtual seconds on the
desktop platform model, then prints what an XR systems researcher looks at
first: per-component frame rates vs targets, CPU attribution,
motion-to-photon latency, power, and VIO accuracy.

Usage::

    python examples/quickstart.py [app] [platform] [duration_s]

    app       sponza | materials | platformer | ar_demo   (default sponza)
    platform  desktop | jetson-hp | jetson-lp              (default desktop)
"""

import sys

import numpy as np

from repro import PLATFORMS, SystemConfig, build_runtime
from repro.analysis.experiments import FIG3_TARGETS


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "sponza"
    platform_key = sys.argv[2] if len(sys.argv) > 2 else "desktop"
    duration = float(sys.argv[3]) if len(sys.argv) > 3 else 5.0

    platform = PLATFORMS[platform_key]
    config = SystemConfig(duration_s=duration, fidelity="full")
    print(f"Booting {app} on {platform.name} for {duration:g} virtual seconds...")
    result = build_runtime(platform, app, config).run()

    print("\nComponent frame rates (achieved / target Hz):")
    for name, rate in sorted(result.frame_rates().items()):
        target = FIG3_TARGETS.get(name)
        flag = ""
        if target is not None and rate < 0.95 * target:
            flag = "  <-- missing target"
        print(f"  {name:16s} {rate:7.1f} / {target or float('nan'):g}{flag}")

    print("\nCPU time share (Fig. 5 view):")
    for name, share in sorted(result.cpu_share().items(), key=lambda kv: -kv[1]):
        print(f"  {name:16s} {share * 100:5.1f}%")

    mtp = result.mtp_summary()
    print(
        f"\nMotion-to-photon latency: {mtp.mean_ms:.1f} +- {mtp.std_ms:.1f} ms "
        f"(VR target 20 ms met on {mtp.vr_target_met_fraction * 100:.0f}% of frames)"
    )

    print(f"Power: {result.power.total:.1f} W total "
          f"({', '.join(f'{k} {v:.1f}' for k, v in result.power.rails.items())})")

    if result.vio_trajectory:
        errors = [
            est.pose.translation_error(result.ground_truth(est.timestamp))
            for _, est in result.vio_trajectory
        ]
        print(f"VIO: {len(errors)} estimates, mean position error {np.mean(errors) * 100:.1f} cm")


if __name__ == "__main__":
    main()
