"""Standalone component characterization (the paper's "ILLIXR v1" mode).

Runs each component by itself on its dataset stand-in and prints the
measured per-task time breakdown -- the reproduction of Tables VI and VII,
plus the analytical Fig. 8 microarchitecture view.

Usage::

    python examples/standalone_components.py [--quick]
"""

import sys

from repro.analysis.report import render_fig8, render_task_breakdown
from repro.analysis.standalone import (
    characterize_audio,
    characterize_eye_tracking,
    characterize_hologram,
    characterize_reconstruction,
    characterize_reprojection,
    characterize_vio,
)


def main() -> None:
    quick = "--quick" in sys.argv
    print("=" * 68)
    print("Table VI: perception-component task breakdowns (measured)")
    print("=" * 68)
    print(render_task_breakdown(characterize_vio(duration_s=5.0 if quick else 15.0)))
    print()
    print(render_task_breakdown(characterize_reconstruction(frames=10 if quick else 30)))
    print()
    print("=" * 68)
    print("Table VII: visual/audio component task breakdowns (measured)")
    print("=" * 68)
    print(render_task_breakdown(characterize_reprojection(frames=8 if quick else 24)))
    print()
    print(render_task_breakdown(characterize_hologram(iterations=4 if quick else 8)))
    print()
    for breakdown in characterize_audio(blocks=24 if quick else 96).values():
        print(render_task_breakdown(breakdown))
        print()
    print(render_task_breakdown(characterize_eye_tracking(
        train_steps=30 if quick else 100, eval_samples=8 if quick else 24)))
    print()
    print("=" * 68)
    print(render_fig8())


if __name__ == "__main__":
    main()
