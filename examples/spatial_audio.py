"""Spatial audio demo: encode, rotate, binauralize -- and write a WAV.

Builds the paper's audio pipeline standalone: two mono sources (a
speech-like "lecture" and a music-like "radio", the Freesound stand-ins)
are ambisonic-encoded at order 3, the soundfield is rotated as the
listener's head sweeps left-to-right, and binauralized through the
spherical-head HRTF.  The output is a stereo WAV in which the sources
audibly orbit the listener.

Usage::

    python examples/spatial_audio.py [seconds] [output.wav]
"""

import sys
import wave

import numpy as np

from repro.audio.encoding import AudioEncoder
from repro.audio.playback import AudioPlayback
from repro.audio.sources import MusicLikeSource, SpeechLikeSource
from repro.maths.quaternion import quat_from_axis_angle
from repro.maths.se3 import Pose


def main() -> None:
    seconds = float(sys.argv[1]) if len(sys.argv) > 1 else 4.0
    out_path = sys.argv[2] if len(sys.argv) > 2 else "spatial_audio.wav"

    sample_rate = 48000
    block = 1024
    encoder = AudioEncoder(
        [SpeechLikeSource(sample_rate_hz=sample_rate), MusicLikeSource(sample_rate_hz=sample_rate)],
        block_size=block,
    )
    playback = AudioPlayback(block_size=block, sample_rate_hz=sample_rate)

    n_blocks = int(seconds * sample_rate / block)
    stereo_blocks = []
    for i in range(n_blocks):
        soundfield = encoder.encode_next_block()
        # The listener sweeps their head through a full turn.
        yaw = 2 * np.pi * i / n_blocks
        pose = Pose(np.zeros(3), quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), yaw))
        stereo_blocks.append(playback.render_block(soundfield, pose))
    stereo = np.concatenate(stereo_blocks, axis=1)

    peak = np.abs(stereo).max()
    if peak > 0:
        stereo = stereo / peak * 0.9
    pcm = (stereo.T * 32767).astype(np.int16)  # (samples, 2)
    with wave.open(out_path, "wb") as handle:
        handle.setnchannels(2)
        handle.setsampwidth(2)
        handle.setframerate(sample_rate)
        handle.writeframes(pcm.tobytes())

    # Quantify the spatialization: interaural level difference over time.
    window = sample_rate // 4
    n_windows = stereo.shape[1] // window
    ild = []
    for w in range(n_windows):
        seg = stereo[:, w * window : (w + 1) * window]
        rms = np.sqrt((seg**2).mean(axis=1)) + 1e-12
        ild.append(20 * np.log10(rms[0] / rms[1]))
    print(f"Wrote {out_path}: {stereo.shape[1] / sample_rate:.1f} s stereo @ {sample_rate} Hz")
    print(
        "Interaural level difference sweep (dB, + = left louder): "
        + " ".join(f"{x:+.1f}" for x in ild)
    )
    print(f"ILD range {max(ild) - min(ild):.1f} dB -- the sources audibly move as the head turns.")
    breakdown = playback.task_breakdown()
    total = sum(breakdown.values())
    print("Playback task shares (Table VII view): "
          + ", ".join(f"{k} {v / total * 100:.0f}%" for k, v in breakdown.items()))


if __name__ == "__main__":
    main()
