"""Fig. 6: total power and per-rail breakdown.

Expected shape (§IV-A2): desktop total is ~3 orders of magnitude above the
ideal-AR budget (0.1-0.2 W) and GPU-dominant; Jetson-LP is ~2 orders above
ideal with SoC+Sys exceeding 50% of total -- the motivation for on-sensor
computing and system-level power work.
"""

from conftest import save_report

from repro.analysis.report import render_fig6
from repro.hardware.platform import JETSON_LP
from repro.hardware.power import PowerModel


def test_fig6_power(grid_runs, benchmark):
    text = render_fig6(grid_runs)
    save_report("fig6_power", text)

    model = PowerModel(JETSON_LP)
    benchmark(lambda: model.breakdown(cpu_utilization=0.2, gpu_utilization=0.8))

    ideal_ar_power = 0.15
    for run in grid_runs:
        total = run.result.power.total
        if run.platform.key == "desktop":
            assert total / ideal_ar_power > 500       # ~3 orders of magnitude
            assert run.result.power.share()["GPU"] > 0.5
        elif run.platform.key == "jetson-lp":
            assert 30 < total / ideal_ar_power < 120  # ~2 orders
            shares = run.result.power.share()
            assert shares["SoC"] + shares["Sys"] > 0.45
    # Power ordering: desktop >> HP > LP for every app.
    for app in ("sponza", "platformer"):
        by_platform = {
            r.platform.key: r.result.power.total
            for r in grid_runs
            if r.app_name == app
        }
        assert by_platform["desktop"] > by_platform["jetson-hp"] > by_platform["jetson-lp"]
