"""Table V: offline image quality (SSIM, 1-FLIP) for Sponza.

Paper: SSIM 0.83/0.80/0.68 and 1-FLIP 0.86/0.85/0.65 for desktop /
Jetson-HP / Jetson-LP.  Expected shape here: monotone degradation with
platform constraint.  (Our degradation is gentler: the synthetic stereo
front-end tolerates dropped frames better than real KLT on blurred images
-- see EXPERIMENTS.md.)  The benchmark times the SSIM kernel.
"""

import numpy as np
from conftest import save_report

from repro.analysis.report import render_table5
from repro.metrics.qoe import evaluate_image_quality
from repro.metrics.ssim import ssim


def test_table5_image_quality(sponza_runs, benchmark):
    results = {}
    for run in sorted(sponza_runs, key=lambda r: r.platform.cpu_scale):
        results[run.platform.key] = evaluate_image_quality(run.result, max_frames=12)
    text = render_table5(results)
    save_report("table5_image_quality", text)

    image = np.random.default_rng(0).random((108, 192, 3))
    shifted = np.clip(image + 0.02, 0, 1)
    benchmark(lambda: ssim(image, shifted))

    for result in results.values():
        assert 0.5 < result.ssim_mean <= 1.0
        assert 0.5 < result.one_minus_flip_mean <= 1.0
    # Monotone degradation desktop -> Jetson-HP -> Jetson-LP.
    assert (
        results["desktop"].ssim_mean
        >= results["jetson-hp"].ssim_mean
        >= results["jetson-lp"].ssim_mean
    )
    assert results["desktop"].ssim_mean > results["jetson-lp"].ssim_mean
    assert results["desktop"].one_minus_flip_mean >= results["jetson-lp"].one_minus_flip_mean
