"""Fig. 3: per-component frame rates, 4 apps x 3 platforms.

Expected shape (paper §IV-A1): the desktop meets essentially all targets
except the application on Sponza/Materials; Jetson-HP degrades the visual
pipeline on complex apps; Jetson-LP misses everything except audio.
The benchmark times a short integrated run (the unit of all Fig. 3 data).
"""

from conftest import save_report

from repro.analysis.experiments import FIG3_TARGETS, run_integrated
from repro.analysis.report import render_fig3


def test_fig3_framerates(grid_runs, benchmark):
    text = render_fig3(grid_runs)
    save_report("fig3_framerates", text)

    def one_cell():
        return run_integrated("desktop", "ar_demo", duration_s=1.0, fidelity="model")

    benchmark(one_cell)

    by_cell = {(r.platform.key, r.app_name): r.frame_rates() for r in grid_runs}
    # Desktop meets perception/audio targets on every app.
    for app in ("sponza", "materials", "platformer", "ar_demo"):
        rates = by_cell[("desktop", app)]
        assert rates["vio"] > 0.93 * FIG3_TARGETS["vio"]
        assert rates["audio_encoding"] > 0.95 * FIG3_TARGETS["audio_encoding"]
        assert rates["timewarp"] > 0.9 * FIG3_TARGETS["timewarp"]
    # Desktop application misses the target on Sponza but not AR Demo.
    assert by_cell[("desktop", "sponza")]["application"] < 70
    assert by_cell[("desktop", "ar_demo")]["application"] > 110
    # Jetson-LP: only audio holds; the visual pipeline collapses.
    lp_sponza = by_cell[("jetson-lp", "sponza")]
    assert lp_sponza["audio_playback"] > 45
    assert lp_sponza["application"] < 25
    assert lp_sponza["timewarp"] < 90
    assert lp_sponza["vio"] < 14.5
