"""Tables I-III: requirements, component inventory, tuned parameters.

These tables are definitional (device survey, Table II registry, Table III
config); the benchmark times their generation paths, and the reports land
in results/.
"""

from conftest import save_report

from repro.analysis.report import render_table1, render_table2, render_table3
from repro.core.config import SystemConfig


def test_table1_requirements(benchmark):
    text = benchmark(render_table1)
    save_report("table1_requirements", text)
    assert "Ideal AR" in text


def test_table2_components(benchmark):
    text = benchmark(render_table2)
    save_report("table2_components", text)
    assert "repro.perception.vio" in text


def test_table3_parameters(benchmark):
    def build_and_render():
        SystemConfig()  # validate the tuned defaults
        return render_table3()

    text = benchmark(build_and_render)
    save_report("table3_parameters", text)
    assert "66.7 ms" in text
