"""Extension bench (footnote 5): reprojection scheduled as late as possible.

DESIGN.md calls out the "schedule reprojection just before vsync" policy
as a design choice; this ablation quantifies it.  Scheduling timewarp
*early* in the vsync interval completes well before the swap, so the pose
it used is stale by almost a full frame by display time -- MTP balloons.
The late policy (lead ~= p90 cost) keeps the pose fresh.

Also regenerates the temporal-smoothness view (§II-C's jitter discussion)
across platforms.
"""

from conftest import save_report

from repro.core.config import SystemConfig
from repro.core.runtime import Runtime, build_runtime
from repro.hardware.platform import DESKTOP
from repro.metrics.temporal import temporal_quality
from repro.plugins.visual import TimewarpPlugin


def _run_with_lead(lead: float):
    config = SystemConfig(duration_s=3.0, fidelity="model", seed=0)
    base = build_runtime(DESKTOP, "platformer", config)
    plugins = []
    for plugin in base.plugins:
        if isinstance(plugin, TimewarpPlugin):
            plugins.append(TimewarpPlugin(config, lead=lead))
        else:
            plugins.append(plugin)
    runtime = Runtime(
        base.platform, config, "platformer", plugins, base.trajectory, timing=base.timing
    )
    return runtime.run()


def test_ext_late_scheduling_ablation(benchmark):
    vsync = 1 / 120
    late = _run_with_lead(0.35 * vsync)   # just-in-time (the shipped policy)
    early = _run_with_lead(0.95 * vsync)  # start right after the previous vsync
    late_mtp = late.mtp_summary()
    early_mtp = early.mtp_summary()
    save_report(
        "ext_late_scheduling",
        "Extension (fn. 5): reprojection scheduling policy (desktop, Platformer)\n"
        f"late (lead=0.35 vsync):  MTP {late_mtp.mean_ms:.2f}+-{late_mtp.std_ms:.2f} ms\n"
        f"early (lead=0.95 vsync): MTP {early_mtp.mean_ms:.2f}+-{early_mtp.std_ms:.2f} ms",
    )

    benchmark.pedantic(lambda: _run_with_lead(0.5 * vsync), rounds=2, iterations=1)

    # Early scheduling wastes most of the frame waiting for the swap:
    # the pose is stale by the extra lead.
    assert early_mtp.mean_ms > late_mtp.mean_ms + 3.0


def test_ext_temporal_smoothness(grid_runs, benchmark):
    rows = ["Extension (§II-C): temporal smoothness (Sponza)",
            f"{'platform':12s} {'interval ms':>12s} {'jitter ms':>10s} "
            f"{'dropped':>8s} {'jerk':>8s} {'MTP CoV':>8s}"]
    by_platform = {}
    for run in grid_runs:
        if run.app_name != "sponza":
            continue
        quality = temporal_quality(
            run.result.display_events,
            run.result.mtp_samples,
            run.result.config.vsync_period,
        )
        by_platform[run.platform.key] = quality
        rows.append(
            f"{run.platform.key:12s} {quality.frame_interval_mean_ms:12.2f} "
            f"{quality.frame_interval_jitter_ms:10.2f} "
            f"{quality.dropped_vsync_fraction:8.2f} "
            f"{quality.pose_jerk_rad_s2:8.1f} {quality.mtp_cov:8.2f}"
        )
    save_report("ext_temporal_smoothness", "\n".join(rows))

    desktop_run = next(r for r in grid_runs if r.platform.key == "desktop" and r.app_name == "sponza")
    benchmark(
        lambda: temporal_quality(
            desktop_run.result.display_events,
            desktop_run.result.mtp_samples,
            desktop_run.result.config.vsync_period,
        )
    )

    # Smoothness degrades with platform constraint: the desktop drops
    # (almost) no vsyncs; Jetson-LP drops many and jitters more.
    assert by_platform["desktop"].dropped_vsync_fraction < 0.05
    assert by_platform["jetson-lp"].dropped_vsync_fraction > 0.3
    assert (
        by_platform["jetson-lp"].frame_interval_jitter_ms
        > by_platform["desktop"].frame_interval_jitter_ms
    )
