"""Before/after benchmark harness for the accelerated hot-path kernels.

Times each rewritten kernel against the reference implementation it
retains (``accelerated=False``), checks numerical parity, and writes the
results to ``BENCH_hotpaths.json`` at the repository root — one datapoint
in the perf trajectory ROADMAP.md asks every PR to extend.

Kernels covered:

- ``hologram.solve``      — WGS holography (3 planes, 128^2, 10 iterations)
- ``tsdf.integrate``      — TSDF fusion (96^3 voxels, 80x60 depth camera)
- ``metrics.ssim``        — SSIM on a 240x320 RGB pair
- ``metrics.flip``        — FLIP on a 240x320 RGB pair
- ``switchboard.get_latest_before`` — bisect vs. linear scan over a topic

Usage::

    python benchmarks/perf_harness.py                  # full acceptance config
    python benchmarks/perf_harness.py --quick          # tiny smoke (~seconds)
    python benchmarks/perf_harness.py --json out.json  # alternate output path

Exits non-zero if any parity check fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.switchboard import Topic  # noqa: E402
from repro.maths.se3 import Pose  # noqa: E402
from repro.metrics.flip import flip  # noqa: E402
from repro.metrics.ssim import ssim  # noqa: E402
from repro.perception.reconstruction.tsdf import TsdfVolume  # noqa: E402
from repro.perf import parallel_map, profile_summary, enable_profiling  # noqa: E402
from repro.perf import profile as profile_module  # noqa: E402
from repro.sensors.depth import DepthCamera, DepthScene  # noqa: E402
from repro.visual.hologram import WeightedGerchbergSaxton  # noqa: E402


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-N wall time in seconds (minimizes scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _focal_targets(n: int, planes: int, seed: int) -> List[np.ndarray]:
    """Focal-stack-style targets: pixels partitioned across depth planes."""
    from scipy.ndimage import gaussian_filter

    rng = np.random.default_rng(seed)
    depthmap = gaussian_filter(rng.random((n, n)), n / 16)
    edges = np.quantile(depthmap, [(k + 1) / planes for k in range(planes - 1)])
    assignment = np.digitize(depthmap, edges)
    luminance = gaussian_filter(rng.random((n, n)), 2)
    return [np.where(assignment == k, luminance, 0.0) for k in range(planes)]


def bench_hologram(quick: bool, repeats: int) -> Dict[str, object]:
    n = 32 if quick else 128
    iterations = 1 if quick else 10
    depths = (0.05, 0.10, 0.20)
    targets = _focal_targets(n, len(depths), seed=7)
    reference = WeightedGerchbergSaxton(resolution=n, depths_m=depths, accelerated=False)
    accelerated = WeightedGerchbergSaxton(resolution=n, depths_m=depths, accelerated=True)

    ref_result = reference.solve(targets, iterations=iterations, seed=0)
    acc_result = accelerated.solve(targets, iterations=iterations, seed=0)
    phase_dev = float(np.abs(acc_result.phase - ref_result.phase).max())
    t_ref = _time(lambda: reference.solve(targets, iterations=iterations, seed=0), repeats)
    t_acc = _time(lambda: accelerated.solve(targets, iterations=iterations, seed=0), repeats)
    return {
        "config": {"resolution": n, "planes": len(depths), "iterations": iterations},
        "reference_ms": t_ref * 1e3,
        "accelerated_ms": t_acc * 1e3,
        "speedup": t_ref / t_acc,
        "parity": {
            "max_phase_deviation": phase_dev,
            "efficiency_deviation": abs(acc_result.efficiency - ref_result.efficiency),
            "uniformity_deviation": abs(acc_result.uniformity - ref_result.uniformity),
            "ok": bool(phase_dev <= 1e-8),
        },
    }


def _tsdf_poses(count: int) -> List[Pose]:
    return [
        Pose(
            np.array([0.5 + 0.05 * i, 0.2 - 0.03 * i, 1.6]),
            np.array([np.cos(0.08 * i), 0.0, 0.0, np.sin(0.08 * i)]),
        )
        for i in range(count)
    ]


def bench_tsdf(quick: bool, repeats: int) -> Dict[str, object]:
    resolution = 32 if quick else 96
    camera = DepthCamera(DepthScene.default(seed=3), width=80, height=60, noise_std=0.0)
    poses = _tsdf_poses(2 if quick else 4)
    frames = [camera.render(p, noisy=False) for p in poses]

    def run(accelerated: bool) -> TsdfVolume:
        volume = TsdfVolume(resolution=resolution, accelerated=accelerated)
        for depth, pose in zip(frames, poses):
            volume.integrate(depth, pose, camera)
        return volume

    ref_volume = run(False)
    acc_volume = run(True)
    exact = bool(
        np.array_equal(ref_volume.tsdf, acc_volume.tsdf)
        and np.array_equal(ref_volume.weight, acc_volume.weight)
    )
    t_ref = _time(lambda: run(False), repeats)
    t_acc = _time(lambda: run(True), repeats)
    return {
        "config": {"resolution": resolution, "frames": len(frames), "camera": "80x60"},
        "reference_ms": t_ref * 1e3 / len(frames),
        "accelerated_ms": t_acc * 1e3 / len(frames),
        "speedup": t_ref / t_acc,
        "parity": {"grids_bit_exact": exact, "ok": exact},
    }


def _metric_pair(quick: bool) -> tuple:
    shape = (60, 80, 3) if quick else (240, 320, 3)
    rng = np.random.default_rng(11)
    reference = rng.random(shape)
    test = np.clip(reference + rng.normal(0.0, 0.05, shape), 0.0, 1.0)
    return reference, test


def bench_ssim(quick: bool, repeats: int) -> Dict[str, object]:
    reference, test = _metric_pair(quick)
    ref_value = ssim(reference, test, accelerated=False)
    acc_value = ssim(reference, test, accelerated=True)
    exact = bool(
        np.array_equal(
            ssim(reference, test, full=True, accelerated=False),
            ssim(reference, test, full=True, accelerated=True),
        )
    )
    t_ref = _time(lambda: ssim(reference, test, accelerated=False), repeats)
    t_acc = _time(lambda: ssim(reference, test, accelerated=True), repeats)
    return {
        "config": {"shape": list(reference.shape)},
        "reference_ms": t_ref * 1e3,
        "accelerated_ms": t_acc * 1e3,
        "speedup": t_ref / t_acc,
        "parity": {
            "value_deviation": abs(acc_value - ref_value),
            "map_bit_exact": exact,
            "ok": exact,
        },
    }


def bench_flip(quick: bool, repeats: int) -> Dict[str, object]:
    reference, test = _metric_pair(quick)
    ref_value = flip(reference, test, accelerated=False)
    acc_value = flip(reference, test, accelerated=True)
    exact = bool(
        np.array_equal(
            flip(reference, test, full=True, accelerated=False),
            flip(reference, test, full=True, accelerated=True),
        )
    )
    t_ref = _time(lambda: flip(reference, test, accelerated=False), repeats)
    t_acc = _time(lambda: flip(reference, test, accelerated=True), repeats)
    return {
        "config": {"shape": list(reference.shape)},
        "reference_ms": t_ref * 1e3,
        "accelerated_ms": t_acc * 1e3,
        "speedup": t_ref / t_acc,
        "parity": {
            "value_deviation": abs(acc_value - ref_value),
            "map_bit_exact": exact,
            "ok": exact,
        },
    }


def bench_switchboard(quick: bool, repeats: int) -> Dict[str, object]:
    history = 256 if quick else 4096
    topic = Topic("bench", history=history)
    for i in range(history):
        topic.put(float(i), i)
    queries = np.linspace(0.0, float(history), 512)

    def linear_scan(when: float):
        for event in reversed(list(topic.history())):
            if event.publish_time <= when:
                return event
        return None

    mismatches = sum(
        1
        for q in queries
        if (topic.get_latest_before(q) or None) is not (linear_scan(q) or None)
        and getattr(topic.get_latest_before(q), "data", None)
        != getattr(linear_scan(q), "data", None)
    )
    t_ref = _time(lambda: [linear_scan(q) for q in queries], repeats)
    t_acc = _time(lambda: [topic.get_latest_before(q) for q in queries], repeats)
    return {
        "config": {"history": history, "queries": len(queries)},
        "reference_ms": t_ref * 1e3,
        "accelerated_ms": t_acc * 1e3,
        "speedup": t_ref / t_acc,
        "parity": {"query_mismatches": mismatches, "ok": mismatches == 0},
    }


def _hologram_parity_sweep(seed: int) -> float:
    """Max phase deviation for one seeded target set (parallel_map worker)."""
    n, depths = 64, (0.05, 0.12)
    targets = _focal_targets(n, len(depths), seed=seed)
    reference = WeightedGerchbergSaxton(resolution=n, depths_m=depths, accelerated=False)
    accelerated = WeightedGerchbergSaxton(resolution=n, depths_m=depths, accelerated=True)
    ref = reference.solve(targets, iterations=5, seed=seed)
    acc = accelerated.solve(targets, iterations=5, seed=seed)
    return float(np.abs(acc.phase - ref.phase).max())


def _disabled_hook_cost_s(loops: int = 100_000) -> float:
    """Per-call cost of a ``@profiled`` wrapper with profiling disabled.

    Directly timing wrapped-vs-bare *kernels* cannot resolve a ~100 ns
    branch under millisecond kernels and multi-percent scheduler jitter,
    so the dispatch cost is measured where it is visible: a no-op
    function called in a tight loop, wrapped minus unwrapped.  The cost
    is independent of the wrapped body, so it transfers exactly.
    """
    from repro.perf import profiled

    def noop() -> None:
        return None

    wrapped = profiled("overhead.noop")(noop)
    for _ in range(1_000):  # warm both paths
        noop()
        wrapped()

    def per_call(fn: Callable[[], None]) -> float:
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(loops):
                fn()
            best = min(best, time.perf_counter() - start)
        return best / loops

    return max(per_call(wrapped) - per_call(noop), 0.0)


def bench_disabled_overhead(quick: bool, repeats: int) -> Dict[str, object]:
    """Overhead of disabled instrumentation on the accelerated kernels.

    Every accelerated kernel is wrapped by ``@profiled``; switched off
    (the default, and the state of every untraced run) the wrapper is
    one global load and a branch per call.  Reports that per-call hook
    cost as a fraction of each kernel's bare runtime, which CI gates
    under 3%.
    """
    was_enabled = profile_module.profiling_enabled()
    profile_module.enable_profiling(False)
    profile_module.set_tracer(None)
    reps = max(repeats, 9 if quick else 5)
    try:
        hook_s = _disabled_hook_cost_s(20_000 if quick else 100_000)

        n = 32 if quick else 96
        iterations = 1 if quick else 5
        depths = (0.05, 0.10, 0.20)
        targets = _focal_targets(n, len(depths), seed=7)
        holo = WeightedGerchbergSaxton(resolution=n, depths_m=depths, accelerated=True)
        bare_solve = type(holo).solve.__wrapped__
        kernel_bare_s = {
            "hologram.solve": _time(
                lambda: bare_solve(holo, targets, iterations=iterations, seed=0), reps
            )
        }

        resolution = 32 if quick else 64
        camera = DepthCamera(DepthScene.default(seed=3), width=80, height=60, noise_std=0.0)
        pose = _tsdf_poses(1)[0]
        frame = camera.render(pose, noisy=False)
        bare_integrate = TsdfVolume.integrate.__wrapped__
        kernel_bare_s["tsdf.integrate"] = _time(
            lambda: bare_integrate(
                TsdfVolume(resolution=resolution, accelerated=True), frame, pose, camera
            ),
            reps,
        )

        reference, test = _metric_pair(quick)
        bare_ssim = ssim.__wrapped__
        kernel_bare_s["metrics.ssim"] = _time(
            lambda: bare_ssim(reference, test, accelerated=True), reps
        )
    finally:
        profile_module.enable_profiling(was_enabled)

    return {
        "hook_cost_ns": hook_s * 1e9,
        "kernels": {
            name: {
                "bare_ms": bare * 1e3,
                "overhead_pct": hook_s / bare * 100.0,
            }
            for name, bare in kernel_bare_s.items()
        },
    }


BENCHES = {
    "hologram.solve": bench_hologram,
    "tsdf.integrate": bench_tsdf,
    "metrics.ssim": bench_ssim,
    "metrics.flip": bench_flip,
    "switchboard.get_latest_before": bench_switchboard,
}


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true", help="tiny smoke config (~seconds)")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats (best-of)")
    parser.add_argument(
        "--json",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpaths.json",
        help="output path (default: BENCH_hotpaths.json at the repo root)",
    )
    parser.add_argument(
        "--sweep-processes",
        type=int,
        default=1,
        help="worker processes for the parity seed sweep (parallel_map)",
    )
    parser.add_argument(
        "--gate-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if disabled-instrumentation overhead on any kernel exceeds PCT percent",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.quick else 5)

    enable_profiling(True)
    results: Dict[str, object] = {}
    for name, bench in BENCHES.items():
        results[name] = bench(args.quick, repeats)
        entry = results[name]
        print(
            f"{name:34s} ref {entry['reference_ms']:9.2f} ms   "
            f"acc {entry['accelerated_ms']:9.2f} ms   "
            f"{entry['speedup']:5.2f}x   parity_ok={entry['parity']['ok']}"
        )

    # Per-seed parity sweep for the most numerically delicate kernel (WGS
    # iterations amplify 1-ulp reassociation noise); parallel_map degrades
    # to sequential on single-core or sandboxed platforms.
    seeds = list(range(2 if args.quick else 6))
    deviations = parallel_map(_hologram_parity_sweep, seeds, processes=args.sweep_processes)
    sweep_ok = bool(max(deviations) <= 1e-8)
    print(f"hologram parity sweep over {len(seeds)} seeds: max deviation {max(deviations):.2e}")

    overhead = bench_disabled_overhead(args.quick, repeats)
    print(f"disabled @profiled hook cost: {overhead['hook_cost_ns']:.0f} ns/call")
    for name, entry in overhead["kernels"].items():
        print(
            f"{name:34s} bare {entry['bare_ms']:9.2f} ms   "
            f"disabled-hook overhead {entry['overhead_pct']:+7.4f}%"
        )

    payload = {
        "schema": "bench_hotpaths/v1",
        "quick": args.quick,
        "repeats": repeats,
        "kernels": results,
        "hologram_parity_sweep": {
            "seeds": seeds,
            "iterations": 5,
            "max_phase_deviation": max(deviations),
            "ok": sweep_ok,
        },
        "disabled_instrumentation_overhead": overhead,
        "profile": profile_summary(reset=True),
    }
    args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.json}")

    parity_ok = sweep_ok and all(entry["parity"]["ok"] for entry in results.values())
    if not parity_ok:
        print("PARITY FAILURE: accelerated kernels deviate from reference", file=sys.stderr)
        return 1
    if args.gate_overhead is not None:
        over = {
            name: entry["overhead_pct"]
            for name, entry in overhead["kernels"].items()
            if entry["overhead_pct"] > args.gate_overhead
        }
        if over:
            print(
                f"OVERHEAD FAILURE: disabled instrumentation exceeds {args.gate_overhead}%: {over}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
