"""Extension bench (Table II): interchangeable VIO implementations.

Table II lists OpenVINS* and Kimera-VIO as alternative VIO components.
Our two fills -- the MSCKF (sliding window + nullspace projection) and the
EKF-SLAM (persistent landmarks, no window) -- run on the same offline
dataset; the bench regenerates their accuracy/cost comparison.  Expected
shape: both track within centimetres; the MSCKF is more accurate per
frame, the EKF-SLAM is cheaper (smaller state, no per-feature QR).
"""

import time

import numpy as np
from conftest import save_report

from repro.perception.vio.ekf_slam import EkfSlamVio
from repro.perception.vio.msckf import Msckf, MsckfConfig
from repro.sensors.dataset import make_vicon_room_dataset


def _evaluate(filter_class, dataset):
    vio = filter_class(
        MsckfConfig.standard(),
        dataset.camera.intrinsics,
        dataset.camera.baseline_m,
        dataset.ground_truth(0.0),
        initial_velocity=dataset.trajectory.sample(0.0).velocity,
    )
    t_last = 0.0
    errors, frame_times = [], []
    for frame in dataset.camera_frames:
        for sample in dataset.imu_between(t_last, frame.timestamp):
            vio.process_imu(sample)
        t_last = frame.timestamp
        start = time.perf_counter()
        estimate = vio.process_frame(frame)
        frame_times.append(time.perf_counter() - start)
        errors.append(
            estimate.pose.translation_error(dataset.ground_truth(frame.timestamp))
        )
    return float(np.mean(errors)) * 100, float(np.mean(frame_times)) * 1e3


def test_ext_vio_alternatives(benchmark):
    dataset = make_vicon_room_dataset(duration=12.0, seed=1)
    msckf_ate, msckf_ms = _evaluate(Msckf, dataset)
    ekf_ate, ekf_ms = _evaluate(EkfSlamVio, dataset)
    save_report(
        "ext_vio_alternatives",
        "Extension (Table II): interchangeable VIO implementations\n"
        f"{'filter':12s} {'ATE (cm)':>9s} {'ms/frame':>9s}\n"
        f"{'MSCKF':12s} {msckf_ate:9.1f} {msckf_ms:9.1f}\n"
        f"{'EKF-SLAM':12s} {ekf_ate:9.1f} {ekf_ms:9.1f}",
    )

    short = make_vicon_room_dataset(duration=2.0, seed=2)
    benchmark.pedantic(lambda: _evaluate(EkfSlamVio, short), rounds=2, iterations=1)

    # Both alternatives track: centimetre-level, no divergence.
    assert msckf_ate < 12.0
    assert ekf_ate < 12.0
    # The structural trade: visual-update cost differs between the two.
    assert ekf_ms != msckf_ms
