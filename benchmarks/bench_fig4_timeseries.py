"""Fig. 4: per-frame execution times for Platformer on the desktop.

Expected shape: VIO ~12 ms with visible input-dependent variability; the
application mid-single-digit ms; everything else <= ~2 ms; every component
shows nonzero variance (contention), VIO the most (§IV-A1).
The benchmark times the execution-time sampling path.
"""

import numpy as np
from conftest import save_report

from repro.analysis.report import render_fig4
from repro.hardware.platform import DESKTOP
from repro.hardware.timing import TimingModel


def test_fig4_timeseries(platformer_runs, benchmark):
    desktop = next(r for r in platformer_runs if r.platform.key == "desktop")
    text = render_fig4(desktop)
    save_report("fig4_timeseries", text)

    timing = TimingModel(DESKTOP, seed=0)
    benchmark(lambda: timing.sample("vio", complexity=1.1))

    logger = desktop.result.logger
    vio_times = np.asarray(logger.execution_times("vio"))
    app_times = np.asarray(logger.execution_times("application"))
    camera_times = np.asarray(logger.execution_times("camera"))
    # Magnitudes (desktop, Fig. 4): VIO ~12 ms, camera sub-ms.
    assert 0.008 < vio_times.mean() < 0.018
    assert app_times.mean() < 0.012
    assert camera_times.mean() < 0.002
    # Audio: encoding is cheaper than playback (paper Fig. 4 bottom).
    enc_times = np.asarray(logger.execution_times("audio_encoding"))
    play_times = np.asarray(logger.execution_times("audio_playback"))
    assert enc_times.mean() < play_times.mean()
    # Variability exists everywhere; VIO's CoV is the input-dependence.
    assert np.std(vio_times) / vio_times.mean() > 0.1
    for name in ("camera", "integrator", "timewarp", "audio_playback"):
        times = logger.execution_times(name)
        assert np.std(times) > 0
