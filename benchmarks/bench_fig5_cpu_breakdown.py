"""Fig. 5: contribution of each component to CPU time.

Expected shape (§IV-A1): VIO and the application are the largest
contributors (one or the other dominating by app); reprojection never
exceeds ~10-15%; the IMU integrator's relative share grows on the Jetsons
as app/timewarp work shrinks through dropped frames.
"""

from conftest import save_report

from repro.analysis.report import render_fig5


def test_fig5_cpu_breakdown(grid_runs, benchmark):
    text = render_fig5(grid_runs)
    save_report("fig5_cpu_breakdown", text)

    desktop_sponza = next(
        r for r in grid_runs if r.platform.key == "desktop" and r.app_name == "sponza"
    )
    benchmark(desktop_sponza.result.logger.cpu_share)

    for run in grid_runs:
        shares = run.cpu_share()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        top = max(shares, key=shares.get)
        assert top in ("vio", "application"), (run.platform.key, run.app_name, top)
        assert shares.get("timewarp", 0.0) < 0.16

    # Integrator share grows desktop -> Jetson-LP (same app).
    def integrator_share(platform):
        run = next(
            r for r in grid_runs if r.platform.key == platform and r.app_name == "sponza"
        )
        return run.cpu_share().get("integrator", 0.0)

    assert integrator_share("jetson-lp") > integrator_share("desktop")
