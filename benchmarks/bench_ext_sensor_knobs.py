"""Extension bench (§V.C + footnote 3): sensor knobs and pose prediction.

§V.C: "reducing camera exposure can save power at the cost of a darker
image ... decisions must consider the entire system" -- the exposure sweep
regenerates that trade-off curve (sensor power vs VIO accuracy).

Footnote 3: ILLIXR can predict the pose for the actual display time; in
the staleness-dominated regime prediction nearly eliminates display-time
pose error.
"""

from conftest import save_report

from repro.analysis.experiments import camera_exposure_sweep
from repro.core.config import SystemConfig
from repro.core.runtime import build_runtime
from repro.hardware.platform import DESKTOP


def test_ext_exposure_sweep(benchmark):
    points = camera_exposure_sweep(exposures_ms=(0.25, 0.5, 1.0, 2.0, 4.0), duration_s=6.0)
    lines = ["Extension (§V.C): camera exposure knob -- sensor power vs VIO accuracy",
             f"{'exposure ms':>12s} {'sensor W':>10s} {'px noise':>10s} {'ATE cm':>8s}"]
    for p in points:
        lines.append(
            f"{p.exposure_ms:12.2f} {p.sensor_power_w:10.3f} "
            f"{p.pixel_noise_px:10.2f} {p.vio_ate_cm:8.1f}"
        )
    save_report("ext_exposure_sweep", "\n".join(lines))

    benchmark.pedantic(
        lambda: camera_exposure_sweep(exposures_ms=(1.0,), duration_s=1.5),
        rounds=1, iterations=1,
    )

    powers = [p.sensor_power_w for p in points]
    errors = [p.vio_ate_cm for p in points]
    assert powers == sorted(powers)                   # power rises with exposure
    assert errors[0] > errors[-1]                     # accuracy improves with it
    assert errors[0] > 1.3 * errors[-1]               # a real knee, not noise


def test_ext_pose_prediction(benchmark):
    import numpy as np

    base = SystemConfig(duration_s=3.0, fidelity="model", seed=1)

    def display_error(result):
        return float(np.mean([
            event.warp_pose.rotation_error(result.ground_truth(event.submit_time))
            for event in result.display_events
        ]))

    without = build_runtime(DESKTOP, "platformer", base).run()
    predicted = build_runtime(
        DESKTOP, "platformer", base.with_overrides(pose_prediction=True)
    ).run()
    err_without = display_error(without)
    err_with = display_error(predicted)
    save_report(
        "ext_pose_prediction",
        "Extension (fn. 3): reprojection pose prediction (staleness regime)\n"
        f"display-time rotation error without prediction: {err_without * 1e3:.2f} mrad\n"
        f"display-time rotation error with prediction:    {err_with * 1e3:.2f} mrad",
    )

    from repro.maths.quaternion import quat_from_axis_angle
    from repro.maths.se3 import Pose

    pose = Pose(np.zeros(3), quat_from_axis_angle(np.array([0, 0, 1.0]), 0.3))
    benchmark(lambda: pose.rotation_error(Pose(np.zeros(3))))

    assert err_with < 0.2 * err_without
