"""§V.E ablation: VIO accuracy vs performance.

Paper: "the average trajectory error could be reduced from 8.1 cm to
4.9 cm at the cost of a 1.5x increase in average per-frame execution
time" -- and, crucially, whether that trade is worth it is only decidable
at the *system* level.  Expected shape: the high-accuracy preset cuts ATE
by roughly 40% at roughly 1.5x per-frame cost.
"""

from conftest import save_report

from repro.analysis.experiments import vio_accuracy_ablation
from repro.analysis.report import render_ablation


def test_vio_accuracy_vs_cost(benchmark):
    standard, high = vio_accuracy_ablation(duration_s=15.0)
    save_report("ablation_vio_params", render_ablation(standard, high))

    def quick_ablation():
        return vio_accuracy_ablation(duration_s=2.0)

    benchmark.pedantic(quick_ablation, rounds=1, iterations=1)

    # Accuracy improves substantially...
    assert high.ate_cm < 0.75 * standard.ate_cm
    # ...at a meaningful but bounded cost (paper: 1.5x).
    ratio = high.mean_frame_time_ms / standard.mean_frame_time_ms
    assert 1.15 < ratio < 2.5
    # Error magnitudes in the paper's regime (cm, not mm or m).
    assert 1.0 < high.ate_cm < 15.0
    assert 2.0 < standard.ate_cm < 20.0
