"""Shared benchmark fixtures.

The heavyweight experiment runs happen once per session in fixtures; the
``benchmark()`` calls then time representative kernels.  Every bench also
renders its table/figure to ``results/`` (and the terminal via ``-s``),
mirroring the paper artifact's ``results/Graphs`` outputs.
"""

import os

import pytest

from repro.analysis.experiments import run_matrix

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

# Keep the integrated grid affordable: a few virtual seconds preserves
# every qualitative result of the 30 s runs (§III-A).
GRID_DURATION_S = 4.0


def save_report(name: str, text: str) -> str:
    """Write a rendered table/figure under results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path


@pytest.fixture(scope="session")
def grid_runs():
    """The full 3 platforms x 4 applications grid, full fidelity."""
    return run_matrix(duration_s=GRID_DURATION_S, fidelity="full")


@pytest.fixture(scope="session")
def platformer_runs(grid_runs):
    """The Platformer column (Figs. 4 and 7 focus on it)."""
    return [r for r in grid_runs if r.app_name == "platformer"]


@pytest.fixture(scope="session")
def sponza_runs(grid_runs):
    """The Sponza column (Table V focuses on it)."""
    return [r for r in grid_runs if r.app_name == "sponza"]
