"""Fig. 7: per-frame motion-to-photon latency for Platformer.

Expected shape: three well-separated bands -- desktop ~3 ms, Jetson-HP
high-single-digit ms, Jetson-LP mid-teens ms with visibly higher variance.
"""

import numpy as np
from conftest import save_report

from repro.analysis.report import render_fig7
from repro.metrics.mtp import summarize_mtp


def test_fig7_mtp_timeline(platformer_runs, benchmark):
    text = render_fig7(platformer_runs)
    save_report("fig7_mtp_platformer", text)

    desktop = next(r for r in platformer_runs if r.platform.key == "desktop")
    benchmark(lambda: summarize_mtp(desktop.result.mtp_samples))

    series = {
        r.platform.key: np.array([s.total_ms for s in r.result.mtp_samples])
        for r in platformer_runs
    }
    assert series["desktop"].mean() < 5.0
    assert series["desktop"].mean() < series["jetson-hp"].mean() < series["jetson-lp"].mean()
    # Variability grows with constraint (the Fig. 7 spread).
    assert series["jetson-lp"].std() > series["desktop"].std()
    # Desktop never leaves the VR budget; Jetson-LP frequently does worse
    # than the desktop's worst frame.
    assert series["desktop"].max() < 20.0
    assert np.percentile(series["jetson-lp"], 75) > series["desktop"].max()
