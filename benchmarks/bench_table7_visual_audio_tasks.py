"""Table VII: task breakdowns of reprojection, hologram, and audio.

Expected shapes (paper): reprojection's time is dominated by state/driver
work rather than the warp math itself; hologram splits between the
hologram->depth and depth->hologram propagations with the 'sum' stage
negligible; audio encoding is dominated by the soundfield mapping (81%);
audio playback by the two FFT-convolution stages (psychoacoustic filter +
binauralization = 89%).  Benchmarks time the core kernels.
"""

import numpy as np
from conftest import save_report

from repro.analysis.report import render_task_breakdown
from repro.analysis.standalone import (
    characterize_audio,
    characterize_eye_tracking,
    characterize_hologram,
    characterize_reprojection,
)


def test_table7_reprojection_tasks(benchmark):
    breakdown = characterize_reprojection(frames=16)
    save_report("table7_reprojection_tasks", render_task_breakdown(breakdown))

    from repro.maths.quaternion import quat_from_axis_angle
    from repro.maths.se3 import Pose
    from repro.visual.renderer import RenderCamera, Renderer
    from repro.visual.reprojection import rotational_reproject
    from repro.visual.scenes import scene_by_name

    camera = RenderCamera(width=192, height=108)
    frame = Renderer(scene_by_name("sponza"), camera).render(Pose(np.array([0, 0, 1.7])))
    k = camera.intrinsic_matrix()
    display = Pose(
        np.array([0.0, 0.0, 1.7]),
        quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), 0.03),
    )
    benchmark(lambda: rotational_reproject(frame.image, k, frame.pose, display))

    shares = breakdown.shares()
    # Setup/state work (fbo + per-eye warp state) is a major cost beside
    # the resampling itself.
    assert shares["fbo"] + shares["opengl_state"] > 0.15
    assert shares["reprojection"] > 0.2


def test_table7_hologram_tasks(benchmark):
    breakdown = characterize_hologram(iterations=6, resolution=128)
    save_report("table7_hologram_tasks", render_task_breakdown(breakdown))

    from repro.visual.hologram import WeightedGerchbergSaxton

    solver = WeightedGerchbergSaxton(resolution=128)
    rng = np.random.default_rng(0)
    field = np.exp(1j * rng.uniform(-np.pi, np.pi, (128, 128)))
    benchmark(lambda: solver.propagate(field, solver.depths_m[0]))

    shares = breakdown.shares()
    assert shares["sum"] < 0.05  # paper: < 0.1%
    assert 0.10 < shares["hologram_to_depth"] < 0.75
    assert 0.25 < shares["depth_to_hologram"] < 0.9
    assert breakdown.extras["efficiency"] > 0.05


def test_table7_audio_tasks(benchmark):
    breakdowns = characterize_audio(blocks=96)
    save_report(
        "table7_audio_tasks",
        render_task_breakdown(breakdowns["audio_encoding"])
        + "\n\n"
        + render_task_breakdown(breakdowns["audio_playback"]),
    )

    from repro.audio.encoding import AudioEncoder
    from repro.audio.sources import SpeechLikeSource

    encoder = AudioEncoder([SpeechLikeSource()], block_size=1024)
    benchmark(encoder.encode_next_block)

    encoding = breakdowns["audio_encoding"].shares()
    playback = breakdowns["audio_playback"].shares()
    # Encoding: the soundfield mapping dominates (paper: 81%).  Use a
    # noise-robust bound: perf_counter shares jitter under system load.
    assert encoding["encoding"] > 0.45
    assert encoding["encoding"] > encoding["normalization"]
    # Playback: FFT-convolution stages dominate (paper: filter 29% +
    # binauralization 60%); rotation/zoom are the small remainder in the
    # paper -- our exact SH rotation is relatively dearer, so assert the
    # convolution pair is the majority and zoom is negligible.
    assert playback["binauralization"] + playback["psychoacoustic_filter"] > 0.45
    assert playback["zoom"] < 0.1
    # (The paper's encoding-cheaper-than-playback ordering is a property
    # of the calibrated timing model, asserted in the Fig. 4 bench; the
    # two Python kernels here are too close in wall time to compare
    # reliably.)


def test_table7_eye_tracking_profile(benchmark):
    """Eye tracking (§IV-B2 prose): convolutions dominate, copies next."""
    breakdown = characterize_eye_tracking(train_steps=60, eval_samples=16)
    save_report("table7_eye_tracking_tasks", render_task_breakdown(breakdown))

    from repro.perception.eye_tracking import EyeTracker
    from repro.sensors.eye import EyeImageGenerator

    tracker = EyeTracker(seed=0)
    tracker.train(EyeImageGenerator(seed=0), steps=30)
    generator = EyeImageGenerator(seed=5)
    pair = np.stack([generator.sample().image, generator.sample().image])
    benchmark(lambda: tracker.predict(pair))

    shares = breakdown.shares()
    assert shares["convolution"] == max(shares.values())
    assert breakdown.extras["mean_iou"] > 0.55
