"""Fig. 8: CPU IPC and top-down cycle breakdown per component.

Expected shape (§IV-B2): reprojection is frontend-bound at IPC ~0.3 (GPU
driver instruction footprint); audio playback retires ~86%+ of cycles at
IPC ~3.5; audio encoding is divider-limited around IPC 2.5; VIO sits near
IPC 2; the DNN/dense-SLAM components are backend(memory)-bound.
"""

from conftest import save_report

from repro.analysis.report import render_fig8
from repro.hardware.uarch import component_breakdowns


def test_fig8_uarch(benchmark):
    text = render_fig8()
    save_report("fig8_microarchitecture", text)

    breakdowns = benchmark(component_breakdowns)

    paper_ipc = {
        "vio": 2.2,
        "timewarp": 0.3,
        "audio_encoding": 2.5,
        "audio_playback": 3.5,
    }
    for name, expected in paper_ipc.items():
        measured = breakdowns[name].ipc
        assert abs(measured - expected) / expected < 0.35, (name, measured)

    assert breakdowns["timewarp"].frontend_bound > 0.45
    assert breakdowns["audio_playback"].retiring > 0.8
    assert breakdowns["audio_encoding"].backend_bound > breakdowns["audio_playback"].backend_bound
    assert breakdowns["scene_reconstruction"].backend_bound > 0.4
    # All fractions are proper distributions.
    for breakdown in breakdowns.values():
        assert abs(sum(breakdown.fractions().values()) - 1.0) < 1e-9
