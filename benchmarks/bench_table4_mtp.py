"""Table IV: motion-to-photon latency (mean +- std) per platform per app.

Paper values (ms): desktop ~3 everywhere; Jetson-HP 5.6-13.5 growing with
app complexity; Jetson-LP 11.3-19.3, Sponza practically unusable.  Targets:
20 ms (VR) and 5 ms (AR) from Table I.
"""

from conftest import save_report

from repro.analysis.report import render_table4
from repro.hardware.platform import TARGET_MTP_AR_MS, TARGET_MTP_VR_MS


def test_table4_mtp(grid_runs, benchmark):
    text = render_table4(grid_runs)
    save_report("table4_mtp", text)

    summaries = {
        (r.platform.key, r.app_name): r.result.mtp_summary() for r in grid_runs
    }
    benchmark(lambda: grid_runs[0].result.mtp_summary())

    # Desktop: meets the VR target on virtually all frames, for all apps.
    for app in ("sponza", "materials", "platformer", "ar_demo"):
        summary = summaries[("desktop", app)]
        assert summary.mean_ms < 5.0
        assert summary.vr_target_met_fraction > 0.99
    # Jetson-HP: average frame meets VR target for every app.
    for app in ("sponza", "materials", "platformer", "ar_demo"):
        assert summaries[("jetson-hp", app)].mean_ms < TARGET_MTP_VR_MS
    # Jetson-LP: still under the VR target on average for light apps, but
    # clearly degraded, and Sponza is the worst cell of the table.
    lp = {app: summaries[("jetson-lp", app)].mean_ms for app in
          ("sponza", "materials", "platformer", "ar_demo")}
    assert lp["sponza"] == max(lp.values())
    assert lp["sponza"] > 1.3 * lp["ar_demo"]
    # Neither Jetson meets the AR target on the average frame.
    for platform in ("jetson-hp", "jetson-lp"):
        for app in ("sponza", "platformer"):
            assert summaries[(platform, app)].mean_ms > TARGET_MTP_AR_MS
