"""Extension bench (§IV-A1 / §V-A): display configuration sweep.

"Although we assume modern display resolutions and refresh rates, future
systems will support larger and faster displays with larger field-of-view
... further stressing the entire system."  This sweep quantifies that
claim on Jetson-HP: the visual pipeline that misses its targets at 2K/90
recovers at 720p, and collapses further at a 150-degree field of view.
"""

from conftest import save_report

from repro.core.config import SystemConfig
from repro.core.runtime import build_runtime
from repro.hardware.platform import JETSON_HP


def test_ext_display_sweep(benchmark):
    settings = [
        ("720p", 90.0),
        ("1080p", 90.0),
        ("2K", 90.0),
        ("2K", 150.0),
    ]
    rows = ["Extension (§IV-A1): display knobs on Jetson-HP (Sponza)",
            f"{'resolution':>10s} {'FoV':>6s} {'app Hz':>8s} {'warp Hz':>8s} {'MTP ms':>8s}"]
    measured = []
    for resolution, fov in settings:
        config = SystemConfig(
            duration_s=3.0, fidelity="model", seed=0,
            display_resolution=resolution, field_of_view_deg=fov,
        )
        result = build_runtime(JETSON_HP, "sponza", config).run()
        mtp = result.mtp_summary().mean_ms
        measured.append((result.frame_rate("application"), result.frame_rate("timewarp"), mtp))
        rows.append(
            f"{resolution:>10s} {fov:6.0f} {measured[-1][0]:8.1f} "
            f"{measured[-1][1]:8.1f} {mtp:8.1f}"
        )
    save_report("ext_display_sweep", "\n".join(rows))

    def quick_run():
        config = SystemConfig(duration_s=1.0, fidelity="model", display_resolution="720p")
        return build_runtime(JETSON_HP, "sponza", config).run()

    benchmark.pedantic(quick_run, rounds=3, iterations=1)

    app_rates = [m[0] for m in measured]
    mtps = [m[2] for m in measured]
    # Application rate falls monotonically as the display grows.
    assert app_rates[0] > app_rates[1] > app_rates[2] > app_rates[3]
    # MTP degrades from the small display to the large-FoV one.
    assert mtps[3] > mtps[0]
