"""Table VI: task breakdowns of VIO and scene reconstruction (measured).

Expected shape: VIO has no dominant task (the paper's most diverse
component: 7 tasks, largest ~23%); scene reconstruction splits across its
five stages with pose estimation + surfel prediction + fusion carrying
most of the time; reconstruction per-frame time grows with map size
(§IV-B1).  Benchmarks time one VIO frame and one reconstruction frame.
"""

from conftest import save_report

from repro.analysis.report import render_task_breakdown
from repro.analysis.standalone import characterize_reconstruction, characterize_vio


def test_table6_vio_tasks(benchmark):
    breakdown = characterize_vio(duration_s=10.0)
    save_report("table6_vio_tasks", render_task_breakdown(breakdown))

    # Benchmark one steady-state VIO frame (IMU window + visual update).
    from repro.perception.vio.msckf import Msckf, MsckfConfig
    from repro.sensors.dataset import make_vicon_room_dataset

    dataset = make_vicon_room_dataset(duration=6.0, seed=2)
    vio = Msckf(
        MsckfConfig.standard(),
        dataset.camera.intrinsics,
        dataset.camera.baseline_m,
        dataset.ground_truth(0.0),
        initial_velocity=dataset.trajectory.sample(0.0).velocity,
    )
    t_last = 0.0
    frames = iter(dataset.camera_frames)
    # Warm up the window.
    for _ in range(15):
        frame = next(frames)
        for sample in dataset.imu_between(t_last, frame.timestamp):
            vio.process_imu(sample)
        t_last = frame.timestamp
        vio.process_frame(frame)

    state = {"t": t_last, "frames": frames}

    def one_frame():
        try:
            frame = next(state["frames"])
        except StopIteration:
            state["frames"] = iter(dataset.camera_frames[15:])
            frame = next(state["frames"])
            vio.state.timestamp = frame.timestamp - 1e-3
        for sample in dataset.imu_between(state["t"], frame.timestamp):
            vio.process_imu(sample)
        state["t"] = frame.timestamp
        return vio.process_frame(frame)

    benchmark.pedantic(one_frame, rounds=20, iterations=1)

    shares = breakdown.shares()
    # No single task dominates (the paper's Amdahl argument, §IV-B1):
    # the largest VIO task is well under half the total.
    largest = max(shares.values())
    assert largest < 0.6
    assert sum(1 for v in shares.values() if v > 0.05) >= 4
    assert breakdown.extras["ate_cm"] < 15.0


def test_table6_reconstruction_tasks(benchmark):
    breakdown = characterize_reconstruction(frames=24)
    save_report("table6_reconstruction_tasks", render_task_breakdown(breakdown))

    from repro.maths.se3 import Pose
    from repro.perception.reconstruction.pipeline import ReconstructionPipeline
    from repro.sensors.depth import DepthCamera, DepthScene
    from repro.sensors.trajectory import lab_walk_trajectory

    camera = DepthCamera(DepthScene.default(), width=64, height=48)
    pipeline = ReconstructionPipeline(camera)
    trajectory = lab_walk_trajectory(duration=30.0, seed=5)
    state = {"i": 0}

    def one_frame():
        t = 0.25 * state["i"]
        state["i"] += 1
        sample = trajectory.sample(t)
        pose = Pose(sample.position, sample.orientation, timestamp=t)
        return pipeline.process_frame(camera.render(pose), pose)

    benchmark.pedantic(one_frame, rounds=12, iterations=1)

    shares = breakdown.shares()
    heavy = shares["pose_estimation"] + shares["surfel_prediction"] + shares["map_fusion"]
    assert heavy > 0.7
    assert shares["camera_processing"] < 0.3
    # Frame time grows as the map grows (§IV-B1).
    assert breakdown.extras["frame_time_growth"] > 0.6
