"""Extension bench (§II footnote 2): VIO offloading.

Not a paper table/figure -- the paper *describes* the offloading module as
implemented-and-growing; this bench regenerates the trade-off it exists
for: offloading VIO from Jetson-LP to a desktop-class edge server restores
the camera-rate pose stream and frees local CPU, at the price of a
network round trip that grows the pose age.
"""

from conftest import save_report

from repro.analysis.experiments import offload_comparison


def test_ext_offloading(benchmark):
    comparison = offload_comparison(duration_s=4.0)
    text = (
        "Extension (§II fn.2): VIO local vs offloaded (Jetson-LP -> desktop)\n"
        f"{'metric':24s} {'local':>10s} {'offloaded':>10s}\n"
        f"{'VIO rate (Hz)':24s} {comparison.local_vio_rate_hz:10.1f} "
        f"{comparison.offloaded_vio_rate_hz:10.1f}\n"
        f"{'VIO CPU share':24s} {comparison.local_vio_cpu_share:10.2%} "
        f"{comparison.offloaded_vio_cpu_share:10.2%}\n"
        f"{'VIO ATE (cm)':24s} {comparison.local_ate_cm:10.1f} "
        f"{comparison.offloaded_ate_cm:10.1f}\n"
        f"mean round trip: {comparison.mean_round_trip_ms:.1f} ms"
    )
    save_report("ext_offloading", text)

    import numpy as np

    from repro.plugins.offload import NetworkLink

    link = NetworkLink()
    rng = np.random.default_rng(0)
    benchmark(lambda: link.uplink_time(8192, rng))

    assert comparison.offloaded_vio_rate_hz > comparison.local_vio_rate_hz
    assert comparison.offloaded_vio_cpu_share < 0.3 * comparison.local_vio_cpu_share
    assert comparison.mean_round_trip_ms < 66.7  # inside the camera period
