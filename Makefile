# Convenience targets; see docs/performance.md for the check/bench loop.

.PHONY: check test bench

check:
	bash scripts/check.sh

test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	PYTHONPATH=src python benchmarks/perf_harness.py
